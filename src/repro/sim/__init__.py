"""Discrete-event simulation of training steps at paper scale.

The functional engine validates SSDTrain's *mechanism* on small models with
real numpy math and real file I/O; this package replays the same offload
*policy* over the analytic per-layer model at the paper's hidden sizes
(8192-16384), producing step time, activation memory peak, offloaded bytes
and I/O stall time for the Fig. 6 / Fig. 7 / Fig. 8 / Table III benches.
"""

from repro.sim.step_sim import (
    DRIFT_KINDS,
    FAULT_KINDS,
    IO_MODES,
    AdaptiveRunResult,
    DriftScenario,
    FaultRunResult,
    FaultScenario,
    MultiTenantHarness,
    MultiTenantRunResult,
    SegmentSpec,
    SimResult,
    StepSimulator,
    TenantJobSpec,
    TenantRunMetrics,
    build_segments,
    simulate_adaptive_run,
    simulate_fault_run,
    simulate_strategy,
)
from repro.sim.pipeline_offload import (
    PipelineOffloadResult,
    StageWorkload,
    simulate_pipeline_offload,
)
from repro.sim.timeline import Timeline, TimelineEvent

__all__ = [
    "IO_MODES",
    "DRIFT_KINDS",
    "FAULT_KINDS",
    "AdaptiveRunResult",
    "DriftScenario",
    "FaultRunResult",
    "FaultScenario",
    "simulate_fault_run",
    "MultiTenantHarness",
    "MultiTenantRunResult",
    "TenantJobSpec",
    "TenantRunMetrics",
    "SegmentSpec",
    "SimResult",
    "StepSimulator",
    "build_segments",
    "simulate_adaptive_run",
    "simulate_strategy",
    "PipelineOffloadResult",
    "StageWorkload",
    "simulate_pipeline_offload",
    "Timeline",
    "TimelineEvent",
]
