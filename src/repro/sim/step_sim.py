"""Step-level discrete-event simulation of the three placement strategies.

A model is lowered to a list of :class:`SegmentSpec` (embedding segment,
one per transformer layer, LM-head segment).  The simulator plays one
training step over three serial resources — the GPU compute stream, the
SSD store channel, and the SSD load channel (the two thread pools of
Sec. III-C2) — making offload decisions with the *same*
:class:`~repro.core.policy.OffloadPolicy` the functional tensor cache uses:

- forward: at each segment's completion its activations are packed; kept
  tensors stay resident until their backward; offloaded tensors enqueue on
  the store channel and release memory when the store completes;
- backward: loads are issued in reverse order with a bounded segment
  look-ahead; a segment's backward stalls the GPU if its activations are
  not resident yet (this is where a slow SSD shows up as overhead);
- data forwarding: if the store is still in flight when the tensor is
  needed, the in-memory reference is adopted — no load, memory never
  released in between;
- recompute: only segment inputs are kept; backward replays the forward
  (executed FLOPs grow, algorithmic FLOPs do not);
- tiered offload: with ``cpu_pool_bytes`` set, a bounded pinned-CPU pool
  absorbs offloads on dedicated ``cpu_store``/``cpu_load`` lanes at PCIe
  bandwidth and only the spill beyond the pool pays SSD bandwidth —
  the simulator analogue of
  :class:`~repro.core.tiered.TieredOffloader` (placement only; demotion
  traffic is a functional-engine concern);
- I/O scheduling: ``io_mode`` picks the SSD-channel contention model
  (see :data:`IO_MODES`) — ``"fifo"`` vs ``"priority"`` quantifies what
  the functional :class:`~repro.io.scheduler.IOScheduler`'s
  blocking-load-first dequeue buys at equal bandwidth;
- failures: :class:`FaultScenario` / :func:`simulate_fault_run` play the
  functional failure model's throughput side — transient-retry tax,
  latency spikes, and a mid-run SSD death drained via host-memory
  failover (see :data:`FAULT_KINDS`).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.perf_model import (
    ActivationTensor,
    embedding_activation_bytes,
    logits_activation_bytes,
    model_param_count,
    transformer_layer_perf,
    weight_update_time,
)
from repro.core.autotune import AutotuneController, ControllerDecision, StepObservation
from repro.core.policy import Decision, OffloadPolicy, StepAccounting, Tier
from repro.device.gpu import A100_PCIE_40GB, GPUSpec, KernelTimingModel
from repro.device.pcie import GPU_LINK_GEN4_X16
from repro.models.config import ModelConfig
from repro.sim.timeline import Timeline
from repro.train.parallel import ParallelismConfig
from repro.train.trainer import PlacementStrategy


#: SSD-channel contention models (the functional counterpart is the
#: :class:`~repro.io.scheduler.IOScheduler`'s ``fifo`` flag):
#:
#: - ``"duplex"``  — the paper's two independent pools: stores and loads
#:   never contend (an idealisation of deep NVMe queues);
#: - ``"fifo"``    — one shared serial channel, strict submission order:
#:   a backward load queues behind the whole store backlog (the
#:   priority-inversion failure mode);
#: - ``"priority"``— the same shared channel, but loads overtake queued
#:   stores (blocking-load-first dequeue).  Deferred stores finish in
#:   the gaps; their recorded completion times are lower bounds.
IO_MODES = ("duplex", "fifo", "priority")


@dataclass(frozen=True)
class SegmentSpec:
    """One schedulable forward/backward unit (a "module" of Fig. 2)."""

    name: str
    forward_time_s: float
    backward_time_s: float
    forward_flops: float
    activations: Tuple[ActivationTensor, ...]
    #: bytes of the segment *input*, what recomputation keeps resident.
    input_bytes: int

    @property
    def activation_bytes(self) -> int:
        return sum(t.nbytes for t in self.activations)


@dataclass
class SimResult:
    """Outputs of one simulated training step."""

    strategy: PlacementStrategy
    step_time_s: float
    forward_time_s: float
    backward_time_s: float
    weight_update_time_s: float
    io_stall_time_s: float
    activation_peak_bytes: int
    offloaded_bytes: int
    loaded_bytes: int
    forwarded_bytes: int
    algorithmic_flops: float
    executed_flops: float
    timeline: Timeline = field(repr=False, default_factory=Timeline)
    #: Tiered runs: bytes absorbed by the pinned-CPU pool vs spilled to SSD
    #: (``offloaded_bytes`` is their sum), and the pool's occupancy peak.
    offloaded_cpu_bytes: int = 0
    offloaded_ssd_bytes: int = 0
    cpu_pool_peak_bytes: int = 0
    #: Eligible activation bytes the policy KEPT resident (budget reached,
    #: keep-last scope); ``offloaded_bytes + kept_bytes`` is the step's
    #: eligible activation volume — the budget formula's input.
    kept_bytes: int = 0

    def model_throughput_tflops(self) -> float:
        return self.algorithmic_flops / self.step_time_s / 1e12

    def required_write_bandwidth_gbps(self) -> float:
        """Table III row 3: offloaded bytes over half the step time."""
        return self.offloaded_bytes / (self.step_time_s / 2.0) / 1e9

    def required_ssd_write_bandwidth_gbps(self) -> float:
        """Tiered variant of Table III row 3: only the bytes that actually
        spill past the CPU pool demand SSD write bandwidth (with no CPU
        tier configured every offloaded byte is an SSD byte)."""
        return self.offloaded_ssd_bytes / (self.step_time_s / 2.0) / 1e9


def build_segments(
    config: ModelConfig,
    batch: int,
    gpu: GPUSpec = A100_PCIE_40GB,
    parallelism: Optional[ParallelismConfig] = None,
    timing: Optional[KernelTimingModel] = None,
) -> List[SegmentSpec]:
    """Lower a model config to its forward segment list."""
    par = parallelism if parallelism is not None else ParallelismConfig()
    model = timing if timing is not None else KernelTimingModel(gpu)
    dt = config.dtype_bytes
    bsh_bytes = batch * config.seq_len * config.hidden * dt
    segments: List[SegmentSpec] = []

    emb_bytes = embedding_activation_bytes(config, batch)
    emb_flops = 2.0 * batch * config.seq_len * config.hidden  # lookups+add
    emb_time = model.kernel_time(emb_flops, 2 * emb_bytes, batch_size=batch)
    segments.append(
        SegmentSpec(
            name="embed",
            forward_time_s=emb_time,
            backward_time_s=2 * emb_time,
            forward_flops=emb_flops,
            activations=(ActivationTensor("emb_out", emb_bytes),),
            input_bytes=batch * config.seq_len * 8,  # token ids (int64)
        )
    )

    num_cross = config.num_decoder_layers if config.arch == "t5" else 0
    num_plain = config.num_layers - num_cross
    plain_perf = transformer_layer_perf(config, batch, gpu, par, model)
    for i in range(num_plain):
        segments.append(
            SegmentSpec(
                name=f"layer{i}",
                forward_time_s=plain_perf.forward_time_s,
                backward_time_s=plain_perf.backward_time_s,
                forward_flops=plain_perf.forward_flops,
                activations=plain_perf.inventory,
                input_bytes=bsh_bytes,
            )
        )
    if num_cross:
        cross_perf = transformer_layer_perf(
            config, batch, gpu, par, model, cross_attention=True
        )
        for i in range(num_cross):
            segments.append(
                SegmentSpec(
                    name=f"declayer{i}",
                    forward_time_s=cross_perf.forward_time_s,
                    backward_time_s=cross_perf.backward_time_s,
                    forward_flops=cross_perf.forward_flops,
                    activations=cross_perf.inventory,
                    input_bytes=bsh_bytes,
                )
            )

    head_bytes = logits_activation_bytes(config, batch)
    head_flops = 2.0 * batch * config.seq_len * config.hidden * config.vocab_size / par.tp
    head_time = model.kernel_time(head_flops, head_bytes, batch_size=batch)
    segments.append(
        SegmentSpec(
            name="head",
            forward_time_s=head_time,
            backward_time_s=2 * head_time,
            forward_flops=head_flops,
            activations=(ActivationTensor("logits", head_bytes),),
            input_bytes=bsh_bytes,
        )
    )
    return segments


class StepSimulator:
    """Simulates one training step for a segment list and a strategy."""

    def __init__(
        self,
        segments: List[SegmentSpec],
        strategy: PlacementStrategy,
        write_bandwidth: float,
        read_bandwidth: float,
        policy: Optional[OffloadPolicy] = None,
        num_microbatches: int = 1,
        prefetch_segments: int = 2,
        keep_last_segments: int = 2,
        prefetch_budget_bytes: Optional[int] = None,
        recompute_workspace_factor: float = 2.0,
        io_latency_s: float = 20e-6,
        dtype_bytes: int = 2,
        cpu_pool_bytes: Optional[int] = None,
        cpu_write_bandwidth: Optional[float] = None,
        cpu_read_bandwidth: Optional[float] = None,
        io_mode: str = "duplex",
    ) -> None:
        if write_bandwidth <= 0 or read_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if num_microbatches < 1:
            raise ValueError("num_microbatches must be >= 1")
        if io_mode not in IO_MODES:
            raise ValueError(f"unknown io_mode {io_mode!r}; expected one of {IO_MODES}")
        self.segments = segments
        self.strategy = strategy
        self.write_bw = write_bandwidth
        self.read_bw = read_bandwidth
        self.policy = policy if policy is not None else OffloadPolicy()
        self.num_microbatches = num_microbatches
        self.prefetch_segments = prefetch_segments
        # Fig. 2 marker 4: the last module's backward begins immediately
        # after its forward, so its activations are kept (the functional
        # cache keeps the final top-level segment; pass 2 to also keep the
        # final transformer layer as in the Fig. 2 sketch).
        self.keep_last_segments = keep_last_segments
        # Recomputation transient: the recomputed activations coexist with
        # the gradient buffers of the segment's backward.
        self.recompute_workspace_factor = recompute_workspace_factor
        # Bound on prefetched-but-unconsumed bytes, the simulator analogue
        # of the tensor cache's bounded look-ahead window: a prefetch may
        # run ahead of consumption by at most this many bytes.  Defaults to
        # half the largest segment's activation footprint (the adaptive
        # sizing scales the window with the workload).
        if prefetch_budget_bytes is None:
            prefetch_budget_bytes = max(s.activation_bytes for s in segments) // 2
        self.prefetch_budget_bytes = prefetch_budget_bytes
        self.io_latency_s = io_latency_s
        self.dtype_bytes = dtype_bytes
        # Tiered offloading: a bounded pinned-CPU pool absorbs offloads at
        # PCIe speed; only the spill beyond it pays SSD bandwidth.  The
        # pool occupies host (not GPU) memory, so its residents do not
        # count toward the activation peak.  ``None`` disables the tier
        # (every offload targets the SSD, the paper's configuration).
        self.cpu_pool_bytes = cpu_pool_bytes
        self.io_mode = io_mode
        link_bw = GPU_LINK_GEN4_X16.bandwidth
        self.cpu_write_bw = cpu_write_bandwidth if cpu_write_bandwidth is not None else link_bw
        self.cpu_read_bw = cpu_read_bandwidth if cpu_read_bandwidth is not None else link_bw
        if self.cpu_pool_bytes is not None and (
            self.cpu_write_bw <= 0 or self.cpu_read_bw <= 0
        ):
            raise ValueError("CPU-tier bandwidths must be positive")

    def run(self, weight_update_s: float = 0.0) -> SimResult:
        timeline = Timeline()
        accounting = StepAccounting()
        gpu_t = 0.0
        store_t = 0.0
        load_t = 0.0
        cpu_store_t = 0.0
        cpu_load_t = 0.0
        io_stall = 0.0
        offloaded = loaded = forwarded = 0
        off_cpu = off_ssd = 0
        cpu_used = 0
        cpu_peak = 0
        alg_flops = exec_flops = 0.0
        fwd_total = bwd_total = 0.0

        keep_last = self.policy.config.keep_last_module

        for mb in range(self.num_microbatches):
            # ------------------------------------------------------ forward
            # store_end[i][j]: completion time of activation j of segment i
            # (None = kept resident).
            store_end: List[List[Optional[float]]] = []
            freed_at_store: List[List[bool]] = []
            # Landing tier of each offloaded activation (None = kept).
            store_tier: List[List[Optional[Tier]]] = []
            for si, seg in enumerate(self.segments):
                seg_start = gpu_t
                gpu_t += seg.forward_time_s
                fwd_total += seg.forward_time_s
                alg_flops += seg.forward_flops
                exec_flops += seg.forward_flops
                timeline.record("gpu", f"F{si}", seg_start, gpu_t)
                ends: List[Optional[float]] = []
                freed: List[bool] = []
                tiers: List[Optional[Tier]] = []
                in_keep_scope = (
                    keep_last
                    and si >= len(self.segments) - self.keep_last_segments
                )

                if self.strategy is PlacementStrategy.RECOMPUTE and si > 0:
                    # Only the segment input survives; approximate it as one
                    # resident tensor per segment (freed after backward).
                    timeline.alloc(seg_start, seg.input_bytes)
                    store_end.append([None] * len(seg.activations))
                    freed_at_store.append([False] * len(seg.activations))
                    store_tier.append([None] * len(seg.activations))
                    continue

                count = len(seg.activations)
                for aj, act in enumerate(seg.activations):
                    # Tensors are produced progressively as the segment's
                    # ops finish; offloading "starts once the operator
                    # producing it finishes" (Fig. 2 marker 1).
                    produced = seg_start + (aj + 1) / count * seg.forward_time_s
                    timeline.alloc(produced, act.nbytes)
                    if self.strategy is not PlacementStrategy.OFFLOAD:
                        ends.append(None)
                        freed.append(False)
                        tiers.append(None)
                        continue
                    decision = self.policy.decide(
                        is_weight=False,
                        is_cpu=False,
                        numel=act.nbytes // self.dtype_bytes,
                        nbytes=act.nbytes,
                        in_backward=False,
                        in_keep_scope=in_keep_scope,
                        accounting=accounting,
                    )
                    if decision is Decision.OFFLOAD:
                        cpu_free = (
                            self.cpu_pool_bytes - cpu_used
                            if self.cpu_pool_bytes is not None
                            else None
                        )
                        tier = self.policy.place(
                            nbytes=act.nbytes, cpu_free_bytes=cpu_free
                        )
                        if tier is Tier.CPU:
                            start = max(cpu_store_t, produced)
                            done = (
                                start
                                + self.io_latency_s
                                + act.nbytes / self.cpu_write_bw
                            )
                            cpu_store_t = done
                            timeline.record("cpu_store", f"c{si}", start, done)
                            cpu_used += act.nbytes
                            cpu_peak = max(cpu_peak, cpu_used)
                            off_cpu += act.nbytes
                        else:
                            start = max(store_t, produced)
                            if self.io_mode != "duplex":
                                # Shared SSD channel: a store cannot start
                                # while a load occupies it.
                                start = max(start, load_t)
                            done = (
                                start + self.io_latency_s + act.nbytes / self.write_bw
                            )
                            store_t = done
                            timeline.record("store", f"s{si}", start, done)
                            off_ssd += act.nbytes
                        accounting.offloaded_bytes += act.nbytes
                        offloaded += act.nbytes
                        ends.append(done)
                        freed.append(True)
                        tiers.append(tier)
                        timeline.free(done, act.nbytes)
                    else:
                        accounting.kept_bytes += act.nbytes
                        ends.append(None)
                        freed.append(False)
                        tiers.append(None)
                store_end.append(ends)
                freed_at_store.append(freed)
                store_tier.append(tiers)

            # ----------------------------------------------------- backward
            n = len(self.segments)
            load_end: Dict[Tuple[int, int], float] = {}
            bwd_start_of: List[Optional[float]] = [None] * n

            def issue_loads(
                si: int,
                trigger: float,
                credit_state: Optional[List[float]] = None,
                consumption_rate: float = 0.0,
                deadline_window_s: float = 0.0,
            ) -> None:
                """Issue loads for segment ``si``'s activations.

                ``credit_state`` is a one-element list holding the
                cumulative prefetched bytes of this backward entry; loads
                beyond ``prefetch_budget_bytes`` wait until consumption of
                the current segment (at ``consumption_rate`` bytes/s) has
                earned them credit.
                """
                nonlocal load_t, store_t, cpu_load_t, cpu_used, loaded, forwarded, io_stall
                seg = self.segments[si]
                for aj in range(len(seg.activations) - 1, -1, -1):
                    # Consumption is last-produced-first, so load in
                    # reverse production order.
                    act = seg.activations[aj]
                    if (si, aj) in load_end:
                        continue
                    tier = store_tier[si][aj]
                    read_bw = self.cpu_read_bw if tier is Tier.CPU else self.read_bw
                    paced_trigger = trigger
                    if credit_state is not None:
                        overdraft = credit_state[0] + act.nbytes - self.prefetch_budget_bytes
                        if overdraft > 0 and consumption_rate > 0:
                            paced_trigger = trigger + overdraft / consumption_rate
                        credit_state[0] += act.nbytes
                        # Never let the budget push a load past its need
                        # time: it must complete before the consuming
                        # segment's backward begins (deadline - duration).
                        load_duration = self.io_latency_s + act.nbytes / read_bw
                        deadline_start = trigger + deadline_window_s - 1.2 * load_duration
                        paced_trigger = max(trigger, min(paced_trigger, deadline_start))
                    end = store_end[si][aj]
                    if end is None:
                        load_end[(si, aj)] = trigger  # resident (kept)
                        continue
                    # The backing copy is dropped once the tensor is back
                    # on the GPU; pool residents return their bytes then.
                    if tier is Tier.CPU:
                        cpu_used -= act.nbytes
                    if end > paced_trigger and not freed_at_store[si][aj]:
                        load_end[(si, aj)] = end
                        continue
                    if end > paced_trigger:
                        # Store still in flight at prefetch time: data
                        # forwarding — adopt the in-memory copy, cancel the
                        # free that the store completion would have done.
                        forwarded += act.nbytes
                        timeline.alloc(end, act.nbytes)  # undo the free
                        load_end[(si, aj)] = paced_trigger
                        continue
                    if tier is Tier.CPU:
                        start = max(cpu_load_t, end, paced_trigger)
                        done = start + self.io_latency_s + act.nbytes / read_bw
                        cpu_load_t = done
                        timeline.record("cpu_load", f"cl{si}", start, done)
                    else:
                        start = max(load_t, end, paced_trigger)
                        if self.io_mode == "fifo":
                            # FIFO shared channel: the load waits for the
                            # whole store backlog submitted ahead of it.
                            start = max(start, store_t)
                        done = start + self.io_latency_s + act.nbytes / read_bw
                        load_t = done
                        if self.io_mode != "duplex":
                            # The shared channel was busy with this load;
                            # under "priority" that is the load overtaking
                            # queued stores, which resume afterwards.
                            store_t = max(store_t, done)
                        timeline.record("load", f"l{si}", start, done)
                    timeline.alloc(start, act.nbytes)
                    loaded += act.nbytes
                    load_end[(si, aj)] = done

            for si in range(n - 1, -1, -1):
                seg = self.segments[si]
                # Entering segment si's backward triggers prefetch of the
                # next ``prefetch_segments`` segments (Sec. III-C2); the
                # byte budget is earned back as this segment's backward
                # consumes its own activations.
                issue_loads(si, gpu_t)
                credit = [0.0]
                rate = (
                    seg.activation_bytes / seg.backward_time_s
                    if seg.backward_time_s > 0
                    else 0.0
                )
                for ahead in range(1, self.prefetch_segments + 1):
                    if si - ahead >= 0:
                        issue_loads(
                            si - ahead,
                            gpu_t,
                            credit_state=credit,
                            consumption_rate=rate,
                            deadline_window_s=ahead * seg.backward_time_s,
                        )

                if self.strategy is PlacementStrategy.RECOMPUTE and si > 0:
                    # Replay forward, then backward.
                    start = gpu_t
                    recompute_peak = int(
                        self.recompute_workspace_factor
                        * sum(a.nbytes for a in seg.activations)
                    )
                    timeline.alloc(start, recompute_peak)
                    gpu_t = start + seg.forward_time_s + seg.backward_time_s
                    exec_flops += seg.forward_flops
                    timeline.record("gpu", f"R{si}", start, start + seg.forward_time_s)
                    timeline.record("gpu", f"B{si}", start + seg.forward_time_s, gpu_t)
                    timeline.free(gpu_t, recompute_peak + seg.input_bytes)
                else:
                    ready = max(
                        [gpu_t]
                        + [load_end[(si, aj)] for aj in range(len(seg.activations))]
                    )
                    io_stall += ready - gpu_t
                    start = ready
                    gpu_t = start + seg.backward_time_s
                    timeline.record("gpu", f"B{si}", start, gpu_t)
                    # Backward consumes the segment's saved tensors
                    # progressively (last-produced first); each is released
                    # as its consuming node finishes (SavedTensor.clear +
                    # scope exit in the functional cache).
                    count = len(seg.activations)
                    for aj, act in enumerate(seg.activations):
                        frac = (count - aj) / count
                        timeline.free(start + frac * seg.backward_time_s, act.nbytes)
                bwd_total += gpu_t - start
                alg_flops += 2 * seg.forward_flops
                exec_flops += 2 * seg.forward_flops

        step_time = gpu_t + weight_update_s
        return SimResult(
            strategy=self.strategy,
            step_time_s=step_time,
            forward_time_s=fwd_total,
            backward_time_s=bwd_total,
            weight_update_time_s=weight_update_s,
            io_stall_time_s=io_stall,
            activation_peak_bytes=timeline.memory_peak(),
            offloaded_bytes=offloaded,
            loaded_bytes=loaded,
            forwarded_bytes=forwarded,
            algorithmic_flops=alg_flops,
            executed_flops=exec_flops,
            timeline=timeline,
            offloaded_cpu_bytes=off_cpu,
            offloaded_ssd_bytes=off_ssd,
            cpu_pool_peak_bytes=cpu_peak,
            kept_bytes=accounting.kept_bytes,
        )


def simulate_strategy(
    config: ModelConfig,
    batch: int,
    strategy: PlacementStrategy,
    write_bandwidth: float,
    read_bandwidth: float,
    gpu: GPUSpec = A100_PCIE_40GB,
    parallelism: Optional[ParallelismConfig] = None,
    policy: Optional[OffloadPolicy] = None,
    num_microbatches: int = 1,
    timing: Optional[KernelTimingModel] = None,
    cpu_pool_bytes: Optional[int] = None,
    cpu_write_bandwidth: Optional[float] = None,
    cpu_read_bandwidth: Optional[float] = None,
    io_mode: str = "duplex",
) -> SimResult:
    """Convenience wrapper: build segments, add weight-update time, run."""
    par = parallelism if parallelism is not None else ParallelismConfig()
    segments = build_segments(config, batch, gpu, par, timing)
    params_per_gpu = par.params_per_gpu(model_param_count(config))
    update = weight_update_time(params_per_gpu, gpu, dtype_bytes=config.dtype_bytes)
    sim = StepSimulator(
        segments,
        strategy,
        write_bandwidth=write_bandwidth,
        read_bandwidth=read_bandwidth,
        policy=policy,
        num_microbatches=num_microbatches,
        dtype_bytes=config.dtype_bytes,
        cpu_pool_bytes=cpu_pool_bytes,
        cpu_write_bandwidth=cpu_write_bandwidth,
        cpu_read_bandwidth=cpu_read_bandwidth,
        io_mode=io_mode,
    )
    return sim.run(weight_update_s=update)


#: Bandwidth/workload drift shapes for multi-step adaptive runs:
#:
#: - ``"static"``     — nothing changes (the control arm);
#: - ``"step"``       — bandwidth drops by ``write_factor``/``read_factor``
#:   at ``drift_step`` and stays there (a co-tenant job lands on the
#:   array, a RAID member dies);
#: - ``"ramp"``       — the same drop applied linearly over ``ramp_steps``
#:   (thermal throttling, an SLC cache filling up);
#: - ``"microbatch"`` — bandwidth holds but the micro-batch count changes
#:   at ``drift_step`` (a data-pipeline resize mid-run), shifting the
#:   activation volume and the forward/backward windows instead.
DRIFT_KINDS = ("static", "step", "ramp", "microbatch")


@dataclass(frozen=True)
class DriftScenario:
    """A per-step schedule of bandwidths and micro-batch counts.

    The step simulator models one step at fixed bandwidth; a scenario
    strings ``steps`` of them together and answers "what does the
    hardware look like during step ``i``" — the moving target the online
    adaptive controller has to track and a static budget cannot.
    """

    steps: int
    write_bandwidth: float
    read_bandwidth: float
    kind: str = "static"
    drift_step: int = 0
    write_factor: float = 1.0
    read_factor: float = 1.0
    ramp_steps: int = 1
    num_microbatches: int = 1
    drift_microbatches: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in DRIFT_KINDS:
            raise ValueError(f"unknown drift kind {self.kind!r}; expected one of {DRIFT_KINDS}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1: {self.steps}")
        if self.write_bandwidth <= 0 or self.read_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.write_factor <= 0 or self.read_factor <= 0:
            raise ValueError("drift factors must be positive")
        if self.ramp_steps < 1:
            raise ValueError(f"ramp_steps must be >= 1: {self.ramp_steps}")

    # ------------------------------------------------------------ constructors
    @classmethod
    def static(cls, write_bandwidth: float, read_bandwidth: float, steps: int,
               num_microbatches: int = 1) -> "DriftScenario":
        return cls(steps, write_bandwidth, read_bandwidth,
                   num_microbatches=num_microbatches)

    @classmethod
    def step_drop(cls, write_bandwidth: float, read_bandwidth: float, steps: int,
                  drift_step: int, write_factor: float = 0.5,
                  read_factor: float = 1.0, num_microbatches: int = 1) -> "DriftScenario":
        """Step-function degradation: bandwidth falls off a cliff at
        ``drift_step`` (``write_factor=0.5`` is the 2x write drop of the
        acceptance scenario)."""
        return cls(steps, write_bandwidth, read_bandwidth, kind="step",
                   drift_step=drift_step, write_factor=write_factor,
                   read_factor=read_factor, num_microbatches=num_microbatches)

    @classmethod
    def ramp(cls, write_bandwidth: float, read_bandwidth: float, steps: int,
             drift_step: int, ramp_steps: int, write_factor: float = 0.5,
             read_factor: float = 1.0, num_microbatches: int = 1) -> "DriftScenario":
        """Linear degradation starting at ``drift_step`` (the first
        affected step, carrying ``1/ramp_steps`` of the drop) and
        reaching the terminal factors at ``drift_step + ramp_steps - 1``."""
        return cls(steps, write_bandwidth, read_bandwidth, kind="ramp",
                   drift_step=drift_step, write_factor=write_factor,
                   read_factor=read_factor, ramp_steps=ramp_steps,
                   num_microbatches=num_microbatches)

    @classmethod
    def microbatch_resize(cls, write_bandwidth: float, read_bandwidth: float,
                          steps: int, drift_step: int, before: int = 1,
                          after: int = 2) -> "DriftScenario":
        """Mid-run micro-batch resize: the activation volume and windows
        change while the hardware stays put."""
        return cls(steps, write_bandwidth, read_bandwidth, kind="microbatch",
                   drift_step=drift_step, num_microbatches=before,
                   drift_microbatches=after)

    # ----------------------------------------------------------------- queries
    def _progress(self, step: int) -> float:
        """Fraction of the drift applied at ``step`` (0 before, 1 after)."""
        if self.kind in ("static", "microbatch") or step < self.drift_step:
            return 0.0
        if self.kind == "step":
            return 1.0
        return min(1.0, (step - self.drift_step + 1) / self.ramp_steps)

    def write_bandwidth_at(self, step: int) -> float:
        p = self._progress(step)
        return self.write_bandwidth * (1.0 + p * (self.write_factor - 1.0))

    def read_bandwidth_at(self, step: int) -> float:
        p = self._progress(step)
        return self.read_bandwidth * (1.0 + p * (self.read_factor - 1.0))

    def microbatches_at(self, step: int) -> int:
        if (
            self.kind == "microbatch"
            and self.drift_microbatches is not None
            and step >= self.drift_step
        ):
            return self.drift_microbatches
        return self.num_microbatches


@dataclass
class AdaptiveRunResult:
    """Outputs of a multi-step (static or adaptive) simulated run."""

    scenario: DriftScenario
    results: List[SimResult]
    #: The offload budget in force *during* each step (None = uncapped).
    budgets: List[Optional[int]]
    #: Controller decisions taken *after* each step (empty without one).
    decisions: List[ControllerDecision]

    def stall_time_s(self, start: int = 0, stop: Optional[int] = None) -> float:
        """Total backward stall over the step range ``[start, stop)``."""
        return sum(r.io_stall_time_s for r in self.results[start:stop])

    @property
    def total_stall_s(self) -> float:
        return self.stall_time_s()

    @property
    def total_offloaded_bytes(self) -> int:
        return sum(r.offloaded_bytes for r in self.results)


def _observation_from_sim(result: SimResult) -> StepObservation:
    """Translate one simulated step into the controller's feed.

    Bandwidth is *observed* the same way the engine observes it —
    bytes moved over channel-busy seconds off the timeline — so the
    controller sees the per-op latency tax, not the configured constant.
    CPU-tier lanes are merged in when present (the controller's budget
    then reflects the blended drain rate the workload actually gets).
    """
    timeline = result.timeline
    write_busy = timeline.lane_busy_time("store") + timeline.lane_busy_time("cpu_store")
    read_busy = timeline.lane_busy_time("load") + timeline.lane_busy_time("cpu_load")
    stored_tensors = sum(
        1 for e in timeline.events if e.lane in ("store", "cpu_store")
    )
    read_count = sum(1 for e in timeline.events if e.lane in ("load", "cpu_load"))
    return StepObservation(
        forward_time_s=result.forward_time_s,
        backward_time_s=result.backward_time_s,
        activation_bytes=result.offloaded_bytes + result.kept_bytes,
        write_bytes=result.offloaded_bytes,
        write_busy_s=write_busy,
        read_bytes=result.loaded_bytes,
        read_busy_s=read_busy,
        read_count=read_count,
        stored_tensors=stored_tensors,
        stored_bytes=result.offloaded_bytes,
        stall_time_s=result.io_stall_time_s,
    )


#: Failure shapes for multi-step fault runs (the simulator counterpart of
#: the functional :class:`~repro.io.faults.FaultPlan`):
#:
#: - ``"transient"``   — a seeded fraction of transfers fails once and is
#:   retried: effective bandwidth drops by the replay factor and every op
#:   pays the expected backoff latency;
#: - ``"latency_spike"`` — a seeded fraction of transfers stalls an extra
#:   ``latency_spike_s`` (device hiccups that are slow, not wrong);
#: - ``"lane_death"``  — at ``death_step`` the SSD lane bricks and every
#:   offload fails over to host memory at ``failover_bandwidth`` (the
#:   tiered engine's CPU tier), the analytic view of
#:   :meth:`~repro.core.tiered.TieredOffloader` failover.
FAULT_KINDS = ("transient", "latency_spike", "lane_death")


@dataclass(frozen=True)
class FaultScenario:
    """A seeded per-step schedule of I/O failures.

    The functional chaos harness injects *individual* faults and proves
    bit-exact recovery; this scenario answers the throughput question —
    what do retries, latency spikes, and a mid-run device death cost in
    step time and stall — using an expected-value model: a per-op fault
    at ``fault_rate`` replays the transfer once (bandwidth derated by
    ``1 + rate``) and pays the retry backoff, with the rate jittered
    per-step by the seed so runs have texture but stay reproducible.
    """

    steps: int
    write_bandwidth: float
    read_bandwidth: float
    kind: str = "transient"
    seed: int = 0
    #: Expected fraction of transfers hit per step.
    fault_rate: float = 0.02
    #: Backoff paid per faulted transfer before its retry.
    retry_backoff_s: float = 0.002
    #: Extra per-op stall of the latency_spike kind.
    latency_spike_s: float = 0.02
    #: lane_death: first step the SSD lane is gone (None = alive forever).
    death_step: Optional[int] = None
    #: Post-death drain rate (defaults to the PCIe link: host memory).
    failover_bandwidth: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1: {self.steps}")
        if self.write_bandwidth <= 0 or self.read_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1]: {self.fault_rate}")
        if self.retry_backoff_s < 0 or self.latency_spike_s < 0:
            raise ValueError("fault latencies must be >= 0")
        if self.kind == "lane_death" and self.death_step is None:
            raise ValueError("lane_death needs a death_step")

    # ------------------------------------------------------------ constructors
    @classmethod
    def transient(cls, write_bandwidth: float, read_bandwidth: float, steps: int,
                  fault_rate: float = 0.02, seed: int = 0) -> "FaultScenario":
        return cls(steps, write_bandwidth, read_bandwidth, kind="transient",
                   fault_rate=fault_rate, seed=seed)

    @classmethod
    def latency(cls, write_bandwidth: float, read_bandwidth: float, steps: int,
                fault_rate: float = 0.02, spike_s: float = 0.02,
                seed: int = 0) -> "FaultScenario":
        return cls(steps, write_bandwidth, read_bandwidth, kind="latency_spike",
                   fault_rate=fault_rate, latency_spike_s=spike_s, seed=seed)

    @classmethod
    def lane_death(cls, write_bandwidth: float, read_bandwidth: float, steps: int,
                   death_step: int, failover_bandwidth: Optional[float] = None,
                   seed: int = 0) -> "FaultScenario":
        return cls(steps, write_bandwidth, read_bandwidth, kind="lane_death",
                   death_step=death_step, failover_bandwidth=failover_bandwidth,
                   seed=seed)

    # ----------------------------------------------------------------- queries
    def ssd_alive_at(self, step: int) -> bool:
        return not (
            self.kind == "lane_death"
            and self.death_step is not None
            and step >= self.death_step
        )

    def fault_rate_at(self, step: int) -> float:
        """Seeded per-step jitter of the fault rate in [0.5x, 1.5x]."""
        if self.fault_rate <= 0:
            return 0.0
        draw = random.Random((self.seed << 16) ^ step).random()
        return min(1.0, self.fault_rate * (0.5 + draw))

    def _failover_bw(self) -> float:
        if self.failover_bandwidth is not None:
            return self.failover_bandwidth
        return GPU_LINK_GEN4_X16.bandwidth

    def write_bandwidth_at(self, step: int) -> float:
        if not self.ssd_alive_at(step):
            return self._failover_bw()
        if self.kind == "transient":
            # A faulted transfer replays once: the channel moves the same
            # bytes twice for rate of the ops.
            return self.write_bandwidth / (1.0 + self.fault_rate_at(step))
        return self.write_bandwidth

    def read_bandwidth_at(self, step: int) -> float:
        if not self.ssd_alive_at(step):
            return self._failover_bw()
        if self.kind == "transient":
            return self.read_bandwidth / (1.0 + self.fault_rate_at(step))
        return self.read_bandwidth

    def io_latency_at(self, step: int, base_latency_s: float) -> float:
        """Expected per-op latency including the fault tax."""
        rate = self.fault_rate_at(step)
        if self.kind == "transient" and self.ssd_alive_at(step):
            return base_latency_s + rate * self.retry_backoff_s
        if self.kind == "latency_spike":
            return base_latency_s + rate * self.latency_spike_s
        return base_latency_s


@dataclass
class FaultRunResult:
    """Outputs of a multi-step fault-scenario run, with its clean twin."""

    scenario: FaultScenario
    results: List[SimResult]
    #: The same steps at nominal bandwidth/latency (the A/B baseline).
    fault_free: List[SimResult]
    #: First step that ran in failover mode (None = SSD alive throughout).
    failover_step: Optional[int]

    @property
    def total_stall_s(self) -> float:
        return sum(r.io_stall_time_s for r in self.results)

    @property
    def fault_free_stall_s(self) -> float:
        return sum(r.io_stall_time_s for r in self.fault_free)

    @property
    def step_time_overhead(self) -> float:
        """Relative step-time cost of the faults vs the clean run."""
        clean = sum(r.step_time_s for r in self.fault_free)
        if clean <= 0:
            return 0.0
        return sum(r.step_time_s for r in self.results) / clean - 1.0


def simulate_fault_run(
    segments: List[SegmentSpec],
    scenario: FaultScenario,
    policy: Optional[OffloadPolicy] = None,
    io_mode: str = "fifo",
    io_latency_s: float = 20e-6,
    num_microbatches: int = 1,
    weight_update_s: float = 0.0,
    dtype_bytes: int = 2,
) -> FaultRunResult:
    """Play ``scenario.steps`` steps under the fault schedule, plus the
    fault-free twin at nominal conditions for the A/B.

    ``io_mode`` defaults to ``"fifo"`` (shared contended channel): retry
    replays and latency spikes land on the same channel backward's loads
    need, which is where the fault tax actually hurts.
    """

    def run_step(step: int, faulted: bool) -> SimResult:
        if faulted:
            write_bw = scenario.write_bandwidth_at(step)
            read_bw = scenario.read_bandwidth_at(step)
            latency = scenario.io_latency_at(step, io_latency_s)
        else:
            write_bw, read_bw, latency = (
                scenario.write_bandwidth,
                scenario.read_bandwidth,
                io_latency_s,
            )
        sim = StepSimulator(
            segments,
            PlacementStrategy.OFFLOAD,
            write_bandwidth=write_bw,
            read_bandwidth=read_bw,
            policy=policy if policy is not None else OffloadPolicy(),
            num_microbatches=num_microbatches,
            io_latency_s=latency,
            dtype_bytes=dtype_bytes,
            io_mode=io_mode,
        )
        return sim.run(weight_update_s=weight_update_s)

    results: List[SimResult] = []
    failover_step: Optional[int] = None
    # The nominal conditions are constant across steps, so one clean run
    # stands in for every step of the fault-free twin.
    clean = run_step(0, faulted=False)
    fault_free = [clean] * scenario.steps
    for step in range(scenario.steps):
        if failover_step is None and not scenario.ssd_alive_at(step):
            failover_step = step
        results.append(run_step(step, faulted=True))
    return FaultRunResult(
        scenario=scenario,
        results=results,
        fault_free=fault_free,
        failover_step=failover_step,
    )


def simulate_adaptive_run(
    segments: List[SegmentSpec],
    scenario: DriftScenario,
    policy: Optional[OffloadPolicy] = None,
    controller: Optional[AutotuneController] = None,
    io_mode: str = "fifo",
    keep_last_segments: int = 2,
    prefetch_segments: int = 2,
    weight_update_s: float = 0.0,
    dtype_bytes: int = 2,
    cpu_pool_bytes: Optional[int] = None,
) -> AdaptiveRunResult:
    """Play ``scenario.steps`` training steps, optionally closing the loop.

    Without a controller this is the static arm: whatever budget the
    policy carries stays in force for the whole run (the paper's one-shot
    sizing).  With a controller, each step's timeline is folded into the
    EWMA estimators and a re-tuned budget is installed into the (shared,
    mutable) policy before the next step — the same
    ``observe -> choose_offload_budget -> install`` loop the functional
    engine runs, minus the engine.

    ``io_mode`` defaults to ``"fifo"`` (one shared, contended SSD
    channel): that is where a stale budget hurts — the over-committed
    store backlog lands in front of backward's loads.
    """
    policy = policy if policy is not None else OffloadPolicy()
    results: List[SimResult] = []
    budgets: List[Optional[int]] = []
    decisions: List[ControllerDecision] = []
    for step in range(scenario.steps):
        sim = StepSimulator(
            segments,
            PlacementStrategy.OFFLOAD,
            write_bandwidth=scenario.write_bandwidth_at(step),
            read_bandwidth=scenario.read_bandwidth_at(step),
            policy=policy,
            num_microbatches=scenario.microbatches_at(step),
            prefetch_segments=prefetch_segments,
            keep_last_segments=keep_last_segments,
            dtype_bytes=dtype_bytes,
            cpu_pool_bytes=cpu_pool_bytes,
            io_mode=io_mode,
        )
        budgets.append(policy.config.offload_budget_bytes)
        result = sim.run(weight_update_s=weight_update_s)
        results.append(result)
        if controller is not None:
            decision = controller.observe(_observation_from_sim(result))
            decisions.append(decision)
            if decision.retuned:
                policy.install_budget(decision.offload_budget_bytes)
    return AdaptiveRunResult(
        scenario=scenario, results=results, budgets=budgets, decisions=decisions
    )


# --------------------------------------------------------------------------
# Multi-tenant contention harness
# --------------------------------------------------------------------------

#: Default virtual device bandwidth of the tenant harness (bytes per
#: virtual second).  The absolute value is immaterial — every metric the
#: harness reports is a ratio over it.
DEFAULT_TENANT_DEVICE_BW = 256e6


@dataclass(frozen=True)
class TenantJobSpec:
    """One tenant's synthetic offload burst for :class:`MultiTenantHarness`.

    ``num_tensors`` store requests of ``tensor_bytes`` each are submitted
    back-to-back; quotas forward to the tenant's
    :class:`~repro.io.tenancy.TenantContext`.
    """

    name: str
    weight: float = 1.0
    num_tensors: int = 32
    tensor_bytes: int = 64 << 10
    byte_quota: Optional[int] = None
    over_quota: str = "reject"

    @property
    def total_bytes(self) -> int:
        return self.num_tensors * self.tensor_bytes


@dataclass
class TenantRunMetrics:
    """Per-tenant outputs of one harness run (virtual-clock time base)."""

    name: str
    weight: float
    submitted_bytes: int
    executed_bytes: int
    rejected_bytes: int
    #: Virtual time at which the tenant's last byte landed on the device.
    finish_time_s: float
    #: executed bytes / finish time — completion bandwidth.
    bandwidth: float
    #: Bytes this tenant moved while *every* tenant still had queued work
    #: (up to the first tenant's completion) — the contended-window share
    #: that fair-share scheduling equalises and FIFO does not.
    contended_bytes: int


@dataclass
class MultiTenantRunResult:
    """Outputs of one :class:`MultiTenantHarness` run."""

    fair: bool
    device_bandwidth: float
    tenants: Dict[str, TenantRunMetrics]
    #: Jain's fairness index over the weight-normalised contended-window
    #: byte shares (1.0 = perfectly proportional service).
    contended_jain: float
    #: Jain's index over weight-normalised completion bandwidths.
    bandwidth_jain: float
    #: Per-tenant scheduler books (TenantStats snapshot after drain).
    tenant_stats: Dict[str, object] = field(default_factory=dict)


class VirtualDevice:
    """A serial device on a virtual clock.

    Service order is whatever the scheduler dequeues; each write advances
    the virtual clock by ``nbytes / bandwidth`` under a lock, so byte
    shares and finish times are deterministic — no wall-clock jitter, no
    sleeps.  The ``start`` gate holds the lane worker until every tenant
    has its burst queued, creating the contended window the fairness
    metrics are defined over.  Shared by the multi-tenant fairness
    harness below and the serving tests' scheduler-priority probes.
    """

    def __init__(self, bandwidth: float) -> None:
        self.bandwidth = bandwidth
        self.start = threading.Event()
        self._lock = threading.Lock()
        self.clock = 0.0
        #: (tenant, nbytes, virtual completion time) in service order.
        self.served: List[Tuple[str, int, float]] = []

    def write(self, tenant: str, nbytes: int) -> None:
        self.start.wait()
        with self._lock:
            self.clock += nbytes / self.bandwidth
            self.served.append((tenant, nbytes, self.clock))


#: Backwards-compatible alias from when the device was harness-private.
_VirtualDevice = VirtualDevice


class MultiTenantHarness:
    """Drive N tenant bursts through one shared-lane scheduler and measure
    who got what.

    The A/B axis is ``fair``: ``True`` runs the scheduler's weighted
    deficit-round-robin dequeue (one
    :class:`~repro.io.tenancy.TenantRegistry` shared with admission);
    ``False`` runs the same registry over the legacy FIFO heap — the
    naive baseline whose head-of-line bias the fairness suite quantifies.
    All service lands on a single-worker virtual device, so results are
    deterministic run to run.
    """

    def __init__(
        self,
        jobs: List[TenantJobSpec],
        device_bandwidth: float = DEFAULT_TENANT_DEVICE_BW,
        fair: bool = True,
        quantum_bytes: Optional[int] = None,
    ) -> None:
        if not jobs:
            raise ValueError("need at least one tenant job")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        if device_bandwidth <= 0:
            raise ValueError(f"device_bandwidth must be positive: {device_bandwidth}")
        self.jobs = jobs
        self.device_bandwidth = device_bandwidth
        self.fair = fair
        self.quantum_bytes = quantum_bytes

    def run(self) -> MultiTenantRunResult:
        from repro.io.scheduler import IORequest, IOScheduler, Priority
        from repro.io.tenancy import (
            DEFAULT_DRR_QUANTUM_BYTES,
            TenantQuotaError,
            TenantRegistry,
            jain_index,
        )

        registry = TenantRegistry(
            quantum_bytes=(
                self.quantum_bytes
                if self.quantum_bytes is not None
                else DEFAULT_DRR_QUANTUM_BYTES
            )
        )
        for job in self.jobs:
            registry.register(
                job.name,
                weight=job.weight,
                byte_quota=job.byte_quota,
                over_quota=job.over_quota,
            )
        device = VirtualDevice(self.device_bandwidth)
        scheduler = IOScheduler(
            num_store_workers=1,
            num_load_workers=1,
            lanes=("ssd",),
            fifo=not self.fair,
            coalesce_bytes=0,
            tenants=registry,
            name="tenant-harness",
        )
        rejected: Dict[str, int] = {job.name: 0 for job in self.jobs}
        try:
            for job in self.jobs:
                for i in range(job.num_tensors):
                    request = IORequest(
                        lambda t=job.name, n=job.tensor_bytes: device.write(t, n),
                        kind="store",
                        priority=Priority.STORE,
                        tensor_id=f"{job.name}:{i}",
                        nbytes=job.tensor_bytes,
                        lane="ssd",
                        tenant=job.name,
                    )
                    try:
                        scheduler.submit(request)
                    except TenantQuotaError:
                        rejected[job.name] += job.tensor_bytes
            device.start.set()
            scheduler.drain()
        finally:
            device.start.set()  # never leave the worker gated on error
            scheduler.shutdown()

        served = device.served
        finish: Dict[str, float] = {}
        executed: Dict[str, int] = {job.name: 0 for job in self.jobs}
        for tenant, nbytes, at in served:
            executed[tenant] = executed.get(tenant, 0) + nbytes
            finish[tenant] = at
        # The contended window closes when the first tenant runs dry —
        # beyond it the survivors split idle capacity, which says nothing
        # about fairness under contention.
        active = [t for t, done in finish.items() if executed.get(t, 0) > 0]
        window_end = min((finish[t] for t in active), default=0.0)
        contended: Dict[str, int] = {job.name: 0 for job in self.jobs}
        for tenant, nbytes, at in served:
            if at <= window_end + 1e-12:
                contended[tenant] = contended.get(tenant, 0) + nbytes

        metrics: Dict[str, TenantRunMetrics] = {}
        for job in self.jobs:
            done_at = finish.get(job.name, 0.0)
            done_bytes = executed.get(job.name, 0)
            metrics[job.name] = TenantRunMetrics(
                name=job.name,
                weight=job.weight,
                submitted_bytes=job.total_bytes - rejected[job.name],
                executed_bytes=done_bytes,
                rejected_bytes=rejected[job.name],
                finish_time_s=done_at,
                bandwidth=(done_bytes / done_at) if done_at > 0 else 0.0,
                contended_bytes=contended.get(job.name, 0),
            )
        contended_jain = jain_index(
            [m.contended_bytes / m.weight for m in metrics.values() if m.executed_bytes]
        )
        bandwidth_jain = jain_index(
            [m.bandwidth / m.weight for m in metrics.values() if m.executed_bytes]
        )
        return MultiTenantRunResult(
            fair=self.fair,
            device_bandwidth=self.device_bandwidth,
            tenants=metrics,
            contended_jain=contended_jain,
            bandwidth_jain=bandwidth_jain,
            tenant_stats=registry.stats_snapshot(),
        )
