"""Timeline recording for the simulator (renders Fig. 2-style traces)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class TimelineEvent:
    """One box on a resource lane."""

    lane: str        # "gpu" | "store" | "load"
    label: str       # e.g. "F L2 mb0" or "store L2.fc_in_out"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Collects events and memory deltas; computes peaks and renders ASCII."""

    def __init__(self) -> None:
        self.events: List[TimelineEvent] = []
        self._memory_deltas: List[Tuple[float, int]] = []

    def record(self, lane: str, label: str, start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"event ends before it starts: {label}")
        self.events.append(TimelineEvent(lane, label, start, end))

    def alloc(self, t: float, nbytes: int) -> None:
        self._memory_deltas.append((t, nbytes))

    def free(self, t: float, nbytes: int) -> None:
        self._memory_deltas.append((t, -nbytes))

    def memory_peak(self) -> int:
        """Peak concurrent bytes over the recorded deltas."""
        current = 0
        peak = 0
        # Frees at the same instant as allocations settle first so a
        # back-to-back free/alloc at time t is not double-counted.
        for _, delta in sorted(self._memory_deltas, key=lambda e: (e[0], e[1])):
            current += delta
            peak = max(peak, current)
        return peak

    def lane_busy_time(self, lane: str) -> float:
        return sum(e.duration for e in self.events if e.lane == lane)

    def end_time(self) -> float:
        if not self.events:
            return 0.0
        return max(e.end for e in self.events)

    def render_ascii(self, width: int = 100, lanes: Optional[List[str]] = None) -> str:
        """A Fig. 2-style lane chart (one character ~ total/width seconds)."""
        if not self.events:
            return "(empty timeline)"
        total = self.end_time()
        lane_names = lanes if lanes is not None else sorted({e.lane for e in self.events})
        rows = []
        for lane in lane_names:
            row = [" "] * width
            for event in self.events:
                if event.lane != lane:
                    continue
                lo = min(width - 1, int(event.start / total * width))
                hi = min(width, max(lo + 1, int(event.end / total * width)))
                mark = event.label[0] if event.label else "#"
                for i in range(lo, hi):
                    row[i] = mark
            rows.append(f"{lane:>6} |{''.join(row)}|")
        return "\n".join(rows)
