"""Pipeline-parallel training with per-stage activation offloading.

This simulates the setting Fig. 2 actually sketches: a 1F1B (or GPipe)
pipeline where every stage owns a dedicated SSD array and offloads each
micro-batch's activations between its forward and its backward.  The
schedule decides the offload pattern:

- a stage's warmup forwards pile up ``min(stages - s, microbatches)``
  micro-batches of activations (the 1F1B inventory) — these offload;
- when a backward directly follows the matching forward on the same stage
  (the steady-state tail, e.g. L3 of micro-batch 2 in Fig. 2), the
  activations are *kept* — exactly the paper's marker-4 rule, emerging
  from the schedule rather than from a heuristic;
- a store still in flight when the backward arrives is *forwarded*.

Outputs per stage: activation memory peak, offloaded bytes, stalls — so
the headline claims can be checked where they matter most, on the
activation-richest first stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.timeline import Timeline
from repro.train.pipeline import ScheduleKind


@dataclass(frozen=True)
class StageWorkload:
    """Per-stage per-micro-batch costs (identical stages assumed)."""

    forward_time_s: float
    backward_time_s: float
    activation_bytes: int

    def __post_init__(self) -> None:
        if self.forward_time_s <= 0 or self.backward_time_s <= 0:
            raise ValueError("stage times must be positive")
        if self.activation_bytes < 0:
            raise ValueError("activation bytes must be non-negative")


@dataclass
class StageResult:
    """Per-stage outcome of one pipeline step."""

    stage: int
    activation_peak_bytes: int
    offloaded_bytes: int
    forwarded_bytes: int
    kept_bytes: int
    io_stall_s: float


@dataclass
class PipelineOffloadResult:
    """Whole-pipeline outcome."""

    step_time_s: float
    baseline_step_time_s: float
    stages: List[StageResult]
    timeline: Timeline = field(repr=False, default_factory=Timeline)

    @property
    def overhead(self) -> float:
        return self.step_time_s / self.baseline_step_time_s - 1.0

    @property
    def total_io_stall_s(self) -> float:
        return sum(s.io_stall_s for s in self.stages)


def _stage_commands(kind: ScheduleKind, num_stages: int, num_microbatches: int, stage: int) -> List[Tuple[str, int]]:
    """The command list one stage executes, in order."""
    if kind is ScheduleKind.GPIPE:
        commands = [("F", m) for m in range(num_microbatches)]
        commands += [("B", m) for m in range(num_microbatches)]
        return commands
    num_warmup = min(num_stages - stage - 1, num_microbatches)
    commands = [("F", m) for m in range(num_warmup)]
    next_f, next_b = num_warmup, 0
    while next_f < num_microbatches or next_b < num_microbatches:
        if next_f < num_microbatches:
            commands.append(("F", next_f))
            next_f += 1
        if next_b < num_microbatches:
            commands.append(("B", next_b))
            next_b += 1
    return commands


def simulate_pipeline_offload(
    workload: StageWorkload,
    num_stages: int,
    num_microbatches: int,
    write_bandwidth: float,
    read_bandwidth: float,
    kind: ScheduleKind = ScheduleKind.ONE_F_ONE_B,
    offload: bool = True,
    io_latency_s: float = 20e-6,
) -> PipelineOffloadResult:
    """Simulate one pipeline step with per-stage offloading.

    Args:
        workload: uniform per-stage costs.
        num_stages / num_microbatches: pipeline shape.
        write_bandwidth / read_bandwidth: each stage's dedicated array.
        kind: 1F1B (default) or GPipe.
        offload: False gives the keep-everything baseline.
    """
    if num_stages < 1 or num_microbatches < 1:
        raise ValueError("stages and microbatches must be >= 1")
    if write_bandwidth <= 0 or read_bandwidth <= 0:
        raise ValueError("bandwidths must be positive")

    commands = {
        s: _stage_commands(kind, num_stages, num_microbatches, s)
        for s in range(num_stages)
    }
    # Keep rule: backward is this stage's very next command after the
    # matching forward (Fig. 2 marker 4).
    keep: Dict[Tuple[int, int], bool] = {}
    for s, cmds in commands.items():
        for i, (op, m) in enumerate(cmds):
            if op == "F":
                keep[(s, m)] = i + 1 < len(cmds) and cmds[i + 1] == ("B", m)

    timeline = Timeline()
    stage_free = [0.0] * num_stages
    store_cursor = [0.0] * num_stages
    load_cursor = [0.0] * num_stages
    f_done: Dict[Tuple[int, int], float] = {}
    b_done: Dict[Tuple[int, int], float] = {}
    store_end: Dict[Tuple[int, int], Optional[float]] = {}
    per_stage_timeline = [Timeline() for _ in range(num_stages)]
    stats = [
        StageResult(stage=s, activation_peak_bytes=0, offloaded_bytes=0,
                    forwarded_bytes=0, kept_bytes=0, io_stall_s=0.0)
        for s in range(num_stages)
    ]

    cursors = [0] * num_stages
    progressed = True
    while progressed:
        progressed = False
        for s in range(num_stages):
            while cursors[s] < len(commands[s]):
                op, m = commands[s][cursors[s]]
                if op == "F":
                    if s > 0 and (s - 1, m) not in f_done:
                        break
                    ready = f_done.get((s - 1, m), 0.0)
                    start = max(ready, stage_free[s])
                    end = start + workload.forward_time_s
                    stage_free[s] = end
                    f_done[(s, m)] = end
                    timeline.record("gpu", f"F{m}s{s}", start, end)
                    per_stage_timeline[s].alloc(start, workload.activation_bytes)
                    if offload and not keep[(s, m)] and workload.activation_bytes:
                        w_start = max(store_cursor[s], end)
                        w_end = w_start + io_latency_s + workload.activation_bytes / write_bandwidth
                        store_cursor[s] = w_end
                        store_end[(s, m)] = w_end
                        stats[s].offloaded_bytes += workload.activation_bytes
                        timeline.record("store", f"s{m}s{s}", w_start, w_end)
                        per_stage_timeline[s].free(w_end, workload.activation_bytes)
                    else:
                        store_end[(s, m)] = None
                        stats[s].kept_bytes += workload.activation_bytes
                else:
                    if s < num_stages - 1 and (s + 1, m) not in b_done:
                        break
                    if (s, m) not in f_done:
                        break
                    dep_ready = max(b_done.get((s + 1, m), 0.0), f_done[(s, m)])
                    earliest = max(dep_ready, stage_free[s])
                    w_end = store_end[(s, m)]
                    if w_end is None:
                        data_ready = earliest  # kept resident
                    elif w_end > earliest:
                        # Store in flight: data forwarding, memory stays.
                        stats[s].forwarded_bytes += workload.activation_bytes
                        data_ready = earliest
                    else:
                        # Reload from the stage's array; prefetch was
                        # issued one command slot earlier.
                        prev_end = stage_free[s]
                        l_start = max(load_cursor[s], w_end,
                                      prev_end - workload.backward_time_s)
                        l_end = l_start + io_latency_s + workload.activation_bytes / read_bandwidth
                        load_cursor[s] = l_end
                        timeline.record("load", f"l{m}s{s}", l_start, l_end)
                        per_stage_timeline[s].alloc(l_start, workload.activation_bytes)
                        data_ready = l_end
                    start = max(earliest, data_ready)
                    stats[s].io_stall_s += start - earliest
                    end = start + workload.backward_time_s
                    stage_free[s] = end
                    b_done[(s, m)] = end
                    timeline.record("gpu", f"B{m}s{s}", start, end)
                    per_stage_timeline[s].free(end, workload.activation_bytes)
                cursors[s] += 1
                progressed = True
    if any(cursors[s] != len(commands[s]) for s in range(num_stages)):
        raise RuntimeError("pipeline-offload schedule deadlocked")

    for s in range(num_stages):
        stats[s].activation_peak_bytes = per_stage_timeline[s].memory_peak()

    step_time = max(b_done.values())
    baseline = num_microbatches * (workload.forward_time_s + workload.backward_time_s)
    # Ideal (stall-free) pipeline step for the same shape:
    ideal = (num_microbatches + num_stages - 1) * (
        workload.forward_time_s + workload.backward_time_s
    )
    return PipelineOffloadResult(
        step_time_s=step_time,
        baseline_step_time_s=ideal,
        stages=stats,
        timeline=timeline,
    )
