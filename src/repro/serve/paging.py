"""Pluggable KV paging strategies (SNIPPETS §2 blueprint).

A :class:`PagingStrategy` answers the three questions the
:class:`~repro.serve.kv_pool.KVBlockPool` asks:

1. **place** — where does a freshly produced KV block go *now*
   (HBM-resident, or paged out to the engine's CPU/SSD tiers)?
2. **eviction order** — when HBM is under pressure, which resident
   blocks leave first?
3. **prefetch plan** — given the decode schedule (which requests run in
   the upcoming rounds), which paged-out blocks should be brought back
   *before* their decode blocks on them?

The shipped strategies mirror the placement/migration strategy set of
the data-placement simulator referenced in SNIPPETS.md §2: PreferHBM,
SplitToken (position-split placement), LayerImportance (importance-
ranked eviction) and LookAheadBatch (schedule-keyed prefetch).

:class:`PagingPolicy` is the bridge into the engine: it installs a
per-tenant placement hook through the *existing*
:meth:`repro.core.policy.OffloadPolicy.set_tenant_policy` shape
(``placer(nbytes, cpu_free_bytes) -> Optional[Tier]``).  The per-block
tier the strategy chose travels to that hook through a thread-local
hint set around the engine ``store`` call — the hook signature the
training front-end already uses is untouched, and tenants without a
hint fall back to the shared placement rule.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

from repro.core.policy import OffloadPolicy, Tier


@dataclass(frozen=True)
class BlockContext:
    """Everything a strategy may condition a placement decision on."""

    request_id: str
    tenant: str
    layer: int
    num_layers: int
    #: Index of this block within the request's per-layer block list.
    block_index: int
    #: Total context blocks the request will write per layer (known at
    #: admission from the prompt length).
    context_blocks: int
    token_start: int
    token_end: int
    nbytes: int


class PagingStrategy:
    """Base strategy: everything in HBM, LRU eviction, no prefetch."""

    name = "prefer-hbm"

    # ---------------------------------------------------------- placement
    def place(self, ctx: BlockContext) -> Tier:
        """Tier for a freshly written block.  ``Tier.GPU`` means
        HBM-resident; ``CPU``/``SSD`` page it out to the engine with
        that tier as the per-tenant placement hint."""
        return Tier.GPU

    # ----------------------------------------------------------- eviction
    def eviction_order(self, resident: Sequence) -> List:
        """HBM blocks sorted most-evictable first.

        ``resident`` is a sequence of
        :class:`~repro.serve.kv_pool.BlockMeta`; the default is plain
        LRU on the access sequence number.
        """
        return sorted(resident, key=lambda meta: meta.last_access_seq)

    #: Engine-tier hint for blocks evicted under HBM pressure (rather
    #: than placed cold at write time).  ``None`` defers to the shared
    #: pool-first placement rule.
    def eviction_tier(self, ctx: BlockContext) -> Optional[Tier]:
        return None

    # ----------------------------------------------------------- prefetch
    def prefetch_plan(self, schedule: Sequence[str], pool) -> List:
        """Block keys to bring HBM-ward before the next decode rounds.

        ``schedule`` lists the request ids about to decode, soonest
        first; ``pool`` answers which of their blocks are paged out.
        The base strategy never prefetches.
        """
        return []


class PreferHBM(PagingStrategy):
    """Keep every block HBM-resident while there is room; spill LRU.

    The "as much in the fast tier as fits" baseline of the SNIPPETS §2
    strategy set.
    """

    name = "prefer-hbm"


class SplitToken(PagingStrategy):
    """Split each request's KV by token position across the tiers.

    The most recent ``hbm_recent_blocks`` blocks of a context stay in
    HBM (the decode window re-reads them every step), the next
    ``cpu_window_blocks`` land in the pinned CPU pool, and the cold
    prefix goes straight to SSD.  Long contexts therefore cost HBM
    proportional to the *window*, not the prompt.
    """

    name = "split-token"

    def __init__(self, hbm_recent_blocks: int = 2, cpu_window_blocks: int = 4) -> None:
        if hbm_recent_blocks < 1:
            raise ValueError(f"hbm_recent_blocks must be >= 1: {hbm_recent_blocks}")
        if cpu_window_blocks < 0:
            raise ValueError(f"cpu_window_blocks must be >= 0: {cpu_window_blocks}")
        self.hbm_recent_blocks = hbm_recent_blocks
        self.cpu_window_blocks = cpu_window_blocks

    def place(self, ctx: BlockContext) -> Tier:
        blocks_from_tail = ctx.context_blocks - 1 - ctx.block_index
        if blocks_from_tail < self.hbm_recent_blocks:
            return Tier.GPU
        if blocks_from_tail < self.hbm_recent_blocks + self.cpu_window_blocks:
            return Tier.CPU
        return Tier.SSD

    def eviction_tier(self, ctx: BlockContext) -> Optional[Tier]:
        # A pressure-evicted block keeps its position-derived tier.
        tier = self.place(ctx)
        return None if tier is Tier.GPU else tier


class LayerImportance(PagingStrategy):
    """Importance-ranked eviction: drop low-value layers' blocks first.

    ``importance(layer) -> float`` scores each layer; under HBM pressure
    the lowest-scoring resident blocks are evicted first (ties broken by
    LRU).  The default profile scores a layer by its index — deeper
    layers' KV (consumed sooner after being produced in the decode
    pipeline) is treated as more important, so layer 0's blocks leave
    first.  Pass a measured profile to override.
    """

    name = "layer-importance"

    def __init__(self, importance: Optional[Callable[[int], float]] = None) -> None:
        self.importance = importance if importance is not None else float

    def eviction_order(self, resident: Sequence) -> List:
        return sorted(
            resident,
            key=lambda meta: (self.importance(meta.key.layer), meta.last_access_seq),
        )


class LookAheadBatch(PagingStrategy):
    """Prefetch keyed on the decode schedule (SNIPPETS §2 look-ahead).

    Wraps a base strategy for placement/eviction and adds a prefetch
    plan: for the next ``depth`` scheduled requests, every paged-out
    block is brought HBM-ward *before* its decode round needs it —
    turning decode-blocking demand fetches into prefetch hits.
    """

    name = "lookahead-batch"

    def __init__(
        self, base: Optional[PagingStrategy] = None, depth: int = 4
    ) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1: {depth}")
        self.base = base if base is not None else PreferHBM()
        self.depth = depth

    def place(self, ctx: BlockContext) -> Tier:
        return self.base.place(ctx)

    def eviction_order(self, resident: Sequence) -> List:
        return self.base.eviction_order(resident)

    def eviction_tier(self, ctx: BlockContext) -> Optional[Tier]:
        return self.base.eviction_tier(ctx)

    def prefetch_plan(self, schedule: Sequence[str], pool) -> List:
        keys: List = []
        for request_id in schedule[: self.depth]:
            keys.extend(pool.paged_out_keys(request_id))
        return keys


#: Strategy names accepted by the CLI/benches.
STRATEGIES = ("prefer-hbm", "split-token", "layer-importance", "lookahead")


def make_strategy(name: str, **kwargs) -> PagingStrategy:
    """Build a strategy from a CLI-style name."""
    if name == "prefer-hbm":
        return PreferHBM()
    if name == "split-token":
        return SplitToken(**kwargs)
    if name == "layer-importance":
        return LayerImportance(**kwargs)
    if name == "lookahead":
        return LookAheadBatch(**kwargs)
    raise ValueError(f"unknown paging strategy {name!r}; expected one of {STRATEGIES}")


class PagingPolicy:
    """Bridges one :class:`PagingStrategy` into the engine's
    :class:`~repro.core.policy.OffloadPolicy` per-tenant hook.

    The strategy decides a per-*block* engine tier, but the engine hook
    shape is per-*tenant* ``placer(nbytes, cpu_free_bytes)``.  The pool
    therefore wraps each engine ``store`` in :meth:`hint`, parking the
    block's tier in a thread-local the installed placer reads — valid
    on whichever thread executes the store body (the caller inline, or
    a scheduler worker running the request fn).
    """

    def __init__(self, strategy: Optional[PagingStrategy] = None) -> None:
        self.strategy = strategy if strategy is not None else PreferHBM()
        self._tls = threading.local()

    @contextmanager
    def hint(self, tier: Optional[Tier]) -> Iterator[None]:
        """Scope a placement hint around one engine store call."""
        previous = getattr(self._tls, "tier", None)
        self._tls.tier = tier
        try:
            yield
        finally:
            self._tls.tier = previous

    def engine_placer(
        self, nbytes: int, cpu_free_bytes: Optional[int]
    ) -> Optional[Tier]:
        """The hook installed via ``OffloadPolicy.set_tenant_policy``."""
        tier = getattr(self._tls, "tier", None)
        if tier is None or tier is Tier.GPU:
            return None  # defer to the shared placement rule
        return tier

    def install(self, policy: OffloadPolicy, tenant: str) -> None:
        """Idempotently install the placer for one tenant."""
        # Bound-method equality (not identity): ``self.engine_placer``
        # is a fresh bound-method object on every attribute access.
        if policy.tenant_policy(tenant) != self.engine_placer:
            policy.set_tenant_policy(tenant, self.engine_placer)

    def uninstall(self, policy: OffloadPolicy, tenant: str) -> None:
        if policy.tenant_policy(tenant) == self.engine_placer:
            policy.set_tenant_policy(tenant, None)
