"""The KV-cache block pool: fixed-size paged KV over HBM → CPU → SSD.

The serving analogue of the training-side tensor cache.  Each inference
request's KV cache is chopped into fixed-size per-layer blocks
(``block_tokens`` tokens each — the chunk-based memory-management idea
of PatrickStar, SNIPPETS §1, applied to KV); the **block table** keys
every block by ``(request_id, layer, token_range)`` and tracks which
tier holds it:

- **HBM-sim** — a bounded byte budget owned by the pool itself (the
  "GPU" tier of the serving box); resident blocks are served with zero
  engine traffic.
- **engine** — everything paged out lands in the existing
  :class:`~repro.core.tiered.TieredOffloader` data plane (pinned CPU
  pool backed by the :class:`~repro.io.buffers.BufferArena`, spilling
  to the SSD store), placed per block through the strategy's tier hint
  via the per-tenant :meth:`~repro.core.policy.OffloadPolicy
  .set_tenant_policy` hook.

Traffic rides the shared :class:`~repro.io.scheduler.IOScheduler` with
the serving-appropriate classes: decode-blocking reads are
``BLOCKING_LOAD``, look-ahead prefetch is ``PREFETCH_LOAD`` (and is
*promoted* to blocking the moment a decode arrives before it lands —
the same deadline-promotion machinery backward passes use), writeback
is ``STORE``.  Every request is mapped to its user's tenant, so the
PR 6 fair-share/quota books account KV traffic per user with no new
mechanism.

Two I/O modes:

- ``sync_mode=False`` (default): writebacks and prefetches run as
  scheduler requests, overlapping the caller; an in-flight writeback's
  payload is parked on the block and a read of it is served locally
  (cancelling the queued write when possible — the demotion-
  cancellation idea at the serving layer).
- ``sync_mode=True``: writebacks and prefetches run inline on the
  calling thread, so *placement is a pure function of the call
  sequence* — the determinism the seeded server simulation and the
  ``repro kv`` asserts require.  Demand fetches still flow through the
  scheduler as ``BLOCKING_LOAD`` (the pool waits, so determinism is
  preserved).
"""

from __future__ import annotations

import enum
import itertools
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import Engine
from repro.core.ids import TensorID
from repro.core.policy import Tier
from repro.io.scheduler import IORequest, Priority
from repro.io.tenancy import DEFAULT_TENANT, tenant_scope
from repro.serve.paging import BlockContext, PagingPolicy, PagingStrategy

__all__ = ["BlockKey", "BlockMeta", "BlockState", "KVBlockPool", "KVPoolStats"]


@dataclass(frozen=True)
class BlockKey:
    """Block-table key: ``(request_id, layer, token_range)``.

    Equality/hash use ``(request_id, layer, index)``; the token range is
    carried alongside (it is bijective with the index for fixed-size
    blocks) so table entries self-describe which tokens they cover.
    """

    request_id: str
    layer: int
    index: int
    token_start: int = field(compare=False, default=0)
    token_end: int = field(compare=False, default=0)

    @property
    def token_range(self) -> Tuple[int, int]:
        return (self.token_start, self.token_end)


class BlockState(enum.Enum):
    HBM = "hbm"              # resident in the pool's HBM budget
    WRITEBACK = "writeback"  # engine store in flight; payload parked
    ENGINE = "engine"        # held by the tiered engine (CPU or SSD)
    FETCHING = "fetching"    # prefetch load in flight


class BlockMeta:
    """One row of the block table."""

    __slots__ = (
        "key",
        "tid",
        "tenant",
        "nbytes",
        "shape",
        "dtype",
        "state",
        "data",
        "pending_data",
        "request",
        "prefetched",
        "last_access_seq",
        "context_blocks",
        "num_layers",
    )

    def __init__(
        self,
        key: BlockKey,
        tid: TensorID,
        tenant: str,
        data: np.ndarray,
        context_blocks: int,
        num_layers: int,
    ) -> None:
        self.key = key
        self.tid = tid
        self.tenant = tenant
        self.nbytes = int(data.nbytes)
        self.shape = tuple(data.shape)
        self.dtype = data.dtype
        self.state = BlockState.HBM
        self.data: Optional[np.ndarray] = None
        #: Payload parked while an async writeback is in flight.
        self.pending_data: Optional[np.ndarray] = None
        self.request: Optional[IORequest] = None
        #: Set when a prefetch was issued for this block and not yet
        #: consumed by an access — the hit-accounting flag.
        self.prefetched = False
        self.last_access_seq = 0
        self.context_blocks = context_blocks
        self.num_layers = num_layers

    def context(self) -> BlockContext:
        return BlockContext(
            request_id=self.key.request_id,
            tenant=self.tenant,
            layer=self.key.layer,
            num_layers=self.num_layers,
            block_index=self.key.index,
            context_blocks=self.context_blocks,
            token_start=self.key.token_start,
            token_end=self.key.token_end,
            nbytes=self.nbytes,
        )


@dataclass
class KVPoolStats:
    """Cumulative pool counters (test / bench / CLI surface)."""

    blocks_written: int = 0
    bytes_written: int = 0
    hbm_hits: int = 0
    prefetch_issued: int = 0
    prefetch_hits: int = 0
    demand_fetches: int = 0
    fetched_bytes: int = 0
    writebacks: int = 0
    writeback_bytes: int = 0
    evictions: int = 0
    writebacks_cancelled: int = 0
    writeback_failures: int = 0
    forward_hits: int = 0
    released_blocks: int = 0

    @property
    def prefetch_hit_rate(self) -> float:
        """Fraction of non-HBM accesses a prefetch had already covered."""
        covered = self.prefetch_hits + self.demand_fetches
        return self.prefetch_hits / covered if covered else 0.0


@dataclass
class _RequestEntry:
    tenant: str
    context_blocks: int
    next_index: Dict[int, int] = field(default_factory=dict)
    keys: List[BlockKey] = field(default_factory=list)


class KVBlockPool:
    """Fixed-size KV block manager over the tiered engine (see module
    docstring).

    Args:
        engine: a built :class:`~repro.core.engine.Engine` — the single
            construction path (``build_engine(EngineConfig(...))``)
            shared with the training front-end.
        block_tokens: tokens per block (the paging granularity).
        num_layers: model depth — each token's KV spans this many blocks
            columns.
        hbm_capacity_bytes: the simulated HBM budget for resident blocks.
        strategy: a :class:`~repro.serve.paging.PagingStrategy`
            (default :class:`~repro.serve.paging.PreferHBM`).
        sync_mode: run writeback/prefetch inline for determinism (the
            server simulation's mode); demand fetches always flow
            through the scheduler's ``BLOCKING_LOAD`` class.
    """

    def __init__(
        self,
        engine: Engine,
        *,
        block_tokens: int = 64,
        num_layers: int = 2,
        hbm_capacity_bytes: int = 1 << 20,
        strategy: Optional[PagingStrategy] = None,
        sync_mode: bool = False,
    ) -> None:
        if block_tokens < 1:
            raise ValueError(f"block_tokens must be >= 1: {block_tokens}")
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1: {num_layers}")
        if hbm_capacity_bytes < 0:
            raise ValueError(
                f"hbm_capacity_bytes must be >= 0: {hbm_capacity_bytes}"
            )
        self.engine = engine
        self.block_tokens = block_tokens
        self.num_layers = num_layers
        self.hbm_capacity_bytes = hbm_capacity_bytes
        self.paging = PagingPolicy(strategy)
        self.sync_mode = sync_mode
        self.stats = KVPoolStats()
        self._lock = threading.RLock()
        self._table: Dict[BlockKey, BlockMeta] = {}
        self._requests: Dict[str, _RequestEntry] = {}
        self._hbm_used = 0
        self._seq = itertools.count(1)
        self._stamps = itertools.count(1)

    # ------------------------------------------------------------- requests
    def begin_request(
        self,
        request_id: str,
        *,
        user: str = DEFAULT_TENANT,
        context_tokens: int = 0,
    ) -> None:
        """Register a request and wire its user's tenant placement hook."""
        with self._lock:
            if request_id in self._requests:
                raise ValueError(f"request {request_id!r} already registered")
            context_blocks = max(
                1, -(-int(context_tokens) // self.block_tokens)
            )
            self._requests[request_id] = _RequestEntry(
                tenant=user, context_blocks=context_blocks
            )
        self.paging.install(self.engine.policy, user)

    def _entry(self, request_id: str) -> _RequestEntry:
        entry = self._requests.get(request_id)
        if entry is None:
            raise KeyError(f"unknown request {request_id!r}")
        return entry

    # -------------------------------------------------------------- append
    def append_block(
        self, request_id: str, layer: int, data: np.ndarray
    ) -> BlockKey:
        """Append the next KV block for ``(request_id, layer)``.

        Placement is the strategy's call: ``Tier.GPU`` keeps the block
        HBM-resident (evicting colder residents if needed), ``CPU`` /
        ``SSD`` page it out to the engine with that tier as the
        per-tenant placement hint.
        """
        if not (0 <= layer < self.num_layers):
            raise ValueError(
                f"layer {layer} out of range for num_layers={self.num_layers}"
            )
        with self._lock:
            entry = self._entry(request_id)
            index = entry.next_index.get(layer, 0)
            entry.next_index[layer] = index + 1
            key = BlockKey(
                request_id=request_id,
                layer=layer,
                index=index,
                token_start=index * self.block_tokens,
                token_end=(index + 1) * self.block_tokens,
            )
            tid = TensorID(stamp=next(self._stamps), shape=tuple(data.shape))
            meta = BlockMeta(
                key,
                tid,
                entry.tenant,
                data,
                context_blocks=entry.context_blocks,
                num_layers=self.num_layers,
            )
            self._table[key] = meta
            entry.keys.append(key)
            self.stats.blocks_written += 1
            self.stats.bytes_written += meta.nbytes
            tier = self.paging.strategy.place(meta.context())
        if tier is Tier.GPU:
            self._admit_hbm(meta, data)
        else:
            self._page_out(meta, data, tier)
        return key

    # ----------------------------------------------------- HBM admission
    def _admit_hbm(self, meta: BlockMeta, data: np.ndarray) -> None:
        """Make the block HBM-resident, evicting colder blocks for room."""
        to_evict: List[BlockMeta] = []
        with self._lock:
            while self._hbm_used + meta.nbytes > self.hbm_capacity_bytes:
                victim = self._pick_victim(exclude=meta)
                if victim is None:
                    break
                victim_data = victim.data
                victim.data = None
                victim.state = BlockState.WRITEBACK
                self._hbm_used -= victim.nbytes
                victim.pending_data = victim_data
                to_evict.append(victim)
                self.stats.evictions += 1
            if self._hbm_used + meta.nbytes <= self.hbm_capacity_bytes:
                meta.data = data
                meta.state = BlockState.HBM
                meta.last_access_seq = next(self._seq)
                self._hbm_used += meta.nbytes
                overflow = None
            else:
                # Nothing evictable and no room: the new block itself
                # pages out (its strategy tier hint, or pool-first).
                overflow = meta
        for victim in to_evict:
            hint = self.paging.strategy.eviction_tier(victim.context())
            self._page_out(
                victim, victim.pending_data, hint, already_marked=True
            )
        if overflow is not None:
            hint = self.paging.strategy.eviction_tier(meta.context())
            self._page_out(meta, data, hint)

    def _pick_victim(self, exclude: BlockMeta) -> Optional[BlockMeta]:
        resident = [
            m
            for m in self._table.values()
            if m.state is BlockState.HBM and m is not exclude
        ]
        if not resident:
            return None
        ordered = self.paging.strategy.eviction_order(resident)
        return ordered[0] if ordered else None

    # ------------------------------------------------------------ writeback
    def _page_out(
        self,
        meta: BlockMeta,
        data: np.ndarray,
        tier_hint: Optional[Tier],
        already_marked: bool = False,
    ) -> None:
        offloader = self.engine.offloader
        tid = meta.tid
        with self._lock:
            meta.prefetched = False
            self.stats.writebacks += 1
            self.stats.writeback_bytes += meta.nbytes
        if self.sync_mode:
            with tenant_scope(meta.tenant), self.paging.hint(tier_hint):
                offloader.store(tid, data)
            with self._lock:
                meta.pending_data = None
                meta.request = None
                meta.state = BlockState.ENGINE
            return

        def body() -> None:
            # Runs on a scheduler worker under tenant_scope(request.tenant).
            with self.paging.hint(tier_hint):
                offloader.store(tid, data)

        request = IORequest(
            body,
            kind="store",
            priority=Priority.STORE,
            tensor_id=str(tid),
            nbytes=meta.nbytes,
            lane=offloader.store_lane(tid, meta.nbytes),
            label=f"kv-writeback:{meta.key.request_id}/{meta.key.layer}/{meta.key.index}",
            tenant=meta.tenant,
        )
        with self._lock:
            if not already_marked:
                meta.state = BlockState.WRITEBACK
            meta.pending_data = data
            meta.request = request
        request.add_done_callback(lambda job: self._on_writeback_done(meta, job))
        self.engine.scheduler.submit(request)

    def _on_writeback_done(self, meta: BlockMeta, job) -> None:
        from repro.io.aio import JobState

        with self._lock:
            if meta.request is not job:
                return  # superseded (forwarded / released meanwhile)
            meta.request = None
            if meta.state is not BlockState.WRITEBACK:
                return
            if job.state is JobState.DONE:
                meta.state = BlockState.ENGINE
                meta.pending_data = None
            elif job.state is JobState.FAILED:
                # Correctness over capacity: keep the payload parked so
                # reads still serve it (the block simply never leaves
                # the writeback state's local copy).
                self.stats.writeback_failures += 1

    # -------------------------------------------------------------- prefetch
    def prefetch(self, schedule: Sequence[str]) -> int:
        """Run the strategy's look-ahead plan for the decode ``schedule``.

        Returns the number of blocks a prefetch was issued for.  In
        async mode each becomes a ``PREFETCH_LOAD`` on the engine's
        load lane; in sync mode the block is migrated into HBM inline
        (the look-ahead happens between decode rounds).
        """
        keys = self.paging.strategy.prefetch_plan(schedule, self)
        issued = 0
        for key in keys:
            meta = self._table.get(key)
            if meta is None:
                continue
            with self._lock:
                if meta.state is not BlockState.ENGINE or meta.prefetched:
                    continue
                meta.prefetched = True
            issued += 1
            if self.sync_mode:
                data = self._engine_load(meta, blocking=False)
                self.engine.offloader.release(meta.tid)
                self._admit_hbm(meta, data)
            else:
                self._submit_prefetch(meta)
        with self._lock:
            self.stats.prefetch_issued += issued
        return issued

    def _submit_prefetch(self, meta: BlockMeta) -> None:
        offloader = self.engine.offloader
        tid, shape, dtype = meta.tid, meta.shape, meta.dtype

        def body() -> np.ndarray:
            return offloader.load(tid, shape, dtype)

        request = IORequest(
            body,
            kind="load",
            priority=Priority.PREFETCH_LOAD,
            tensor_id=str(tid),
            nbytes=meta.nbytes,
            lane=offloader.load_lane(tid),
            label=f"kv-prefetch:{meta.key.request_id}/{meta.key.layer}/{meta.key.index}",
            tenant=meta.tenant,
        )
        with self._lock:
            meta.state = BlockState.FETCHING
            meta.request = request
        self.engine.scheduler.submit(request)

    # ----------------------------------------------------------------- fetch
    def fetch(self, request_id: str, layer: int, index: int) -> np.ndarray:
        """Read one block for a decode step (always returns the bytes).

        HBM residents are free; an in-flight prefetch is *promoted* to
        the blocking class and awaited (hit); an engine-resident block
        costs a ``BLOCKING_LOAD`` demand fetch (miss).  Fetched blocks
        are re-admitted to HBM — they are the decode working set.
        """
        key = BlockKey(request_id=request_id, layer=layer, index=index)
        with self._lock:
            meta = self._table.get(key)
            if meta is None:
                raise KeyError(f"no KV block for {request_id!r}/{layer}/{index}")
            state = meta.state
            meta.last_access_seq = next(self._seq)
            if state is BlockState.HBM:
                if meta.prefetched:
                    meta.prefetched = False
                    self.stats.prefetch_hits += 1
                else:
                    self.stats.hbm_hits += 1
                return meta.data
            request = meta.request
            pending = meta.pending_data

        if state is BlockState.WRITEBACK:
            return self._fetch_forwarded(meta, request, pending)
        if state is BlockState.FETCHING:
            return self._fetch_prefetched(meta, request)
        return self._fetch_demand(meta)

    def _fetch_forwarded(
        self,
        meta: BlockMeta,
        request: Optional[IORequest],
        pending: Optional[np.ndarray],
    ) -> np.ndarray:
        """Serve a block whose writeback is still in flight from its
        parked payload (data forwarding at the serving layer)."""
        from repro.io.aio import JobState

        cancelled = False
        if request is not None:
            cancelled = self.engine.scheduler.cancel(request)
            if not cancelled:
                request.wait()
        with self._lock:
            self.stats.forward_hits += 1
            if cancelled:
                self.stats.writebacks_cancelled += 1
            meta.request = None
            meta.pending_data = None
        if not cancelled and (
            request is None or request.state is JobState.DONE
        ):
            # The store landed after all; drop the engine copy since the
            # block is going HBM-resident again.
            self.engine.offloader.release(meta.tid)
        data = pending
        self._admit_hbm(meta, data)
        return data

    def _fetch_prefetched(
        self, meta: BlockMeta, request: Optional[IORequest]
    ) -> np.ndarray:
        """A decode arrived before its prefetch landed: promote the
        request to the blocking class (deadline promotion, exactly the
        backward-pass machinery) and wait it out."""
        from repro.io.aio import JobState

        if request is not None:
            self.engine.scheduler.promote(request)
            request.wait()
        if request is not None and request.state is JobState.DONE:
            data = request.result
            self.engine.offloader.release(meta.tid)
            with self._lock:
                meta.request = None
                meta.prefetched = False
                self.stats.prefetch_hits += 1
                self.stats.fetched_bytes += meta.nbytes
            self._admit_hbm(meta, data)
            return data
        # Prefetch failed or was cancelled: fall back to a demand fetch.
        with self._lock:
            meta.request = None
            meta.prefetched = False
            meta.state = BlockState.ENGINE
        return self._fetch_demand(meta)

    def _fetch_demand(self, meta: BlockMeta) -> np.ndarray:
        data = self._engine_load(meta, blocking=True)
        self.engine.offloader.release(meta.tid)
        with self._lock:
            self.stats.demand_fetches += 1
            self.stats.fetched_bytes += meta.nbytes
        self._admit_hbm(meta, data)
        return data

    def _engine_load(self, meta: BlockMeta, blocking: bool) -> np.ndarray:
        """Load one block's bytes out of the engine.

        Blocking loads always ride the scheduler's ``BLOCKING_LOAD``
        class (the decode-blocking read path); sync-mode prefetch loads
        run inline under the tenant's scope.
        """
        offloader = self.engine.offloader
        tid, shape, dtype = meta.tid, meta.shape, meta.dtype
        if not blocking:
            with tenant_scope(meta.tenant):
                return offloader.load(tid, shape, dtype)
        request = IORequest(
            lambda: offloader.load(tid, shape, dtype),
            kind="load",
            priority=Priority.BLOCKING_LOAD,
            tensor_id=str(tid),
            nbytes=meta.nbytes,
            lane=offloader.load_lane(tid),
            label=f"kv-fetch:{meta.key.request_id}/{meta.key.layer}/{meta.key.index}",
            tenant=meta.tenant,
        )
        self.engine.scheduler.submit(request)
        request.wait()
        if request.error is not None:
            raise request.error
        return request.result

    # --------------------------------------------------------------- release
    def release_request(self, request_id: str) -> int:
        """Drop every block of a finished request; returns the count."""
        with self._lock:
            entry = self._requests.pop(request_id, None)
            if entry is None:
                return 0
            metas = [self._table.pop(key) for key in entry.keys]
        released = 0
        for meta in metas:
            with self._lock:
                state = meta.state
                request = meta.request
                if state is BlockState.HBM:
                    self._hbm_used -= meta.nbytes
                    meta.data = None
            if state in (BlockState.WRITEBACK, BlockState.FETCHING):
                if request is not None and not self.engine.scheduler.cancel(
                    request
                ):
                    request.wait()
                    # The engine I/O ran to completion; drop its copy.
                    self.engine.offloader.release(meta.tid)
                elif request is not None and state is BlockState.FETCHING:
                    # Cancelled prefetch: the engine still holds the block.
                    self.engine.offloader.release(meta.tid)
                meta.pending_data = None
                meta.request = None
            elif state is BlockState.ENGINE:
                self.engine.offloader.release(meta.tid)
            released += 1
        with self._lock:
            self.stats.released_blocks += released
        return released

    # ----------------------------------------------------------------- views
    @property
    def hbm_used_bytes(self) -> int:
        with self._lock:
            return self._hbm_used

    def request_ids(self) -> List[str]:
        with self._lock:
            return list(self._requests)

    def keys_of(self, request_id: str) -> List[BlockKey]:
        with self._lock:
            entry = self._requests.get(request_id)
            return list(entry.keys) if entry is not None else []

    def paged_out_keys(self, request_id: str) -> List[BlockKey]:
        """Blocks of ``request_id`` currently held by the engine only —
        the candidates a look-ahead prefetch should bring back."""
        with self._lock:
            entry = self._requests.get(request_id)
            if entry is None:
                return []
            return [
                key
                for key in entry.keys
                if self._table[key].state is BlockState.ENGINE
            ]

    def block_tier(self, key: BlockKey) -> str:
        """Where a block's authoritative bytes live right now:
        ``"hbm"``, ``"writeback"``, ``"fetching"``, ``"cpu"`` or
        ``"ssd"``."""
        with self._lock:
            meta = self._table.get(key)
            if meta is None:
                raise KeyError(f"unknown block {key}")
            if meta.state is BlockState.HBM:
                return "hbm"
            if meta.state is BlockState.WRITEBACK:
                return "writeback"
            if meta.state is BlockState.FETCHING:
                return "fetching"
        return self.engine.offloader.tier_of(meta.tid).value

    def tier_census(self) -> Dict[str, int]:
        """Block counts per tier — the paging A/B's placement picture."""
        census: Counter = Counter()
        with self._lock:
            keys = list(self._table)
        for key in keys:
            try:
                census[self.block_tier(key)] += 1
            except KeyError:
                continue  # released concurrently
        return dict(census)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for in-flight writebacks/prefetches (async mode)."""
        if self.engine.scheduler_started:
            return self.engine.scheduler.drain(timeout)
        return True
