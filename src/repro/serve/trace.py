"""Synthetic multi-user inference workloads for the KV paging front-end.

A :class:`RequestTrace` is a seeded, fully deterministic stream of
inference requests: Poisson arrivals (exponential inter-arrival gaps),
log-normal context lengths (the long tail — most prompts are short, a
few are near the window limit — is exactly what makes static HBM
provisioning waste capacity), and Poisson decode lengths.  Each request
belongs to one of ``num_users`` users; the server maps users to tenants
so the PR 6 fair-share/quota machinery applies per user.

Determinism contract: the same :class:`TraceConfig` (including seed)
always generates the identical trace, byte for byte — the seeded-trace
determinism test and the ``repro kv`` CLI asserts both lean on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Tuple

import numpy as np


@dataclass(frozen=True)
class InferenceRequest:
    """One serving request: who asked, when, and how much KV it implies."""

    request_id: str
    user: str
    arrival_s: float
    context_tokens: int
    decode_tokens: int

    def total_tokens(self) -> int:
        """Context plus generated tokens — the request's final KV span."""
        return self.context_tokens + self.decode_tokens


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the synthetic workload generator."""

    num_requests: int = 32
    #: Poisson arrival intensity (requests per second of virtual time).
    arrival_rate_per_s: float = 8.0
    num_users: int = 4
    seed: int = 1234
    #: Median context length; the log-normal ``sigma`` sets the tail
    #: weight (0 = constant, ~1 = heavy tail).
    context_tokens_median: int = 384
    context_sigma: float = 0.9
    min_context_tokens: int = 32
    max_context_tokens: int = 4096
    #: Mean generated tokens (Poisson), floored at ``min_decode_tokens``.
    decode_tokens_mean: int = 12
    min_decode_tokens: int = 2

    def validate(self) -> None:
        if self.num_requests < 1:
            raise ValueError(f"num_requests must be >= 1: {self.num_requests}")
        if self.arrival_rate_per_s <= 0:
            raise ValueError(
                f"arrival_rate_per_s must be > 0: {self.arrival_rate_per_s}"
            )
        if self.num_users < 1:
            raise ValueError(f"num_users must be >= 1: {self.num_users}")
        if not (
            0 < self.min_context_tokens
            <= self.context_tokens_median
            <= self.max_context_tokens
        ):
            raise ValueError(
                "need 0 < min_context_tokens <= context_tokens_median "
                "<= max_context_tokens"
            )


@dataclass(frozen=True)
class RequestTrace:
    """An immutable, arrival-ordered request stream."""

    config: TraceConfig
    requests: Tuple[InferenceRequest, ...] = field(default_factory=tuple)

    @classmethod
    def generate(cls, config: TraceConfig) -> "RequestTrace":
        """Deterministically expand a config into its request stream."""
        config.validate()
        rng = np.random.default_rng(config.seed)
        requests: List[InferenceRequest] = []
        clock = 0.0
        for i in range(config.num_requests):
            clock += float(rng.exponential(1.0 / config.arrival_rate_per_s))
            context = int(
                np.clip(
                    round(
                        float(
                            rng.lognormal(
                                mean=np.log(config.context_tokens_median),
                                sigma=config.context_sigma,
                            )
                        )
                    ),
                    config.min_context_tokens,
                    config.max_context_tokens,
                )
            )
            decode = max(
                config.min_decode_tokens,
                int(rng.poisson(config.decode_tokens_mean)),
            )
            user = f"user{int(rng.integers(config.num_users))}"
            requests.append(
                InferenceRequest(
                    request_id=f"req{i:04d}",
                    user=user,
                    arrival_s=clock,
                    context_tokens=context,
                    decode_tokens=decode,
                )
            )
        return cls(config=config, requests=tuple(requests))

    def with_seed(self, seed: int) -> "RequestTrace":
        """Regenerate the trace under a different seed, same shape."""
        return RequestTrace.generate(replace(self.config, seed=seed))

    # -------------------------------------------------------------- views
    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[InferenceRequest]:
        return iter(self.requests)

    @property
    def users(self) -> Tuple[str, ...]:
        """Distinct users, sorted (the tenant set of the run)."""
        return tuple(sorted({r.user for r in self.requests}))

    @property
    def total_context_tokens(self) -> int:
        return sum(r.context_tokens for r in self.requests)

    @property
    def max_context_tokens(self) -> int:
        return max(r.context_tokens for r in self.requests)
