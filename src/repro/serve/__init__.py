"""KV-cache paging front-end for inference serving.

The second front-end over the offload engine (the first is the training
:class:`~repro.train.trainer.Trainer`): per-request KV caches are paged
in fixed-size blocks across HBM-sim → pinned CPU → SSD, constructed
through the same :func:`~repro.core.engine.build_engine` path and
riding the same scheduler priority classes and per-tenant QoS books.

- :class:`~repro.serve.kv_pool.KVBlockPool` — the block table + tier
  moves (decode-blocking reads, look-ahead prefetch, writeback).
- :mod:`~repro.serve.paging` — pluggable placement/eviction/prefetch
  strategies (PreferHBM, SplitToken, LayerImportance, LookAheadBatch).
- :class:`~repro.serve.trace.RequestTrace` — seeded Poisson multi-user
  workloads with long-tail context lengths.
- :class:`~repro.serve.server_sim.KVServerSim` — the deterministic
  virtual-clock decode loop behind ``repro kv`` (p50/p99 TTFT, paged
  vs no-paging A/B).
"""

from repro.serve.kv_pool import (
    BlockKey,
    BlockMeta,
    BlockState,
    KVBlockPool,
    KVPoolStats,
)
from repro.serve.paging import (
    BlockContext,
    LayerImportance,
    LookAheadBatch,
    PagingPolicy,
    PagingStrategy,
    PreferHBM,
    SplitToken,
    STRATEGIES,
    make_strategy,
)
from repro.serve.server_sim import (
    KVServeResult,
    KVServerSim,
    ServedRequest,
    ServerConfig,
    block_payload,
    percentile,
)
from repro.serve.trace import InferenceRequest, RequestTrace, TraceConfig

__all__ = [
    "BlockContext",
    "BlockKey",
    "BlockMeta",
    "BlockState",
    "InferenceRequest",
    "KVBlockPool",
    "KVPoolStats",
    "KVServeResult",
    "KVServerSim",
    "LayerImportance",
    "LookAheadBatch",
    "PagingPolicy",
    "PagingStrategy",
    "PreferHBM",
    "RequestTrace",
    "STRATEGIES",
    "ServedRequest",
    "ServerConfig",
    "SplitToken",
    "TraceConfig",
    "block_payload",
    "make_strategy",
    "percentile",
]
