"""Deterministic multi-user inference server over the KV block pool.

Drives a seeded :class:`~repro.serve.trace.RequestTrace` through a
virtual-clock decode loop and measures **time-to-first-token** (TTFT =
queue wait + prefill + first decode round) for two configurations of
the same machine:

- **paged** — KV blocks live in the :class:`~repro.serve.kv_pool
  .KVBlockPool` over HBM → pinned CPU → SSD; admission only reserves a
  small HBM *working window* per request, so many more contexts run
  concurrently and queue wait collapses (at the price of modeled fetch
  stalls for paged-out blocks).
- **no-paging baseline** — every request must hold its *entire* KV span
  in HBM for its whole lifetime; requests that never fit are rejected,
  the rest queue until enough HBM frees up.

Determinism contract (the ``repro kv`` asserts and the seeded-trace
test lean on it): the pool runs in ``sync_mode`` — placement and
migration are pure functions of the call sequence — and every duration
is *virtual*, derived from byte counts and the cost-model rates, never
from wall time.  Same trace + same config → bit-identical results.

KV payloads are regenerated from the seed for verification: after a
request finishes, every one of its blocks is fetched back and compared
bit-for-bit against the generator — a block that survived
HBM → CPU → SSD migration and back must be byte-identical.
"""

from __future__ import annotations

import math
import shutil
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.engine import Engine, EngineConfig, EngineStats, build_engine
from repro.io.tenancy import TenantRegistry
from repro.serve.kv_pool import KVBlockPool, KVPoolStats
from repro.serve.paging import make_strategy
from repro.serve.trace import InferenceRequest, RequestTrace

__all__ = [
    "KVServeResult",
    "KVServerSim",
    "ServedRequest",
    "ServerConfig",
    "block_payload",
    "percentile",
]


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, min(len(ordered), math.ceil(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


def block_payload(
    seed: int, request_id: str, layer: int, index: int, nbytes: int
) -> np.ndarray:
    """The deterministic KV bytes of one block.

    Keyed by (seed, block key) so verification can *regenerate* the
    expected bytes instead of holding every original in memory.
    """
    digest = zlib.crc32(f"{seed}:{request_id}:{layer}:{index}".encode())
    rng = np.random.default_rng(digest)
    return rng.integers(0, 256, size=nbytes, dtype=np.uint8)


@dataclass(frozen=True)
class ServerConfig:
    """The serving box and its virtual cost model."""

    hbm_capacity_bytes: int = 256 << 10
    block_tokens: int = 64
    #: KV bytes per token per layer (keys + values).
    bytes_per_token: int = 128
    num_layers: int = 2
    paged: bool = True
    strategy: str = "lookahead"
    #: HBM blocks (per layer) admission reserves per paged request —
    #: the decode working window.
    admit_window_blocks: int = 2
    #: Pinned CPU pool of the tiered engine (paged mode).
    cpu_pool_bytes: int = 128 << 10
    #: Engine store directory; a temp dir is created (and removed) when
    #: ``None``.
    store_dir: Optional[str] = None
    # ---- virtual-time cost model ----
    prefill_tokens_per_s: float = 16384.0
    decode_step_s: float = 0.05
    cpu_fetch_bytes_per_s: float = 256e6
    ssd_fetch_bytes_per_s: float = 64e6
    fetch_latency_s: float = 0.0002
    verify: bool = True

    @property
    def block_bytes(self) -> int:
        return self.block_tokens * self.bytes_per_token

    def label(self) -> str:
        return f"paged/{self.strategy}" if self.paged else "hbm-only"


@dataclass
class ServedRequest:
    """Outcome of one trace request."""

    request_id: str
    user: str
    arrival_s: float
    context_tokens: int
    decode_tokens: int
    served: bool
    admitted_s: float = 0.0
    ttft_s: float = 0.0
    finished_s: float = 0.0


@dataclass
class KVServeResult:
    """One configuration's run over one trace."""

    label: str
    served: int
    rejected: int
    peak_concurrency: int
    ttft_p50: float
    ttft_p99: float
    per_user_ttft_p50: Dict[str, float] = field(default_factory=dict)
    requests: List[ServedRequest] = field(default_factory=list)
    pool_stats: Optional[KVPoolStats] = None
    tier_census_peak: Dict[str, int] = field(default_factory=dict)
    bit_exact_checked: int = 0
    bit_exact_ok: bool = True
    engine_stats: Optional[EngineStats] = None

    @property
    def prefetch_hit_rate(self) -> float:
        return self.pool_stats.prefetch_hit_rate if self.pool_stats else 0.0

    @property
    def ttfts(self) -> List[float]:
        return [r.ttft_s for r in self.requests if r.served]


class _ActiveRequest:
    __slots__ = (
        "req",
        "admitted_s",
        "prefill_end_s",
        "generated",
        "first_token_s",
        "blocks_per_layer",
        "reserved_bytes",
    )

    def __init__(
        self, req: InferenceRequest, admitted_s: float, reserved_bytes: int
    ) -> None:
        self.req = req
        self.admitted_s = admitted_s
        self.prefill_end_s = admitted_s
        self.generated = 0
        self.first_token_s: Optional[float] = None
        self.blocks_per_layer = 0
        self.reserved_bytes = reserved_bytes


class KVServerSim:
    """Virtual-clock decode loop over one trace (see module docstring)."""

    def __init__(self, trace: RequestTrace, config: ServerConfig) -> None:
        self.trace = trace
        self.config = config

    # ------------------------------------------------------------ sizing
    def _context_blocks(self, tokens: int) -> int:
        return max(1, math.ceil(tokens / self.config.block_tokens))

    def _full_kv_bytes(self, req: InferenceRequest) -> int:
        blocks = self._context_blocks(req.total_tokens())
        return blocks * self.config.num_layers * self.config.block_bytes

    def _window_bytes(self) -> int:
        cfg = self.config
        return cfg.admit_window_blocks * cfg.num_layers * cfg.block_bytes

    # --------------------------------------------------------------- run
    def run(self) -> KVServeResult:
        cfg = self.config
        store_dir = cfg.store_dir
        cleanup_dir = None
        engine: Optional[Engine] = None
        pool: Optional[KVBlockPool] = None
        if cfg.paged:
            if store_dir is None:
                store_dir = cleanup_dir = tempfile.mkdtemp(prefix="repro-kv-")
            registry = TenantRegistry()
            for user in self.trace.users:
                registry.register(user)
            engine = build_engine(
                EngineConfig(
                    target="tiered",
                    store_dir=store_dir,
                    cpu_pool_bytes=cfg.cpu_pool_bytes,
                    tenants=registry,
                    promote_on_load=False,
                )
            )
            pool = KVBlockPool(
                engine,
                block_tokens=cfg.block_tokens,
                num_layers=cfg.num_layers,
                hbm_capacity_bytes=cfg.hbm_capacity_bytes,
                strategy=make_strategy(cfg.strategy),
                sync_mode=True,
            )
        try:
            return self._run_loop(pool, engine)
        finally:
            if engine is not None:
                engine.shutdown()
            if cleanup_dir is not None:
                shutil.rmtree(cleanup_dir, ignore_errors=True)

    # ----------------------------------------------------------- the loop
    def _run_loop(
        self, pool: Optional[KVBlockPool], engine: Optional[Engine]
    ) -> KVServeResult:
        cfg = self.config
        seed = self.trace.config.seed
        result = KVServeResult(
            label=cfg.label(),
            served=0,
            rejected=0,
            peak_concurrency=0,
            ttft_p50=0.0,
            ttft_p99=0.0,
        )
        outcomes: Dict[str, ServedRequest] = {
            r.request_id: ServedRequest(
                request_id=r.request_id,
                user=r.user,
                arrival_s=r.arrival_s,
                context_tokens=r.context_tokens,
                decode_tokens=r.decode_tokens,
                served=False,
            )
            for r in self.trace
        }
        pending: List[InferenceRequest] = sorted(
            self.trace, key=lambda r: (r.arrival_s, r.request_id)
        )
        waiting: List[InferenceRequest] = []
        active: List[_ActiveRequest] = []
        reserved = 0
        clock = 0.0

        def admit(req: InferenceRequest, need: int) -> None:
            nonlocal reserved
            reserved += need
            act = _ActiveRequest(req, admitted_s=clock, reserved_bytes=need)
            out = outcomes[req.request_id]
            out.admitted_s = clock
            if pool is not None:
                pool.begin_request(
                    req.request_id,
                    user=req.user,
                    context_tokens=req.context_tokens,
                )
            act.blocks_per_layer = self._context_blocks(req.context_tokens)
            if pool is not None:
                for index in range(act.blocks_per_layer):
                    for layer in range(cfg.num_layers):
                        pool.append_block(
                            req.request_id,
                            layer,
                            block_payload(
                                seed,
                                req.request_id,
                                layer,
                                index,
                                cfg.block_bytes,
                            ),
                        )
            act.prefill_end_s = clock + req.context_tokens / cfg.prefill_tokens_per_s
            active.append(act)

        while pending or waiting or active:
            while pending and pending[0].arrival_s <= clock:
                waiting.append(pending.pop(0))
            still_waiting: List[InferenceRequest] = []
            for req in waiting:
                need = (
                    self._window_bytes()
                    if cfg.paged
                    else self._full_kv_bytes(req)
                )
                if need > cfg.hbm_capacity_bytes:
                    # Can never be served on this box (baseline only —
                    # a paged window always fits a sane config).
                    result.rejected += 1
                    continue
                if reserved + need <= cfg.hbm_capacity_bytes:
                    admit(req, need)
                else:
                    still_waiting.append(req)
            waiting = still_waiting
            if result.peak_concurrency < len(active):
                result.peak_concurrency = len(active)
                if pool is not None:
                    result.tier_census_peak = pool.tier_census()
            if not active:
                if pending:
                    clock = max(clock, pending[0].arrival_s)
                    continue
                break  # only unadmittable leftovers (none, by then)

            # ---- one decode round over every prefill-complete request
            decoders = [a for a in active if a.prefill_end_s <= clock]
            if not decoders:
                # Jump to the earliest prefill completion (or arrival).
                horizon = min(a.prefill_end_s for a in active)
                if pending:
                    horizon = min(horizon, pending[0].arrival_s)
                clock = max(clock, horizon)
                continue

            if pool is not None:
                pool.prefetch([a.req.request_id for a in decoders])
            io_cost = 0.0
            finished: List[_ActiveRequest] = []
            for act in decoders:
                rid = act.req.request_id
                if pool is not None:
                    for index in range(act.blocks_per_layer):
                        for layer in range(cfg.num_layers):
                            io_cost += self._access_cost(pool, rid, layer, index)
                            pool.fetch(rid, layer, index)
                act.generated += 1
                total_tokens = act.req.context_tokens + act.generated
                if (
                    total_tokens > act.blocks_per_layer * cfg.block_tokens
                    and act.generated < act.req.decode_tokens
                ):
                    index = act.blocks_per_layer
                    act.blocks_per_layer += 1
                    if pool is not None:
                        for layer in range(cfg.num_layers):
                            pool.append_block(
                                rid,
                                layer,
                                block_payload(
                                    seed, rid, layer, index, cfg.block_bytes
                                ),
                            )
                if act.generated >= act.req.decode_tokens:
                    finished.append(act)
            clock += cfg.decode_step_s + io_cost
            for act in decoders:
                if act.first_token_s is None:
                    act.first_token_s = clock
                    out = outcomes[act.req.request_id]
                    out.ttft_s = clock - act.req.arrival_s
            for act in finished:
                out = outcomes[act.req.request_id]
                out.served = True
                out.finished_s = clock
                result.served += 1
                if pool is not None:
                    if cfg.verify:
                        checked, ok = self._verify(pool, act, seed)
                        result.bit_exact_checked += checked
                        result.bit_exact_ok = result.bit_exact_ok and ok
                    pool.release_request(act.req.request_id)
                reserved -= act.reserved_bytes
                active.remove(act)

        ttfts = [o.ttft_s for o in outcomes.values() if o.served]
        result.requests = list(outcomes.values())
        result.ttft_p50 = percentile(ttfts, 50.0)
        result.ttft_p99 = percentile(ttfts, 99.0)
        by_user: Dict[str, List[float]] = {}
        for out in outcomes.values():
            if out.served:
                by_user.setdefault(out.user, []).append(out.ttft_s)
        result.per_user_ttft_p50 = {
            user: percentile(vals, 50.0)
            for user, vals in sorted(by_user.items())
        }
        if pool is not None:
            result.pool_stats = pool.stats
        if engine is not None:
            result.engine_stats = engine.stats()
        return result

    # ------------------------------------------------------------- costs
    def _access_cost(
        self, pool: KVBlockPool, rid: str, layer: int, index: int
    ) -> float:
        """Virtual seconds a decode pays to read one block *before* the
        actual fetch mutates placement."""
        from repro.serve.kv_pool import BlockKey

        cfg = self.config
        tier = pool.block_tier(BlockKey(request_id=rid, layer=layer, index=index))
        if tier in ("hbm", "writeback", "fetching"):
            return 0.0
        rate = (
            cfg.cpu_fetch_bytes_per_s
            if tier == "cpu"
            else cfg.ssd_fetch_bytes_per_s
        )
        return cfg.fetch_latency_s + cfg.block_bytes / rate

    # ------------------------------------------------------------ verify
    def _verify(
        self, pool: KVBlockPool, act: _ActiveRequest, seed: int
    ) -> Tuple[int, bool]:
        """Fetch every block back and compare against the generator —
        KV bytes must be bit-exact after however many migrations."""
        cfg = self.config
        rid = act.req.request_id
        ok = True
        checked = 0
        for index in range(act.blocks_per_layer):
            for layer in range(cfg.num_layers):
                data = pool.fetch(rid, layer, index)
                expected = block_payload(seed, rid, layer, index, cfg.block_bytes)
                ok = ok and np.array_equal(
                    np.asarray(data, dtype=np.uint8).ravel(), expected
                )
                checked += 1
        return checked, ok
