"""BERT: encoder-only transformer (bidirectional self-attention)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.checkpoint import checkpoint
from repro.models.config import ModelConfig
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding
from repro.nn.layernorm import LayerNorm
from repro.nn.linear import Linear
from repro.nn.transformer import TransformerLayer
from repro.tensor import ops
from repro.tensor.module import Module, ModuleList
from repro.tensor.tensor import Tensor


class BERT(Module):
    """Encoder-only model with a masked-LM pretraining head.

    Pretraining loss is cross-entropy of the MLM logits against the target
    ids; for benchmark purposes the loss is computed at every position
    (mask selection does not change the activation footprint).
    """

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if config.arch != "bert":
            raise ValueError(f"BERT requires arch='bert', got {config.arch}")
        self.config = config
        gen = rng if rng is not None else np.random.default_rng(0)
        self.token_emb = Embedding(config.vocab_size, config.hidden, rng=gen)
        self.pos_emb = Embedding(config.seq_len, config.hidden, rng=gen)
        self.emb_ln = LayerNorm(config.hidden)
        self.emb_dropout = Dropout(config.dropout)
        self.layers = ModuleList(
            TransformerLayer(
                config.hidden,
                config.num_heads,
                causal=False,
                dropout=config.dropout,
                rng=gen,
            )
            for _ in range(config.num_layers)
        )
        self.mlm_head = Linear(config.hidden, config.vocab_size, bias=False, rng=gen)

    def forward(self, tokens: Tensor, targets: Optional[Tensor] = None) -> Tensor:
        batch, seq = tokens.shape
        positions = Tensor(
            np.broadcast_to(np.arange(seq, dtype=np.int64), (batch, seq)).copy(),
            device=tokens.device,
        )
        x = self.token_emb(tokens) + self.pos_emb(positions)
        x = self.emb_dropout(self.emb_ln(x))
        for layer in self.layers:
            if self.config.recompute:
                x = checkpoint(layer, x)
            else:
                x = layer(x)
        logits = self.mlm_head(x)
        if targets is None:
            return logits
        return ops.cross_entropy(logits, targets)
