"""T5: encoder-decoder transformer with cross-attention.

Per the paper's setup (Sec. IV-A), "the number of decoders is half of the
total number of layers, rounded down"; decoder layers apply self-attention
to the target text and cross-attention over the encoder output tokens
(Sec. II-A).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.checkpoint import checkpoint
from repro.models.config import ModelConfig
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding
from repro.nn.layernorm import LayerNorm
from repro.nn.linear import Linear
from repro.nn.transformer import TransformerLayer
from repro.tensor import ops
from repro.tensor.module import Module, ModuleList
from repro.tensor.tensor import Tensor


class T5(Module):
    """Encoder-decoder LM.

    ``forward(src_tokens, tgt_tokens, targets)`` encodes the source
    sequence, decodes the target sequence with causal self-attention plus
    cross-attention over the encoder output, and returns the cross-entropy
    loss (or the logits when ``targets`` is None).
    """

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if config.arch != "t5":
            raise ValueError(f"T5 requires arch='t5', got {config.arch}")
        if config.num_layers < 2:
            raise ValueError("T5 needs at least one encoder and one decoder layer")
        self.config = config
        gen = rng if rng is not None else np.random.default_rng(0)
        self.token_emb = Embedding(config.vocab_size, config.hidden, rng=gen)
        self.pos_emb = Embedding(config.seq_len, config.hidden, rng=gen)
        self.emb_dropout = Dropout(config.dropout)
        self.encoder_layers = ModuleList(
            TransformerLayer(
                config.hidden,
                config.num_heads,
                causal=False,
                dropout=config.dropout,
                rng=gen,
            )
            for _ in range(config.num_encoder_layers)
        )
        self.decoder_layers = ModuleList(
            TransformerLayer(
                config.hidden,
                config.num_heads,
                causal=True,
                cross_attention=True,
                dropout=config.dropout,
                rng=gen,
            )
            for _ in range(config.num_decoder_layers)
        )
        self.final_ln = LayerNorm(config.hidden)
        self.lm_head = Linear(config.hidden, config.vocab_size, bias=False, rng=gen)

    def _embed(self, tokens: Tensor) -> Tensor:
        batch, seq = tokens.shape
        positions = Tensor(
            np.broadcast_to(np.arange(seq, dtype=np.int64), (batch, seq)).copy(),
            device=tokens.device,
        )
        return self.emb_dropout(self.token_emb(tokens) + self.pos_emb(positions))

    def encode(self, src_tokens: Tensor) -> Tensor:
        x = self._embed(src_tokens)
        for layer in self.encoder_layers:
            if self.config.recompute:
                x = checkpoint(layer, x)
            else:
                x = layer(x)
        return x

    def forward(
        self,
        src_tokens: Tensor,
        tgt_tokens: Tensor,
        targets: Optional[Tensor] = None,
    ) -> Tensor:
        context = self.encode(src_tokens)
        y = self._embed(tgt_tokens)
        for layer in self.decoder_layers:
            if self.config.recompute:
                y = checkpoint(layer, y, context)
            else:
                y = layer(y, context=context)
        y = self.final_ln(y)
        logits = self.lm_head(y)
        if targets is None:
            return logits
        return ops.cross_entropy(logits, targets)
