"""Model zoo: the three architectures the paper evaluates.

- :class:`~repro.models.gpt.GPT` — decoder-only (causal self-attention).
- :class:`~repro.models.bert.BERT` — encoder-only (bidirectional).
- :class:`~repro.models.t5.T5` — encoder-decoder with cross-attention; the
  number of decoders is half the total layer count, rounded down
  (Sec. IV-A).
"""

from repro.models.config import ModelConfig, paper_eval_configs
from repro.models.gpt import GPT
from repro.models.bert import BERT
from repro.models.t5 import T5

__all__ = ["ModelConfig", "paper_eval_configs", "GPT", "BERT", "T5"]
