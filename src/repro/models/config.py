"""Model hyper-parameter configuration.

The paper's evaluation grid (Sec. IV-A): hidden dimension H from 8192 to
16384 with layer counts chosen to fit 40 GB A100s — (H, L) in
{(8192, 4), (12288, 3), (16384, 2)} — attention head dimension 128,
sequence length 1024, FP16, batch size 16 unless stated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


#: Attention head dimension used throughout the evaluation.
HEAD_DIM = 128


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters shared by GPT/BERT/T5 in the evaluation.

    Attributes:
        arch: "gpt" | "bert" | "t5".
        hidden: hidden dimension H.
        num_layers: total transformer layer count L (for T5 this is the
            combined encoder+decoder count; decoders = L // 2).
        vocab_size: vocabulary size.
        seq_len: text sequence length (paper: 1024).
        dropout: dropout probability.
        dtype_bytes: bytes per element (2 for the paper's FP16 runs).
        head_dim: attention head dimension (paper: 128; tests shrink it).
    """

    arch: str
    hidden: int
    num_layers: int
    vocab_size: int = 50257
    seq_len: int = 1024
    dropout: float = 0.0
    dtype_bytes: int = 2
    head_dim: int = HEAD_DIM
    #: Layerwise full recomputation (the Fig. 7 "Recompute" strategy).
    recompute: bool = False

    def __post_init__(self) -> None:
        if self.arch not in ("gpt", "bert", "t5"):
            raise ValueError(f"unknown arch: {self.arch}")
        if self.hidden % self.head_dim != 0:
            raise ValueError(
                f"hidden {self.hidden} must be a multiple of head_dim {self.head_dim}"
            )
        if self.num_layers < 1:
            raise ValueError(f"need at least one layer: {self.num_layers}")

    @property
    def num_heads(self) -> int:
        return self.hidden // self.head_dim

    @property
    def ffn_hidden(self) -> int:
        return 4 * self.hidden

    @property
    def num_decoder_layers(self) -> int:
        """T5 decoder count: half of the total, rounded down (Sec. IV-A)."""
        if self.arch != "t5":
            return self.num_layers if self.arch == "gpt" else 0
        return self.num_layers // 2

    @property
    def num_encoder_layers(self) -> int:
        if self.arch == "bert":
            return self.num_layers
        if self.arch == "t5":
            return self.num_layers - self.num_decoder_layers
        return 0

    def scaled(self, **overrides) -> "ModelConfig":
        """A copy with some fields overridden (used to shrink for tests)."""
        from dataclasses import replace

        return replace(self, **overrides)


#: The (hidden, layers) grid of Fig. 6 / Table III.
PAPER_EVAL_GRID: List[Tuple[int, int]] = [(8192, 4), (12288, 3), (16384, 2)]


def paper_eval_configs(arch: str, seq_len: int = 1024, vocab_size: int = 50257) -> List[ModelConfig]:
    """The three (H, L) evaluation configs of Fig. 6 for one architecture."""
    return [
        ModelConfig(
            arch=arch,
            hidden=hidden,
            num_layers=layers,
            seq_len=seq_len,
            vocab_size=vocab_size,
        )
        for hidden, layers in PAPER_EVAL_GRID
    ]
