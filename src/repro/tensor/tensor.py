"""The Tensor type: numpy data + device placement + autograd metadata."""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple, Union

import numpy as np

from repro.device.memory import MemoryTag
from repro.tensor import flags
from repro.tensor.function import AccumulateGrad, BackwardNode, run_backward
from repro.tensor.storage import Device, UntypedStorage, cpu, is_gpu

#: Re-exported for convenience (``from repro.tensor import no_grad``).
no_grad = flags.no_grad


class Tensor:
    """A view over an :class:`UntypedStorage` plus autograd metadata.

    Mirrors the PyTorch properties SSDTrain's tensor cache touches:
    ``untyped_storage()`` (shared by views/transposes), ``is_cpu``,
    ``size()``, ``grad_fn``, and reference-count-driven memory release.
    """

    def __init__(
        self,
        data: Union[np.ndarray, float, int, Sequence],
        device: Device = cpu,
        requires_grad: bool = False,
        storage: Optional[UntypedStorage] = None,
        tag: MemoryTag = MemoryTag.ACTIVATIONS,
    ) -> None:
        if storage is not None:
            if not isinstance(data, np.ndarray):
                raise TypeError("view construction requires a numpy array")
            if data.base is not storage.data and data is not storage.data:
                raise ValueError("view data must alias the given storage")
            self.storage = storage
            self.data = data
        else:
            arr = np.asarray(data)
            if arr.dtype == np.float64:
                arr = arr.astype(np.float32)
            self.storage = UntypedStorage(arr, device=device, tag=tag)
            self.data = self.storage.data
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[Tensor] = None
        self.grad_fn: Optional[BackwardNode] = None
        self._accumulate_node: Optional[AccumulateGrad] = None

    # ------------------------------------------------------------ properties
    @property
    def device(self) -> Device:
        return self.storage.device

    @property
    def is_cpu(self) -> bool:
        return not is_gpu(self.device)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def numel(self) -> int:
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def is_leaf(self) -> bool:
        return self.grad_fn is None

    def size(self) -> Tuple[int, ...]:
        """PyTorch-style ``size()`` (Alg. 1 line 2 uses it)."""
        return self.data.shape

    def untyped_storage(self) -> UntypedStorage:
        """The shared storage — where ``get_id()`` stamps its identifier."""
        return self.storage

    # -------------------------------------------------------------- autograd
    def _grad_edge(self) -> BackwardNode:
        """The backward-graph node that receives this tensor's gradient."""
        if self.grad_fn is not None:
            return self.grad_fn
        if self._accumulate_node is None:
            self._accumulate_node = AccumulateGrad(self)
        return self._accumulate_node

    def _accumulate_grad(self, grad_data: np.ndarray) -> None:
        if self.grad is None:
            self.grad = Tensor(
                np.array(grad_data, copy=True),
                device=self.device,
                tag=MemoryTag.GRADIENTS,
            )
        else:
            self.grad.data += grad_data

    def backward(self, grad: Optional["Tensor"] = None) -> None:
        """Run backward propagation from this tensor.

        Args:
            grad: seed gradient; defaults to ones (scalar outputs only).
        """
        if self.grad_fn is None:
            if self.requires_grad:
                seed = grad.data if grad is not None else np.ones_like(self.data)
                self._accumulate_grad(seed)
                return
            raise RuntimeError("tensor does not require grad")
        if grad is None:
            if self.numel != 1:
                raise RuntimeError("grad must be provided for non-scalar backward")
            seed = np.ones_like(self.data)
        else:
            seed = grad.data
        run_backward(self.grad_fn, seed)

    def detach(self) -> "Tensor":
        """A new tensor sharing this storage, outside the autograd graph.

        Ops use this to save their own outputs without creating reference
        cycles; SSDTrain's dedup still works because the storage is shared.
        """
        return Tensor(self.data, storage=self.storage)

    # ------------------------------------------------------------- transport
    def to(self, device: Device, tag: Optional[MemoryTag] = None) -> "Tensor":
        """Copy this tensor to ``device`` (no-op copy elision if same)."""
        if device is self.device:
            return self
        out = Tensor(
            np.array(self.data, copy=True),
            device=device,
            requires_grad=self.requires_grad,
            tag=tag if tag is not None else self.storage.tag,
        )
        return out

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        if self.numel != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.reshape(()))

    # ------------------------------------------------------------- operators
    def __matmul__(self, other: "Tensor") -> "Tensor":
        from repro.tensor import ops

        return ops.matmul(self, other)

    def __add__(self, other: Any) -> "Tensor":
        from repro.tensor import ops

        return ops.add(self, _wrap(other, self))

    __radd__ = __add__

    def __sub__(self, other: Any) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(self, _wrap(other, self))

    def __rsub__(self, other: Any) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(_wrap(other, self), self)

    def __mul__(self, other: Any) -> "Tensor":
        from repro.tensor import ops

        if isinstance(other, (int, float)):
            return ops.scale(self, float(other))
        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other: Any) -> "Tensor":
        from repro.tensor import ops

        if isinstance(other, (int, float)):
            return ops.scale(self, 1.0 / float(other))
        return ops.div(self, other)

    def __neg__(self) -> "Tensor":
        from repro.tensor import ops

        return ops.scale(self, -1.0)

    def matmul(self, other: "Tensor") -> "Tensor":
        return self @ other

    def reshape(self, *shape: int) -> "Tensor":
        from repro.tensor import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axis0: int, axis1: int) -> "Tensor":
        from repro.tensor import ops

        return ops.transpose(self, axis0, axis1)

    @property
    def T(self) -> "Tensor":
        if self.ndim != 2:
            raise ValueError(".T requires a 2-D tensor")
        return self.transpose(0, 1)

    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        from repro.tensor import ops

        return ops.mean_(self, axis=axis, keepdims=keepdims)

    def __repr__(self) -> str:
        grad_part = f", grad_fn={self.grad_fn}" if self.grad_fn else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}, device={self.device}{grad_part})"


class Parameter(Tensor):
    """A trainable weight: requires grad, charged to the WEIGHTS tag.

    The tensor cache records all Parameter storages before training so the
    pack hook can return them as-is (Sec. III-C1, "Excluding Weights").
    """

    def __init__(self, data: Union[np.ndarray, Sequence], device: Device = cpu) -> None:
        super().__init__(data, device=device, requires_grad=True, tag=MemoryTag.WEIGHTS)


def _wrap(value: Any, like: Tensor) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=like.dtype), device=like.device)


def tensor(
    data: Union[np.ndarray, float, int, Sequence],
    device: Device = cpu,
    requires_grad: bool = False,
    dtype: Optional[np.dtype] = None,
) -> Tensor:
    """Factory mirroring ``torch.tensor``."""
    arr = np.asarray(data)
    if dtype is not None:
        arr = arr.astype(dtype)
    return Tensor(arr, device=device, requires_grad=requires_grad)


def zeros(shape: Sequence[int], device: Device = cpu, dtype=np.float32) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype), device=device)


def ones(shape: Sequence[int], device: Device = cpu, dtype=np.float32) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype), device=device)


def randn(
    shape: Sequence[int],
    device: Device = cpu,
    dtype=np.float32,
    rng: Optional[np.random.Generator] = None,
    scale: float = 1.0,
    requires_grad: bool = False,
) -> Tensor:
    gen = rng if rng is not None else np.random.default_rng()
    data = (gen.standard_normal(shape) * scale).astype(dtype)
    return Tensor(data, device=device, requires_grad=requires_grad)
