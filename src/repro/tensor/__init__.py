"""A numpy-backed tensor/autograd engine mirroring the PyTorch semantics
that SSDTrain's tensor cache relies on.

The engine reproduces, faithfully enough for the paper's mechanism to work
unchanged:

- **storages**: a :class:`~repro.tensor.storage.UntypedStorage` is shared by
  views/transposes of the same data and carries a metadata dict.  SSDTrain's
  ``get_id()`` stamps its timestamp on the *storage*, which is why a weight
  and its transpose deduplicate to one identifier (Sec. III-C1).
- **saved-tensor pack/unpack hooks**: every tensor an operator saves for
  backward passes through the active pack hook, and the object it returns is
  what the graph holds; the unpack hook must hand the tensor back at
  backward time (Alg. 1).
- **module forward/backward hook pairs**: used by the cache to maintain the
  scope stack and to trigger prefetching (Sec. III-B).
- **prompt memory release**: the graph holds *packed objects*, not tensors;
  once the pack hook returns an identifier and the store completes, Python
  reference counting frees the GPU buffer — exactly the mechanism the paper
  describes.
"""

from repro.tensor.storage import Device, UntypedStorage, cpu
from repro.tensor.tensor import Parameter, Tensor, no_grad, tensor
from repro.tensor.function import Function, FunctionContext
from repro.tensor.saved_tensors import saved_tensors_hooks
from repro.tensor.module import Module, ModuleList
from repro.tensor import ops

__all__ = [
    "Device",
    "UntypedStorage",
    "cpu",
    "Tensor",
    "Parameter",
    "tensor",
    "no_grad",
    "Function",
    "FunctionContext",
    "saved_tensors_hooks",
    "Module",
    "ModuleList",
    "ops",
]
