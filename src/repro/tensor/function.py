"""Autograd functions, graph nodes, and the backward engine.

The graph layout follows PyTorch: nodes reference *parent nodes* (edges),
never input tensors, and saved activations live on the node's context only
as :class:`~repro.tensor.saved_tensors.SavedTensor` slots.  Consequently an
intermediate activation is kept alive solely by the packed object the pack
hook returned — drop that (SSDTrain replaces it with a string identifier)
and the buffer is reclaimed by reference counting.

After a node's backward executes, its context is released (``retain_graph``
is not supported; LLM training never retains graphs), so prefetched
activations are likewise freed as backward sweeps through the layers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.tensor import flags
from repro.tensor.saved_tensors import SavedTensor


class FunctionContext:
    """Per-application context: saved tensors plus arbitrary attributes.

    Ops stash non-tensor metadata (shapes, axes, scalars) as plain
    attributes; tensors needed in backward go through
    :meth:`save_for_backward`, which routes them through the active
    saved-tensor pack hook.
    """

    def __init__(self) -> None:
        self._saved: Optional[List[SavedTensor]] = None
        self._released = False

    def save_for_backward(self, *tensors: Any) -> None:
        if self._saved is not None:
            raise RuntimeError("save_for_backward called twice in one forward")
        self._saved = [SavedTensor(t) for t in tensors]

    @property
    def saved_tensors(self) -> Tuple[Any, ...]:
        if self._released:
            raise RuntimeError(
                "saved tensors already freed: backward ran once and "
                "retain_graph semantics are not supported"
            )
        if self._saved is None:
            return ()
        return tuple(slot.unpack() for slot in self._saved)

    def release(self) -> None:
        """Drop saved tensors after backward has consumed them."""
        if self._saved is not None:
            for slot in self._saved:
                slot.clear()
            self._saved = None
        self._released = True


class BackwardNode:
    """A node of the backward graph (single tensor output).

    Attributes:
        ctx: the forward context with saved tensors.
        next_edges: parent nodes aligned with the forward inputs; ``None``
            for inputs that do not require grad.
        pre_callbacks / post_callbacks: fired immediately before/after this
            node's backward runs.  Module backward hooks (and therefore the
            tensor cache's backward scope tracking and prefetch triggers)
            are implemented with these.
    """

    __slots__ = (
        "fn_cls",
        "ctx",
        "next_edges",
        "pre_callbacks",
        "post_callbacks",
        "name",
        "__weakref__",
    )

    def __init__(self, fn_cls: type, ctx: FunctionContext, next_edges: Sequence[Optional["BackwardNode"]]) -> None:
        self.fn_cls = fn_cls
        self.ctx = ctx
        self.next_edges: List[Optional[BackwardNode]] = list(next_edges)
        self.pre_callbacks: List[Any] = []
        self.post_callbacks: List[Any] = []
        self.name = fn_cls.__name__

    def run_backward(self, grad_output: np.ndarray) -> Tuple[Optional[np.ndarray], ...]:
        for cb in self.pre_callbacks:
            cb(grad_output)
        grads = self.fn_cls.backward(self.ctx, grad_output)
        if not isinstance(grads, tuple):
            grads = (grads,)
        for cb in self.post_callbacks:
            cb(grads)
        self.ctx.release()
        return grads

    def __repr__(self) -> str:
        return f"<{self.name}Backward>"


class AccumulateGrad(BackwardNode):
    """Terminal node that accumulates the gradient of a leaf tensor.

    Holds a strong reference to the leaf (weights are meant to stay
    resident; SSDTrain explicitly excludes them from offloading).
    """

    __slots__ = ("variable",)

    def __init__(self, variable: Any) -> None:
        super().__init__(AccumulateGrad, FunctionContext(), [])
        self.variable = variable
        self.name = "AccumulateGrad"

    def run_backward(self, grad_output: np.ndarray) -> Tuple[Optional[np.ndarray], ...]:
        for cb in self.pre_callbacks:
            cb(grad_output)
        self.variable._accumulate_grad(grad_output)
        for cb in self.post_callbacks:
            cb(())
        return ()


class Function:
    """Base class for differentiable ops.

    Subclasses implement::

        @staticmethod
        def forward(ctx, *args) -> np.ndarray          # numpy in/out
        @staticmethod
        def backward(ctx, grad_output) -> tuple        # grads per input

    ``apply`` handles tensor unwrapping, device/FLOP bookkeeping, and graph
    construction.  Inputs may be Tensors or plain Python values; gradients
    are produced only for Tensor inputs that require grad.
    """

    @staticmethod
    def forward(ctx: FunctionContext, *args: Any) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def backward(ctx: FunctionContext, grad_output: np.ndarray) -> Any:
        raise NotImplementedError

    #: FLOPs executed by one application, given the forward args; subclasses
    #: override to feed the device counters.  Return (forward_flops,).
    @staticmethod
    def flops(*args: Any) -> float:
        return 0.0

    @classmethod
    def apply(cls, *args: Any) -> "Any":
        from repro.tensor.tensor import Tensor  # cycle: tensor imports ops

        tensor_inputs = [a for a in args if isinstance(a, Tensor)]
        if not tensor_inputs:
            raise TypeError(f"{cls.__name__}.apply needs at least one Tensor input")
        device = tensor_inputs[0].device
        for t in tensor_inputs[1:]:
            if t.device is not device:
                raise RuntimeError(
                    f"{cls.__name__}: inputs on different devices "
                    f"({device} vs {t.device})"
                )

        ctx = FunctionContext()
        out_data = cls.forward(ctx, *args)

        fwd_flops = cls.flops(*args)
        from repro.tensor.storage import is_gpu

        if fwd_flops and is_gpu(device):
            device.record_flops(fwd_flops, algorithmic=not flags.recompute_mode())

        requires_grad = flags.grad_enabled() and any(
            t.requires_grad for t in tensor_inputs
        )
        # View-producing ops (transpose, reshape of contiguous data) return
        # arrays aliasing an input buffer.  The output tensor must share that
        # input's storage: this is what makes a weight and its transpose
        # deduplicate to one identifier in SSDTrain's get_id() scheme.
        owner = None
        for t in tensor_inputs:
            buf = t.storage.data
            if out_data is buf or out_data.base is buf:
                owner = t.storage
                break
        if owner is not None:
            out = Tensor(out_data, storage=owner, requires_grad=requires_grad)
        else:
            out = Tensor(out_data, device=device, requires_grad=requires_grad)
        if requires_grad:
            edges: List[Optional[BackwardNode]] = []
            for a in args:
                if isinstance(a, Tensor) and a.requires_grad:
                    edges.append(a._grad_edge())
                else:
                    edges.append(None)
            out.grad_fn = BackwardNode(cls, ctx, edges)
        else:
            ctx.release()
        return out


def run_backward(root_node: BackwardNode, grad: np.ndarray) -> None:
    """Execute backward from ``root_node`` with seed gradient ``grad``.

    Standard reverse topological traversal with gradient accumulation at
    fan-in.  Runs under the ``in_backward`` flag so checkpoint recomputation
    (and SSDTrain's pack hook) can detect backward context.
    """
    # Dependency counting: number of children (consumers) per node within
    # the reachable graph, so a node runs only after all its output grads
    # have arrived.
    dependencies: Dict[int, int] = {}
    nodes: Dict[int, BackwardNode] = {id(root_node): root_node}
    stack = [root_node]
    while stack:
        node = stack.pop()
        for parent in node.next_edges:
            if parent is None:
                continue
            pid = id(parent)
            dependencies[pid] = dependencies.get(pid, 0) + 1
            if pid not in nodes:
                nodes[pid] = parent
                stack.append(parent)

    pending_grads: Dict[int, np.ndarray] = {id(root_node): grad}
    ready = [root_node]
    with flags.backward_running():
        while ready:
            node = ready.pop()
            grad_output = pending_grads.pop(id(node))
            input_grads = node.run_backward(grad_output)
            if len(input_grads) < len(node.next_edges):
                raise RuntimeError(
                    f"{node.name}.backward returned {len(input_grads)} grads for "
                    f"{len(node.next_edges)} inputs"
                )
            for parent, g in zip(node.next_edges, input_grads):
                if parent is None:
                    continue
                pid = id(parent)
                if g is None:
                    # This edge contributes nothing; still consume the
                    # dependency so the parent can fire.
                    pass
                elif pid in pending_grads:
                    pending_grads[pid] = pending_grads[pid] + g
                else:
                    pending_grads[pid] = g
                dependencies[pid] -= 1
                if dependencies[pid] == 0:
                    if pid not in pending_grads:
                        pending_grads[pid] = None  # type: ignore[assignment]
                    if pending_grads[pid] is not None:
                        ready.append(parent)
                    else:
                        pending_grads.pop(pid)
