"""Thread-local execution flags for the autograd engine.

Three flags matter to the reproduction:

- ``grad_enabled`` — whether ops record autograd nodes (``no_grad``).
- ``in_backward`` — set while the backward engine runs.  Activation
  checkpointing re-executes forward code *inside* backward; SSDTrain's pack
  hook consults this to keep recomputed activations in memory instead of
  offloading them again (Alg. 1 line 5, second condition).
- ``recompute_mode`` — set during checkpoint recomputation so FLOPs are
  counted as executed but *not* algorithmic (the Fig. 7 model-throughput
  definition excludes recomputation).
"""

from __future__ import annotations

import contextlib
import threading

_state = threading.local()


def _get(name: str, default: bool) -> bool:
    return getattr(_state, name, default)


def grad_enabled() -> bool:
    return _get("grad_enabled", True)


def in_backward() -> bool:
    return _get("in_backward", False)


def recompute_mode() -> bool:
    return _get("recompute_mode", False)


@contextlib.contextmanager
def set_flag(name: str, value: bool):
    """Temporarily set a thread-local flag."""
    old = _get(name, {"grad_enabled": True}.get(name, False))
    setattr(_state, name, value)
    try:
        yield
    finally:
        setattr(_state, name, old)


def no_grad():
    """Context manager disabling graph construction."""
    return set_flag("grad_enabled", False)


def backward_running():
    """Context manager marking backward execution (engine-internal)."""
    return set_flag("in_backward", True)


def recompute_region():
    """Context manager marking checkpoint recomputation."""
    return set_flag("recompute_mode", True)
