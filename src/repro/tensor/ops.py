"""Differentiable operators for the transformer workloads.

Every op follows the PyTorch saving discipline that SSDTrain depends on:
tensors needed by backward go through ``ctx.save_for_backward`` (and thus
through the active pack hook); scalar metadata lives directly on the ctx.
Ops that need their own output save a *detached* view so the graph carries
no reference cycles and reference counting frees buffers promptly.

The FlashAttention-style :func:`flash_attention` op saves only Q, K, V and
recomputes the attention probabilities in backward, so no O(S^2) tensor is
ever registered on the graph — matching the paper's evaluation setup
(FlashAttention-2 enabled, which is also why selective checkpointing is
moot, Sec. IV-C).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.tensor.function import Function, FunctionContext
from repro.tensor.tensor import Tensor


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


# --------------------------------------------------------------------------
# Elementwise arithmetic
# --------------------------------------------------------------------------
class Add(Function):
    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor, b: Tensor) -> np.ndarray:
        ctx.a_shape, ctx.b_shape = a.shape, b.shape
        return a.data + b.data

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        return _unbroadcast(grad, ctx.a_shape), _unbroadcast(grad, ctx.b_shape)

    @staticmethod
    def flops(a: Tensor, b: Tensor) -> float:
        return float(max(a.numel, b.numel))


class Sub(Function):
    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor, b: Tensor) -> np.ndarray:
        ctx.a_shape, ctx.b_shape = a.shape, b.shape
        return a.data - b.data

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        return _unbroadcast(grad, ctx.a_shape), -_unbroadcast(grad, ctx.b_shape)

    @staticmethod
    def flops(a: Tensor, b: Tensor) -> float:
        return float(max(a.numel, b.numel))


class Mul(Function):
    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor, b: Tensor) -> np.ndarray:
        ctx.a_shape, ctx.b_shape = a.shape, b.shape
        ctx.save_for_backward(a.detach(), b.detach())
        return a.data * b.data

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        a, b = ctx.saved_tensors
        return (
            _unbroadcast(grad * b.data, ctx.a_shape),
            _unbroadcast(grad * a.data, ctx.b_shape),
        )

    @staticmethod
    def flops(a: Tensor, b: Tensor) -> float:
        return float(max(a.numel, b.numel))


class Div(Function):
    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor, b: Tensor) -> np.ndarray:
        ctx.a_shape, ctx.b_shape = a.shape, b.shape
        ctx.save_for_backward(a.detach(), b.detach())
        return a.data / b.data

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        a, b = ctx.saved_tensors
        ga = _unbroadcast(grad / b.data, ctx.a_shape)
        gb = _unbroadcast(-grad * a.data / (b.data * b.data), ctx.b_shape)
        return ga, gb

    @staticmethod
    def flops(a: Tensor, b: Tensor) -> float:
        return float(max(a.numel, b.numel))


class Scale(Function):
    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor, factor: float) -> np.ndarray:
        ctx.factor = factor
        return a.data * np.asarray(factor, dtype=a.dtype)

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        return grad * ctx.factor, None

    @staticmethod
    def flops(a: Tensor, factor: float) -> float:
        return float(a.numel)


# --------------------------------------------------------------------------
# Matmul
# --------------------------------------------------------------------------
class MatMul(Function):
    """Batched matrix multiplication with numpy broadcasting over batch dims."""

    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor, b: Tensor) -> np.ndarray:
        ctx.a_shape, ctx.b_shape = a.shape, b.shape
        ctx.save_for_backward(a.detach(), b.detach())
        return a.data @ b.data

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        a, b = ctx.saved_tensors
        ga = grad @ np.swapaxes(b.data, -1, -2)
        gb = np.swapaxes(a.data, -1, -2) @ grad
        return _unbroadcast(ga, ctx.a_shape), _unbroadcast(gb, ctx.b_shape)

    @staticmethod
    def flops(a: Tensor, b: Tensor) -> float:
        m, k = a.shape[-2], a.shape[-1]
        n = b.shape[-1]
        batch = int(np.prod(a.shape[:-2])) if a.ndim > 2 else 1
        batch = max(batch, int(np.prod(b.shape[:-2])) if b.ndim > 2 else 1)
        return 2.0 * batch * m * k * n


# --------------------------------------------------------------------------
# Shape ops (view-producing: output shares the input storage)
# --------------------------------------------------------------------------
class Reshape(Function):
    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor, shape: Tuple[int, ...]) -> np.ndarray:
        ctx.a_shape = a.shape
        return a.data.reshape(shape)

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        return grad.reshape(ctx.a_shape), None


class Transpose(Function):
    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor, axis0: int, axis1: int) -> np.ndarray:
        ctx.axis0, ctx.axis1 = axis0, axis1
        return np.swapaxes(a.data, axis0, axis1)

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        return np.swapaxes(grad, ctx.axis0, ctx.axis1), None, None


class Narrow(Function):
    """Slice ``length`` elements starting at ``start`` along ``axis``.

    Output is a fresh contiguous buffer (like Megatron's TP split copies).
    """

    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor, axis: int, start: int, length: int) -> np.ndarray:
        ctx.a_shape = a.shape
        ctx.axis, ctx.start, ctx.length = axis, start, length
        index = [slice(None)] * a.ndim
        index[axis] = slice(start, start + length)
        return np.ascontiguousarray(a.data[tuple(index)])

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        full = np.zeros(ctx.a_shape, dtype=grad.dtype)
        index = [slice(None)] * len(ctx.a_shape)
        index[ctx.axis] = slice(ctx.start, ctx.start + ctx.length)
        full[tuple(index)] = grad
        return full, None, None, None


class Concat(Function):
    """Concatenate two tensors along ``axis`` (used by T5 cross-attention)."""

    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor, b: Tensor, axis: int) -> np.ndarray:
        ctx.axis = axis
        ctx.a_extent = a.shape[axis]
        return np.concatenate([a.data, b.data], axis=axis)

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        ga, gb = np.split(grad, [ctx.a_extent], axis=ctx.axis)
        return np.ascontiguousarray(ga), np.ascontiguousarray(gb), None


# --------------------------------------------------------------------------
# Reductions
# --------------------------------------------------------------------------
class Sum(Function):
    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor, axis: Optional[int], keepdims: bool) -> np.ndarray:
        ctx.a_shape = a.shape
        ctx.axis, ctx.keepdims = axis, keepdims
        return np.asarray(a.data.sum(axis=axis, keepdims=keepdims))

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        if ctx.axis is not None and not ctx.keepdims:
            grad = np.expand_dims(grad, ctx.axis)
        return np.broadcast_to(grad, ctx.a_shape).copy(), None, None

    @staticmethod
    def flops(a: Tensor, axis, keepdims) -> float:
        return float(a.numel)


class Mean(Function):
    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor, axis: Optional[int], keepdims: bool) -> np.ndarray:
        ctx.a_shape = a.shape
        ctx.axis, ctx.keepdims = axis, keepdims
        ctx.count = a.numel if axis is None else a.shape[axis]
        return np.asarray(a.data.mean(axis=axis, keepdims=keepdims))

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        if ctx.axis is not None and not ctx.keepdims:
            grad = np.expand_dims(grad, ctx.axis)
        return np.broadcast_to(grad / ctx.count, ctx.a_shape).copy(), None, None

    @staticmethod
    def flops(a: Tensor, axis, keepdims) -> float:
        return float(a.numel)


# --------------------------------------------------------------------------
# Activations
# --------------------------------------------------------------------------
class GELU(Function):
    """tanh-approximation GELU (the variant used in GPT/Megatron MLPs)."""

    _C = math.sqrt(2.0 / math.pi)

    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor) -> np.ndarray:
        ctx.save_for_backward(a.detach())
        x = a.data
        return 0.5 * x * (1.0 + np.tanh(GELU._C * (x + 0.044715 * x**3)))

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        (a,) = ctx.saved_tensors
        x = a.data.astype(np.float32)
        inner = GELU._C * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        d_inner = GELU._C * (1.0 + 3 * 0.044715 * x**2)
        dgelu = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * d_inner
        return (grad * dgelu).astype(grad.dtype)

    @staticmethod
    def flops(a: Tensor) -> float:
        return 8.0 * a.numel


class ReLU(Function):
    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor) -> np.ndarray:
        ctx.save_for_backward(a.detach())
        return np.maximum(a.data, 0)

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        (a,) = ctx.saved_tensors
        return grad * (a.data > 0)

    @staticmethod
    def flops(a: Tensor) -> float:
        return float(a.numel)


class Tanh(Function):
    """Saves its input and recomputes tanh in backward (no output cycle)."""

    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor) -> np.ndarray:
        ctx.save_for_backward(a.detach())
        return np.tanh(a.data)

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        (a,) = ctx.saved_tensors
        out = np.tanh(a.data)
        return grad * (1.0 - out**2)

    @staticmethod
    def flops(a: Tensor) -> float:
        return 4.0 * a.numel


def _softmax_last(x: np.ndarray) -> np.ndarray:
    shifted = x.astype(np.float32) - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


class Softmax(Function):
    """Softmax over the last axis; saves the input, recomputes in backward."""

    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor) -> np.ndarray:
        ctx.save_for_backward(a.detach())
        return _softmax_last(a.data).astype(a.dtype)

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        (a,) = ctx.saved_tensors
        p = _softmax_last(a.data)
        g = grad.astype(np.float32)
        dot = (g * p).sum(axis=-1, keepdims=True)
        return (p * (g - dot)).astype(grad.dtype)

    @staticmethod
    def flops(a: Tensor) -> float:
        return 5.0 * a.numel


# --------------------------------------------------------------------------
# Normalization
# --------------------------------------------------------------------------
class LayerNorm(Function):
    """Fused layer normalization over the last axis with affine parameters."""

    @staticmethod
    def forward(ctx: FunctionContext, x: Tensor, gamma: Tensor, beta: Tensor, eps: float) -> np.ndarray:
        data = x.data.astype(np.float32)
        mean = data.mean(axis=-1, keepdims=True)
        var = data.var(axis=-1, keepdims=True)
        rstd = 1.0 / np.sqrt(var + eps)
        xhat = (data - mean) * rstd
        ctx.save_for_backward(x.detach(), gamma.detach())
        ctx.mean, ctx.rstd = mean, rstd
        out = xhat * gamma.data.astype(np.float32) + beta.data.astype(np.float32)
        return out.astype(x.dtype)

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        x, gamma = ctx.saved_tensors
        data = x.data.astype(np.float32)
        g = grad.astype(np.float32)
        xhat = (data - ctx.mean) * ctx.rstd
        dgamma = (g * xhat).sum(axis=tuple(range(g.ndim - 1)))
        dbeta = g.sum(axis=tuple(range(g.ndim - 1)))
        n = data.shape[-1]
        dxhat = g * gamma.data.astype(np.float32)
        dx = (
            dxhat - dxhat.mean(axis=-1, keepdims=True)
            - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
        ) * ctx.rstd
        return (
            dx.astype(grad.dtype),
            dgamma.astype(gamma.dtype),
            dbeta.astype(grad.dtype),
            None,
        )

    @staticmethod
    def flops(x: Tensor, gamma: Tensor, beta: Tensor, eps: float) -> float:
        return 8.0 * x.numel


# --------------------------------------------------------------------------
# Embedding and loss
# --------------------------------------------------------------------------
class Embedding(Function):
    """Row gather from an embedding table."""

    @staticmethod
    def forward(ctx: FunctionContext, weight: Tensor, ids: Tensor) -> np.ndarray:
        ctx.vocab = weight.shape[0]
        ctx.save_for_backward(ids.detach())
        return weight.data[ids.data]

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        (ids,) = ctx.saved_tensors
        dweight = np.zeros((ctx.vocab, grad.shape[-1]), dtype=grad.dtype)
        np.add.at(dweight, ids.data.reshape(-1), grad.reshape(-1, grad.shape[-1]))
        return dweight, None

    @staticmethod
    def flops(weight: Tensor, ids: Tensor) -> float:
        return float(ids.numel)


class CrossEntropy(Function):
    """Fused softmax + NLL, mean-reduced over all tokens.

    Saves the logits (through the pack hook — the largest single activation
    in an LLM step) and the target ids; probabilities are recomputed in
    backward.
    """

    @staticmethod
    def forward(ctx: FunctionContext, logits: Tensor, targets: Tensor) -> np.ndarray:
        probs = _softmax_last(logits.data)
        flat = probs.reshape(-1, probs.shape[-1])
        idx = targets.data.reshape(-1)
        nll = -np.log(np.maximum(flat[np.arange(flat.shape[0]), idx], 1e-20))
        ctx.save_for_backward(logits.detach(), targets.detach())
        ctx.n_tokens = flat.shape[0]
        return np.asarray(nll.mean(), dtype=np.float32)

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        logits, targets = ctx.saved_tensors
        flat = _softmax_last(logits.data).reshape(-1, logits.shape[-1])
        idx = targets.data.reshape(-1)
        flat[np.arange(flat.shape[0]), idx] -= 1.0
        grad_scalar = float(np.ravel(grad)[0])
        dlogits = (flat / ctx.n_tokens * grad_scalar).reshape(logits.shape)
        return dlogits.astype(logits.dtype), None

    @staticmethod
    def flops(logits: Tensor, targets: Tensor) -> float:
        return 5.0 * logits.numel


class Dropout(Function):
    """Inverted dropout.

    The mask is regenerated from the seed in backward instead of being
    saved; the functional engine therefore slightly understates activation
    memory relative to frameworks that materialize masks (the paper-scale
    footprint model in :mod:`repro.analysis.perf_model` includes them).
    """

    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor, p: float, seed: int) -> np.ndarray:
        if not 0 <= p < 1:
            raise ValueError(f"dropout p must be in [0, 1): {p}")
        rng = np.random.default_rng(seed)
        mask = (rng.random(a.shape) >= p).astype(a.dtype) / (1.0 - p)
        ctx.p, ctx.seed, ctx.shape, ctx.dtype = p, seed, a.shape, a.dtype
        return a.data * mask

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        rng = np.random.default_rng(ctx.seed)
        mask = (rng.random(ctx.shape) >= ctx.p).astype(ctx.dtype) / (1.0 - ctx.p)
        return grad * mask, None, None

    @staticmethod
    def flops(a: Tensor, p: float, seed: int) -> float:
        return float(a.numel)


# --------------------------------------------------------------------------
# Fused attention
# --------------------------------------------------------------------------
class FlashAttention(Function):
    """Fused scaled-dot-product attention saving only Q, K, V.

    Shapes: q, k, v are (batch, heads, seq, head_dim); ``causal`` applies a
    lower-triangular mask (decoder self-attention).  Backward recomputes the
    probability matrix, exactly the FlashAttention memory behaviour: the
    O(S^2) intermediates never reach the autograd graph, "eliminating these
    intermediate tensors" (Sec. IV-C).
    """

    @staticmethod
    def _probs(q: np.ndarray, k: np.ndarray, causal: bool, scale: float) -> np.ndarray:
        scores = (q.astype(np.float32) @ np.swapaxes(k.astype(np.float32), -1, -2)) * scale
        if causal:
            s_q, s_k = scores.shape[-2], scores.shape[-1]
            mask = np.triu(np.ones((s_q, s_k), dtype=bool), k=1 + (s_k - s_q))
            scores = np.where(mask, np.float32(-1e9), scores)
        shifted = scores - scores.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=-1, keepdims=True)

    @staticmethod
    def forward(ctx: FunctionContext, q: Tensor, k: Tensor, v: Tensor, causal: bool, scale: float) -> np.ndarray:
        ctx.causal, ctx.scale = causal, scale
        ctx.save_for_backward(q.detach(), k.detach(), v.detach())
        p = FlashAttention._probs(q.data, k.data, causal, scale)
        out = p @ v.data.astype(np.float32)
        return out.astype(q.dtype)

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        q, k, v = ctx.saved_tensors
        p = FlashAttention._probs(q.data, k.data, ctx.causal, ctx.scale)
        g = grad.astype(np.float32)
        dv = np.swapaxes(p, -1, -2) @ g
        dp = g @ np.swapaxes(v.data.astype(np.float32), -1, -2)
        ds = p * (dp - (dp * p).sum(axis=-1, keepdims=True))
        dq = (ds @ k.data.astype(np.float32)) * ctx.scale
        dk = (np.swapaxes(ds, -1, -2) @ q.data.astype(np.float32)) * ctx.scale
        return (
            dq.astype(q.dtype),
            dk.astype(k.dtype),
            dv.astype(v.dtype),
            None,
            None,
        )

    @staticmethod
    def flops(q: Tensor, k: Tensor, v: Tensor, causal: bool, scale: float) -> float:
        b, h, s_q, d = q.shape
        s_k = k.shape[-2]
        return 4.0 * b * h * s_q * s_k * d


# --------------------------------------------------------------------------
# Public functional API
# --------------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    return Add.apply(a, b)


def sub(a: Tensor, b: Tensor) -> Tensor:
    return Sub.apply(a, b)


def mul(a: Tensor, b: Tensor) -> Tensor:
    return Mul.apply(a, b)


def div(a: Tensor, b: Tensor) -> Tensor:
    return Div.apply(a, b)


def scale(a: Tensor, factor: float) -> Tensor:
    return Scale.apply(a, factor)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    return MatMul.apply(a, b)


def reshape(a: Tensor, shape: Sequence[int]) -> Tensor:
    return Reshape.apply(a, tuple(shape))


def transpose(a: Tensor, axis0: int, axis1: int) -> Tensor:
    return Transpose.apply(a, axis0, axis1)


def narrow(a: Tensor, axis: int, start: int, length: int) -> Tensor:
    return Narrow.apply(a, axis, start, length)


def concat(a: Tensor, b: Tensor, axis: int) -> Tensor:
    return Concat.apply(a, b, axis)


def sum_(a: Tensor, axis: Optional[int] = None, keepdims: bool = False) -> Tensor:
    return Sum.apply(a, axis, keepdims)


def mean_(a: Tensor, axis: Optional[int] = None, keepdims: bool = False) -> Tensor:
    return Mean.apply(a, axis, keepdims)


def gelu(a: Tensor) -> Tensor:
    return GELU.apply(a)


def relu(a: Tensor) -> Tensor:
    return ReLU.apply(a)


def tanh(a: Tensor) -> Tensor:
    return Tanh.apply(a)


def softmax(a: Tensor) -> Tensor:
    return Softmax.apply(a)


def layernorm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    return LayerNorm.apply(x, gamma, beta, eps)


def embedding(weight: Tensor, ids: Tensor) -> Tensor:
    return Embedding.apply(weight, ids)


def cross_entropy(logits: Tensor, targets: Tensor) -> Tensor:
    return CrossEntropy.apply(logits, targets)


def dropout(a: Tensor, p: float, seed: int) -> Tensor:
    if p == 0.0:
        return a
    return Dropout.apply(a, p, seed)


def flash_attention(q: Tensor, k: Tensor, v: Tensor, causal: bool = False, scale: Optional[float] = None) -> Tensor:
    if scale is None:
        scale = 1.0 / math.sqrt(q.shape[-1])
    return FlashAttention.apply(q, k, v, causal, scale)
