"""Module system with the four hook kinds SSDTrain uses (Sec. III-B).

- *forward pre hook* — fires at module entry during forward propagation;
  the tensor cache pushes the module onto its scope stack.
- *forward hook* — fires at module exit during forward; the cache pops the
  scope stack.
- *full backward pre hook* — fires when backward propagation **enters** the
  module (gradient reaches the module outputs); the cache prefetches the
  activations of upcoming (earlier) modules here.
- *full backward hook* — fires when backward **exits** the module (gradients
  w.r.t. the module inputs are done); the cache removes the module from all
  activations' scope lists, releasing tensors no longer in use.

Backward hooks are implemented the way PyTorch implements them: identity
*boundary nodes* are spliced around the module's subgraph — one on the
outputs (entry detection) and one on the inputs (exit detection).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor import flags
from repro.tensor.function import Function, FunctionContext
from repro.tensor.storage import Device
from repro.tensor.tensor import Parameter, Tensor

_hook_ids = itertools.count()


class RemovableHandle:
    """Deregistration handle returned by ``register_*_hook``."""

    def __init__(self, registry: Dict[int, Callable]) -> None:
        self.hook_id = next(_hook_ids)
        self._registry = registry

    def remove(self) -> None:
        self._registry.pop(self.hook_id, None)


class _Boundary(Function):
    """Identity op used to observe gradient flow at module boundaries."""

    @staticmethod
    def forward(ctx: FunctionContext, a: Tensor) -> np.ndarray:
        return a.data  # alias: output shares the input storage

    @staticmethod
    def backward(ctx: FunctionContext, grad: np.ndarray):
        return grad


class Module:
    """Base class for layers and models."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        self._forward_pre_hooks: Dict[int, Callable] = {}
        self._forward_hooks: Dict[int, Callable] = {}
        self._backward_pre_hooks: Dict[int, Callable] = {}
        self._backward_hooks: Dict[int, Callable] = {}
        self.training = True

    # ---------------------------------------------------------- registration
    def __setattr__(self, name: str, value: Any) -> None:
        params = self.__dict__.get("_parameters")
        modules = self.__dict__.get("_modules")
        if isinstance(value, Parameter) and params is not None:
            params[name] = value
        elif isinstance(value, Module) and modules is not None:
            modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # --------------------------------------------------------------- queries
    def parameters(self, recurse: bool = True) -> Iterator[Parameter]:
        for _, p in self.named_parameters(recurse=recurse):
            yield p

    def named_parameters(self, prefix: str = "", recurse: bool = True) -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        if recurse:
            for mod_name, module in self._modules.items():
                yield from module.named_parameters(prefix=f"{prefix}{mod_name}.", recurse=True)

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix or "root", self)
        for name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{name}." if prefix else name)

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # ------------------------------------------------------------------ mode
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def to(self, device: Device) -> "Module":
        """Move all parameters to ``device`` in place."""
        for holder in self.modules():
            for name, p in list(holder._parameters.items()):
                if p.device is not device:
                    moved = Parameter(np.array(p.data, copy=True), device=device)
                    holder._parameters[name] = moved
                    object.__setattr__(holder, name, moved)
        return self

    def num_parameters(self) -> int:
        return sum(p.numel for p in self.parameters())

    # ----------------------------------------------------------------- hooks
    def register_forward_pre_hook(self, hook: Callable) -> RemovableHandle:
        """``hook(module, inputs)`` fired before ``forward``."""
        handle = RemovableHandle(self._forward_pre_hooks)
        self._forward_pre_hooks[handle.hook_id] = hook
        return handle

    def register_forward_hook(self, hook: Callable) -> RemovableHandle:
        """``hook(module, inputs, output)`` fired after ``forward``."""
        handle = RemovableHandle(self._forward_hooks)
        self._forward_hooks[handle.hook_id] = hook
        return handle

    def register_full_backward_pre_hook(self, hook: Callable) -> RemovableHandle:
        """``hook(module, grad_output)`` fired when backward enters the module."""
        handle = RemovableHandle(self._backward_pre_hooks)
        self._backward_pre_hooks[handle.hook_id] = hook
        return handle

    def register_full_backward_hook(self, hook: Callable) -> RemovableHandle:
        """``hook(module, grad_input)`` fired when backward exits the module."""
        handle = RemovableHandle(self._backward_hooks)
        self._backward_hooks[handle.hook_id] = hook
        return handle

    # ------------------------------------------------------------------ call
    def forward(self, *args: Any, **kwargs: Any) -> Any:
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        for hook in list(self._forward_pre_hooks.values()):
            hook(self, args)

        need_boundaries = flags.grad_enabled() and (
            self._backward_pre_hooks or self._backward_hooks
        )

        if need_boundaries and self._backward_hooks:
            exit_fired = [False]

            def on_exit(grad: np.ndarray, _module: "Module" = self) -> None:
                if not exit_fired[0]:
                    exit_fired[0] = True
                    for hook in list(_module._backward_hooks.values()):
                        hook(_module, grad)

            args = tuple(
                self._wrap_boundary(a, on_exit) if _needs_boundary(a) else a
                for a in args
            )

        output = self.forward(*args, **kwargs)

        if need_boundaries and self._backward_pre_hooks:
            entry_fired = [False]

            def on_entry(grad: np.ndarray, _module: "Module" = self) -> None:
                if not entry_fired[0]:
                    entry_fired[0] = True
                    for hook in list(_module._backward_pre_hooks.values()):
                        hook(_module, grad)

            if isinstance(output, Tensor):
                output = self._wrap_boundary(output, on_entry, pre=True)
            elif isinstance(output, tuple):
                output = tuple(
                    self._wrap_boundary(o, on_entry, pre=True) if _needs_boundary(o) else o
                    for o in output
                )

        for hook in list(self._forward_hooks.values()):
            hook(self, args, output)
        return output

    @staticmethod
    def _wrap_boundary(t: Tensor, callback: Callable, pre: bool = True) -> Tensor:
        wrapped = _Boundary.apply(t)
        if wrapped.grad_fn is not None:
            # pre_callbacks fire before the (identity) backward runs, which
            # is the earliest observable point of gradient arrival.
            wrapped.grad_fn.pre_callbacks.append(callback)
        return wrapped

    def __repr__(self) -> str:
        child_names = ", ".join(self._modules)
        return f"{type(self).__name__}({child_names})"


def _needs_boundary(value: Any) -> bool:
    return isinstance(value, Tensor) and value.requires_grad


class ModuleList(Module):
    """An indexable list of sub-modules."""

    def __init__(self, modules: Optional[Iterable[Module]] = None) -> None:
        super().__init__()
        self._list: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self._modules[str(len(self._list))] = module
        self._list.append(module)
        return self

    def __len__(self) -> int:
        return len(self._list)

    def __getitem__(self, index: int) -> Module:
        return self._list[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)
