"""Tensor storages with device placement and ledger-backed accounting.

A storage owns a contiguous numpy buffer.  Multiple tensors (views,
transposes) share one storage; SSDTrain's deduplication works because
``get_id()`` attaches its identifier to the storage's ``metadata`` dict
rather than to any particular tensor object.

When the storage lives on a simulated GPU, its bytes are charged to the
GPU's :class:`~repro.device.memory.MemoryLedger` on construction and
released when the storage is garbage-collected — mirroring how the paper
relies on Python GC to reclaim offloaded activations once no reference
remains (Sec. III-B).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Union

import numpy as np

from repro.device.gpu import GPU
from repro.device.memory import MemoryTag


class _CPUDevice:
    """Singleton marker for host memory (not tracked by a ledger)."""

    def __repr__(self) -> str:
        return "device(cpu)"


#: The host device.  GPU devices are :class:`repro.device.gpu.GPU` instances.
cpu = _CPUDevice()

Device = Union[_CPUDevice, GPU]


def is_gpu(device: Device) -> bool:
    """True when ``device`` is a (simulated) GPU."""
    return isinstance(device, GPU)


class UntypedStorage:
    """A reference-counted buffer with device placement and metadata.

    Attributes:
        data: the underlying contiguous numpy array (1-D byte view is not
            required; we keep the natural dtype for simplicity).
        device: ``cpu`` or a :class:`GPU`.
        tag: the memory-ledger tag the bytes are charged to.
        metadata: free-form dict; SSDTrain's ``get_id()`` stores its
            first-seen timestamp/shape here (Sec. III-C1).
    """

    __slots__ = ("data", "device", "tag", "metadata", "_released", "_lock", "__weakref__")

    def __init__(
        self,
        data: np.ndarray,
        device: Device = cpu,
        tag: MemoryTag = MemoryTag.ACTIVATIONS,
    ) -> None:
        if not isinstance(data, np.ndarray):
            raise TypeError(f"storage requires a numpy array, got {type(data)}")
        self.data = np.ascontiguousarray(data)
        self.device = device
        self.tag = tag
        self.metadata: Dict[str, Any] = {}
        self._released = False
        self._lock = threading.Lock()
        if is_gpu(device):
            device.ledger.alloc(self.nbytes, tag)

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def release(self) -> None:
        """Return the bytes to the ledger (idempotent).

        Called from ``__del__``; may run on any thread, including SSDTrain's
        offloading threads when they drop the last reference.
        """
        with self._lock:
            if self._released:
                return
            self._released = True
        if is_gpu(self.device):
            self.device.ledger.free(self.nbytes, self.tag)

    def __del__(self) -> None:
        try:
            self.release()
        except Exception:
            # Interpreter shutdown can tear down the ledger first; losing the
            # final free is harmless there.
            pass

    def __repr__(self) -> str:
        return (
            f"UntypedStorage(nbytes={self.nbytes}, device={self.device}, "
            f"tag={self.tag.value})"
        )
