"""Saved-tensor pack/unpack hooks (the PyTorch mechanism behind Alg. 1).

When an autograd :class:`~repro.tensor.function.Function` saves a tensor for
backward, the tensor is routed through the innermost active *pack hook*, and
whatever the hook returns is what the computation graph actually holds.  At
backward time the stored object is routed through the matching *unpack hook*
to recover the tensor.

SSDTrain's tensor cache is one big pack/unpack hook pair: pack offloads the
activation and returns a lightweight identifier; unpack waits for the
prefetch and returns the reloaded tensor (paper Alg. 1, Fig. 4).

Hooks nest like PyTorch's ``torch.autograd.graph.saved_tensors_hooks``
context manager: the innermost pair wins.  The hook stack is thread-local so
that offloading threads never observe the training thread's hooks.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Tuple

PackHook = Callable[[Any], Any]
UnpackHook = Callable[[Any], Any]

_state = threading.local()


def _stack() -> List[Tuple[PackHook, UnpackHook]]:
    if not hasattr(_state, "stack"):
        _state.stack = []
    return _state.stack


class saved_tensors_hooks:
    """Context manager installing a pack/unpack hook pair.

    Example:
        >>> with saved_tensors_hooks(pack, unpack):
        ...     loss = model(batch)          # forward saves via pack
        >>> loss.backward()                   # unpack runs lazily at use

    Note that like PyTorch, the hooks must be installed while the *forward*
    graph is built; the unpack hook captured at save time is the one used at
    backward time even if the context has exited.
    """

    def __init__(self, pack_hook: PackHook, unpack_hook: UnpackHook) -> None:
        if not callable(pack_hook) or not callable(unpack_hook):
            raise TypeError("pack_hook and unpack_hook must be callable")
        self.pack_hook = pack_hook
        self.unpack_hook = unpack_hook

    def __enter__(self) -> "saved_tensors_hooks":
        _stack().append((self.pack_hook, self.unpack_hook))
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        top = _stack().pop()
        if top != (self.pack_hook, self.unpack_hook):
            raise RuntimeError("saved_tensors_hooks exited out of order")


def current_hooks() -> Tuple[PackHook, UnpackHook]:
    """The innermost active hook pair, or identity hooks when none are set."""
    stack = _stack()
    if stack:
        return stack[-1]
    return (lambda t: t, lambda obj: obj)


class SavedTensor:
    """A tensor slot on the computation graph.

    Holds the *packed* representation plus the unpack hook captured at save
    time.  ``unpack()`` is called exactly once per backward execution; after
    the owning node's backward completes, :meth:`clear` drops the reference so
    the (possibly reloaded) tensor can be garbage-collected promptly — the
    release behaviour Sec. III-B describes.
    """

    __slots__ = ("_packed", "_unpack_hook", "_cleared")

    def __init__(self, tensor: Any) -> None:
        pack, unpack = current_hooks()
        self._packed = pack(tensor)
        self._unpack_hook = unpack
        self._cleared = False

    def unpack(self) -> Any:
        if self._cleared:
            raise RuntimeError(
                "saved tensor accessed after its graph node was freed "
                "(backward already ran; use retain_graph semantics if needed)"
            )
        return self._unpack_hook(self._packed)

    @property
    def packed(self) -> Any:
        """The raw packed object (exposed for tests and diagnostics)."""
        return self._packed

    def clear(self) -> None:
        self._packed = None
        self._unpack_hook = None
        self._cleared = True
