"""In-process pub/sub bus: telemetry out, control in.

The service mode needs exactly two message flows — periodic
:class:`~repro.core.engine.EngineStats` snapshots outward to whoever is
watching, and control commands inward to the engine's step-safe knobs —
and both must keep working while the engine itself is being killed and
restarted.  A tiny topic-keyed bus covers that without any external
broker:

- :meth:`ControlBus.publish` delivers synchronously on the caller's
  thread, in subscription order.  A subscriber that raises never breaks
  the publisher or the other subscribers: the exception is swallowed
  into ``delivery_errors`` (a crashing dashboard must not take the
  service down with it).
- every topic keeps a bounded ring of recent messages
  (:meth:`ControlBus.recent`) so late subscribers — a supervisor
  attaching after the service started, a test asserting on events —
  can inspect what they missed without replay machinery.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Tuple

#: Messages retained per topic for :meth:`ControlBus.recent`.
DEFAULT_HISTORY = 256


@dataclass(frozen=True)
class Subscription:
    """Handle returned by :meth:`ControlBus.subscribe`; pass back to
    :meth:`ControlBus.unsubscribe`."""

    topic: str
    token: int
    callback: Callable[[Any], None] = field(compare=False, repr=False)


class ControlBus:
    """Thread-safe topic pub/sub with contained subscriber failures."""

    def __init__(self, history: int = DEFAULT_HISTORY) -> None:
        if history < 1:
            raise ValueError(f"history must be >= 1: {history}")
        self._lock = threading.Lock()
        self._next_token = 0
        self._subs: Dict[str, List[Subscription]] = {}
        self._history: Dict[str, Deque[Any]] = {}
        self._history_len = history
        self.published = 0
        self.delivered = 0
        self.delivery_errors = 0

    def subscribe(self, topic: str, callback: Callable[[Any], None]) -> Subscription:
        with self._lock:
            sub = Subscription(topic=topic, token=self._next_token, callback=callback)
            self._next_token += 1
            self._subs.setdefault(topic, []).append(sub)
            return sub

    def unsubscribe(self, sub: Subscription) -> bool:
        """Remove one subscription; ``False`` if it was already gone."""
        with self._lock:
            subs = self._subs.get(sub.topic, [])
            for i, existing in enumerate(subs):
                if existing.token == sub.token:
                    del subs[i]
                    return True
            return False

    def publish(self, topic: str, message: Any) -> int:
        """Deliver ``message`` to every current subscriber of ``topic``.

        Returns the number of successful deliveries.  Delivery runs on
        the publisher's thread against a snapshot of the subscriber
        list, so a callback may itself (un)subscribe without deadlock.
        """
        with self._lock:
            subs = tuple(self._subs.get(topic, ()))
            ring = self._history.get(topic)
            if ring is None:
                ring = self._history[topic] = deque(maxlen=self._history_len)
            ring.append(message)
            self.published += 1
        ok = 0
        for sub in subs:
            try:
                sub.callback(message)
                ok += 1
            except Exception:
                with self._lock:
                    self.delivery_errors += 1
        with self._lock:
            self.delivered += ok
        return ok

    def recent(self, topic: str, limit: int = DEFAULT_HISTORY) -> Tuple[Any, ...]:
        """The newest ``limit`` messages published to ``topic``."""
        with self._lock:
            ring = self._history.get(topic)
            if ring is None:
                return ()
            items = tuple(ring)
        return items[-limit:] if limit < len(items) else items

    def subscriber_count(self, topic: str) -> int:
        with self._lock:
            return len(self._subs.get(topic, ()))
