"""The supervised engine service: heartbeat, live control, crash restart.

:class:`EngineService` owns one :class:`~repro.core.engine.Engine` built
from an :class:`~repro.core.engine.EngineConfig` and runs a single
*housekeeping* thread beside it that

- beats a heartbeat timestamp every tick (the liveness signal),
- publishes an :class:`~repro.core.engine.EngineStats` snapshot on the
  telemetry topic,
- applies queued control commands — budget installs, watermark moves,
  tenant QoS changes, paging-strategy swaps — all of which are
  step-safe engine knobs, so **no restart** is needed, and
- runs chunk GC (:meth:`~repro.io.chunkstore.ChunkedTensorStore.compact`)
  on its own cadence for week-long endurance.

:class:`Supervisor` watches from outside, the monitored-liveness shape
of the ROADMAP's exemplars (gridworks-scada actors, Pioreactor jobs): a
stale heartbeat means the engine is wedged or crashed, and the
supervisor reaps it and builds a fresh one with exponential backoff.
With ``durable=True`` the fresh engine's chunk store replays the
manifest journal, so the restart resumes **bit-exact** from disk.  Dead
I/O lanes (from :class:`~repro.io.scheduler.LaneHealthTracker`) degrade
the service without a restart — the engine's own failover already
reroutes traffic; the state just needs to say so.

State machine (see docs/architecture.md §11)::

    STOPPED -> STARTING -> HEALTHY <-> DEGRADED
                   ^          |            |
                   |          v            v
                   +------ RESTARTING <----+     (supervisor-driven)
    any state -> STOPPED                         (stop() only)
    HEALTHY/DEGRADED/RESTARTING -> FAILED        (crash-loop escalation)

``FAILED`` is terminal: the supervisor's crash-loop breaker
(``max_restarts`` within ``restart_window_s``) escalates an engine that
dies on every start instead of restarting it forever; the final state
event on the bus carries the reason.  The service also publishes every
SSD circuit-breaker transition (``event: "breaker"``) and, each
housekeeping tick, probes a tripped breaker so a healed device is
resurrected without operator action (architecture §12).
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.core.engine import Engine, EngineConfig, build_engine
from repro.service.bus import ControlBus

#: Bus topics (outward telemetry, inward control, lifecycle events).
TOPIC_TELEMETRY = "engine.telemetry"
TOPIC_CONTROL = "engine.control"
TOPIC_EVENTS = "engine.events"


class ServiceState(enum.Enum):
    STARTING = "starting"
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    RESTARTING = "restarting"
    STOPPED = "stopped"
    #: Terminal: the supervisor gave up on a crash-looping engine.
    FAILED = "failed"


class EngineService:
    """One supervised engine: lifecycle + heartbeat + live control.

    Args:
        config: engine configuration; ``durable=True`` makes restarts
            recover the chunk store from its manifest.
        bus: the :class:`~repro.service.bus.ControlBus` to attach to
            (a private one is created when ``None``).
        heartbeat_interval_s: housekeeping tick period.
        gc_interval_s: how often the tick also runs chunk compaction
            (``None`` disables background GC).
        gc_dead_ratio: dead-byte ratio handed to ``compact``.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        config: EngineConfig,
        bus: Optional[ControlBus] = None,
        heartbeat_interval_s: float = 0.05,
        gc_interval_s: Optional[float] = 0.5,
        gc_dead_ratio: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        if heartbeat_interval_s <= 0:
            raise ValueError(
                f"heartbeat_interval_s must be positive: {heartbeat_interval_s}"
            )
        config.validate()
        self.config = config
        self.bus = bus if bus is not None else ControlBus()
        self.heartbeat_interval_s = heartbeat_interval_s
        self.gc_interval_s = gc_interval_s
        self.gc_dead_ratio = gc_dead_ratio
        self._clock = clock
        self._lock = threading.RLock()
        self.engine: Optional[Engine] = None
        self.state = ServiceState.STOPPED
        #: Bumped on every (re)build of the engine — telemetry carries it
        #: so consumers can tell restarts apart.
        self.generation = 0
        self.restarts = 0
        self.controls_applied = 0
        self.gc_reclaimed_total = 0
        #: Optional :class:`repro.serve.paging.PagingPolicy` whose
        #: strategy the ``set_paging_strategy`` control swaps live.
        self.paging_policy = None
        self._wedged = False
        self._stop_tick = threading.Event()
        self._tick_thread: Optional[threading.Thread] = None
        self._last_beat: Optional[float] = None
        self._last_gc: float = 0.0
        self._pending: Deque[Dict[str, Any]] = deque()
        self._control_sub = self.bus.subscribe(TOPIC_CONTROL, self._on_control)

    # ---------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Build the engine and start housekeeping (idempotent)."""
        with self._lock:
            if self.engine is not None:
                return
            self._set_state(ServiceState.STARTING)
            self._spawn_engine()
            self._set_state(ServiceState.HEALTHY)

    def _spawn_engine(self) -> None:
        """Build a fresh engine + housekeeping thread (lock held)."""
        self.engine = build_engine(self.config)
        self.generation += 1
        set_listener = getattr(self.engine.offloader, "set_breaker_listener", None)
        if set_listener is not None:
            set_listener(self._on_breaker_event)
        self._wedged = False
        self._stop_tick = threading.Event()
        self._last_beat = self._clock()
        self._last_gc = self._last_beat
        self._tick_thread = threading.Thread(
            target=self._housekeeping,
            args=(self._stop_tick,),
            name=f"engine-service-gen{self.generation}",
        )
        self._tick_thread.start()

    def stop(self) -> None:
        """Shut the engine down for good (idempotent, leak-free)."""
        with self._lock:
            if self.state is ServiceState.STOPPED and self.engine is None:
                return
            stop_tick, thread = self._stop_tick, self._tick_thread
            engine, self.engine = self.engine, None
            self._tick_thread = None
            self._set_state(ServiceState.STOPPED)
        stop_tick.set()
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5)
        if engine is not None:
            engine.shutdown()

    def fail(self, reason: str = "") -> None:
        """Terminal escalation: tear the engine down and mark the
        service FAILED (no further restarts).

        The supervisor's crash-loop breaker calls this when restarts
        stop helping; the final ``state`` event on the bus carries the
        reason.  Only :meth:`stop` moves the service out of FAILED.
        """
        with self._lock:
            if self.state in (ServiceState.STOPPED, ServiceState.FAILED):
                return
            stop_tick, thread = self._stop_tick, self._tick_thread
            engine, self.engine = self.engine, None
            self._tick_thread = None
            self._set_state(ServiceState.FAILED, reason=reason)
        stop_tick.set()
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5)
        if engine is not None:
            try:
                engine.shutdown()
            except Exception:
                pass  # reaping a crash-looping engine must not block failing

    def restart(self, reason: str = "") -> None:
        """Reap the current engine and build a fresh one.

        The supervisor's recovery action.  The old engine's teardown is
        best-effort (it may be the thing that crashed); the leak-free
        ``Engine.shutdown`` satellite is what makes reaping in-process
        possible at all.  A ``durable`` store then replays its manifest
        inside ``build_engine``, restoring the index bit-exact.
        """
        with self._lock:
            if self.state in (ServiceState.STOPPED, ServiceState.FAILED):
                return
            self._set_state(ServiceState.RESTARTING, reason=reason)
            stop_tick, thread = self._stop_tick, self._tick_thread
            engine, self.engine = self.engine, None
            self._tick_thread = None
        stop_tick.set()
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5)
        if engine is not None:
            try:
                engine.shutdown()
            except Exception:
                pass  # reaping a crashed engine must never block recovery
        with self._lock:
            # stop() or fail() raced us: respect the terminal state.
            if self.state in (ServiceState.STOPPED, ServiceState.FAILED):
                return
            self._spawn_engine()
            self.restarts += 1
            self._set_state(ServiceState.HEALTHY, reason="restarted")

    def kill(self) -> None:
        """Simulate an engine crash: wedge housekeeping mid-flight.

        The housekeeping thread exits without any teardown on its next
        tick, the heartbeat freezes, and nothing else is told — exactly
        the signature the supervisor must detect and recover from.
        """
        with self._lock:
            self._wedged = True

    def __enter__(self) -> "EngineService":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ----------------------------------------------------------------- health
    def heartbeat_age(self) -> Optional[float]:
        """Seconds since the housekeeping thread last beat (None = never)."""
        with self._lock:
            last = self._last_beat
        return None if last is None else self._clock() - last

    def dead_lanes(self) -> Tuple[str, ...]:
        """Dead I/O lanes of the current engine (empty before any I/O)."""
        with self._lock:
            engine = self.engine
        if engine is None or not engine.scheduler_started:
            return ()
        return engine.scheduler.health.dead_lanes()

    def mark_degraded(self, reason: str = "") -> None:
        with self._lock:
            if self.state is ServiceState.HEALTHY:
                self._set_state(ServiceState.DEGRADED, reason=reason)

    def mark_healthy(self, reason: str = "") -> None:
        with self._lock:
            if self.state is ServiceState.DEGRADED:
                self._set_state(ServiceState.HEALTHY, reason=reason)

    def _on_breaker_event(
        self, name: str, old: str, new: str, reason: str
    ) -> None:
        """Publish an SSD circuit-breaker transition on the event topic.

        Fired by the offloader's breakers outside their locks; breaker
        names scope the event (``"ssd"`` global, ``"ssd/<tenant>"``)."""
        self.bus.publish(
            TOPIC_EVENTS,
            {
                "event": "breaker",
                "name": name,
                "from": old,
                "to": new,
                "reason": reason,
                "generation": self.generation,
            },
        )

    def _set_state(self, state: ServiceState, reason: str = "") -> None:
        previous, self.state = self.state, state
        self.bus.publish(
            TOPIC_EVENTS,
            {
                "event": "state",
                "from": previous.value,
                "to": state.value,
                "generation": self.generation,
                "reason": reason,
            },
        )

    # ---------------------------------------------------------------- controls
    def _on_control(self, message: Any) -> None:
        if not isinstance(message, dict) or "cmd" not in message:
            raise ValueError(f"control messages are dicts with a 'cmd': {message!r}")
        with self._lock:
            self._pending.append(message)

    def apply_pending(self) -> int:
        """Apply every queued control command now; returns how many ran OK.

        Normally called by the housekeeping tick (between heartbeats, so
        every knob lands at a step boundary); exposed for deterministic
        tests and for callers that cannot wait a tick.
        """
        ok = 0
        while True:
            with self._lock:
                if not self._pending:
                    return ok
                message = self._pending.popleft()
                engine = self.engine
            error = None
            if engine is None:
                error = "no engine"
            else:
                try:
                    self._apply_one(engine, message)
                except Exception as exc:  # a bad command must not wedge ticks
                    error = f"{type(exc).__name__}: {exc}"
            if error is None:
                ok += 1
                with self._lock:
                    self.controls_applied += 1
            self.bus.publish(
                TOPIC_EVENTS,
                {
                    "event": "control",
                    "cmd": message.get("cmd"),
                    "ok": error is None,
                    "error": error,
                    "generation": self.generation,
                },
            )

    def _apply_one(self, engine: Engine, message: Dict[str, Any]) -> None:
        cmd = message["cmd"]
        if cmd == "install_budget":
            engine.policy.install_budget(int(message["bytes"]))
        elif cmd == "set_free_watermark":
            set_watermark = getattr(engine.offloader, "set_free_watermark", None)
            if set_watermark is None:
                raise ValueError("engine target has no CPU-tier watermark")
            set_watermark(int(message["bytes"]))
            apply_watermark = getattr(engine.offloader, "apply_watermark", None)
            if apply_watermark is not None:
                apply_watermark()
        elif cmd == "set_tenant":
            if engine.tenants is None:
                raise ValueError("engine has no tenant registry")
            kwargs = {
                key: value
                for key, value in message.items()
                if key not in ("cmd", "name")
            }
            engine.tenants.register(str(message["name"]), **kwargs)
        elif cmd == "set_paging_strategy":
            if self.paging_policy is None:
                raise ValueError("no paging policy attached to the service")
            from repro.serve.paging import make_strategy  # deferred: serve optional

            kwargs = dict(message.get("kwargs", {}))
            self.paging_policy.strategy = make_strategy(
                str(message["name"]), **kwargs
            )
        elif cmd == "compact":
            self._run_gc(engine, force=True)
        else:
            raise ValueError(f"unknown control command {cmd!r}")

    # ------------------------------------------------------------ housekeeping
    def _housekeeping(self, stop_tick: threading.Event) -> None:
        while not stop_tick.wait(self.heartbeat_interval_s):
            with self._lock:
                if self._wedged:
                    return  # simulated crash: die without a trace
                self._last_beat = self._clock()
                engine = self.engine
            if engine is None:
                return
            self.apply_pending()
            try:
                stats = engine.stats()
            except Exception:
                continue  # a mid-restart snapshot race is not a tick failure
            self.bus.publish(
                TOPIC_TELEMETRY,
                {"generation": self.generation, "stats": stats},
            )
            # Self-healing: canary a tripped SSD breaker each tick (the
            # breaker's own backoff + single-flight gating make this
            # cheap), so a healed device is resurrected automatically.
            probe = getattr(engine.offloader, "maybe_probe_ssd", None)
            if probe is not None:
                try:
                    probe()
                except Exception:
                    pass  # a probe bug must never wedge housekeeping
            # An ENOSPC-rerouted write wants GC *now*, not at the
            # cadence timer: the hint jumps the queue.
            store = engine.chunk_store
            consume_hint = getattr(store, "consume_compaction_hint", None)
            if consume_hint is not None and consume_hint():
                try:
                    self._run_gc(engine)
                except OSError:
                    pass  # device still full: the next hint retries
            if self.gc_interval_s is not None:
                now = self._clock()
                if now - self._last_gc >= self.gc_interval_s:
                    self._last_gc = now
                    self._run_gc(engine)

    def _run_gc(self, engine: Engine, force: bool = False) -> int:
        store = engine.chunk_store
        if store is None:
            if force:
                raise ValueError("engine has no chunked store to compact")
            return 0
        kwargs = {}
        if self.gc_dead_ratio is not None:
            kwargs["max_dead_ratio"] = self.gc_dead_ratio
        reclaimed = store.compact(**kwargs)
        if reclaimed:
            with self._lock:
                self.gc_reclaimed_total += reclaimed
            self.bus.publish(
                TOPIC_EVENTS,
                {
                    "event": "gc",
                    "reclaimed_bytes": reclaimed,
                    "generation": self.generation,
                },
            )
        return reclaimed


class Supervisor:
    """Watches an :class:`EngineService`; restarts it when it wedges.

    Detection is purely observational — stale heartbeat (wedged or
    crashed housekeeping) triggers a restart; dead I/O lanes flip the
    state to ``DEGRADED`` (and back) without one, since tier failover
    already reroutes the traffic.  Consecutive restarts back off
    exponentially (``backoff_base_s * 2**n`` capped at
    ``backoff_max_s``); a quiet period of ``backoff_reset_s`` resets
    the streak.

    Crash-loop escalation: when ``max_restarts`` is set and that many
    restarts land inside a sliding ``restart_window_s``, restarting has
    demonstrably stopped helping — the supervisor publishes a final
    ``supervisor-escalate`` event and moves the service to the terminal
    ``FAILED`` state instead of burning restarts forever.
    """

    def __init__(
        self,
        service: EngineService,
        heartbeat_timeout_s: float = 0.5,
        poll_interval_s: float = 0.02,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        backoff_reset_s: float = 5.0,
        max_restarts: Optional[int] = None,
        restart_window_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be positive: {heartbeat_timeout_s}"
            )
        if max_restarts is not None and max_restarts < 1:
            raise ValueError(f"max_restarts must be >= 1: {max_restarts}")
        if restart_window_s <= 0:
            raise ValueError(
                f"restart_window_s must be positive: {restart_window_s}"
            )
        self.service = service
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.poll_interval_s = poll_interval_s
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.backoff_reset_s = backoff_reset_s
        self.max_restarts = max_restarts
        self.restart_window_s = restart_window_s
        self._clock = clock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.restarts_triggered = 0
        self.escalations = 0
        self._streak = 0
        self._last_restart: Optional[float] = None
        #: Restart timestamps inside the sliding escalation window.
        self._restart_times: Deque[float] = deque()

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._watch, name="engine-supervisor")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5)

    def next_backoff_s(self) -> float:
        """The delay the *next* restart would wait (exponential, capped)."""
        return min(self.backoff_base_s * (2 ** self._streak), self.backoff_max_s)

    def __enter__(self) -> "Supervisor":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def _watch(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            service = self.service
            state = service.state
            if state not in (ServiceState.HEALTHY, ServiceState.DEGRADED):
                continue
            now = self._clock()
            if (
                self._last_restart is not None
                and now - self._last_restart >= self.backoff_reset_s
            ):
                self._streak = 0
            age = service.heartbeat_age()
            if age is not None and age > self.heartbeat_timeout_s:
                if self.max_restarts is not None:
                    cutoff = now - self.restart_window_s
                    while self._restart_times and self._restart_times[0] < cutoff:
                        self._restart_times.popleft()
                    if len(self._restart_times) >= self.max_restarts:
                        # Restarting has stopped helping: escalate to
                        # the terminal FAILED state instead of looping.
                        count = len(self._restart_times)
                        service.bus.publish(
                            TOPIC_EVENTS,
                            {
                                "event": "supervisor-escalate",
                                "restarts_in_window": count,
                                "window_s": self.restart_window_s,
                                "heartbeat_age_s": age,
                            },
                        )
                        self.escalations += 1
                        service.fail(
                            reason=(
                                f"crash loop: {count} restarts in "
                                f"{self.restart_window_s:g}s"
                            )
                        )
                        continue
                delay = self.next_backoff_s()
                service.bus.publish(
                    TOPIC_EVENTS,
                    {
                        "event": "supervisor-restart",
                        "heartbeat_age_s": age,
                        "backoff_s": delay,
                        "streak": self._streak,
                    },
                )
                if self._stop.wait(delay):
                    return
                service.restart(reason=f"heartbeat stale for {age:.3f}s")
                self.restarts_triggered += 1
                self._streak += 1
                self._last_restart = self._clock()
                self._restart_times.append(self._last_restart)
                continue
            dead = service.dead_lanes()
            if dead and state is ServiceState.HEALTHY:
                service.mark_degraded(reason=f"dead lanes: {','.join(dead)}")
            elif not dead and state is ServiceState.DEGRADED:
                service.mark_healthy(reason="lanes recovered")
