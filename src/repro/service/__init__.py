"""Long-running service mode: a supervised, live-controllable engine.

Everything below :mod:`repro.core.engine` models one run that dies with
the process.  The service layer turns the engine into an always-on
component, the shape named in the ROADMAP (supervised background jobs
with pub/sub state, à la Pioreactor's leader/worker cluster or
gridworks-scada's monitored actors):

- :class:`~repro.service.bus.ControlBus` — in-process pub/sub;
  telemetry ticks flow out, control commands flow in.
- :class:`~repro.service.service.EngineService` — wraps
  :func:`~repro.core.engine.build_engine` with a heartbeat/housekeeping
  thread, a health state machine
  (``STARTING/HEALTHY/DEGRADED/RESTARTING/STOPPED``), live control
  application (budget, watermark, tenant QoS, paging strategy — all
  step-safe, no restart) and periodic chunk GC.
- :class:`~repro.service.service.Supervisor` — watches heartbeats and
  lane health, restarts a wedged or crashed engine with exponential
  backoff; a ``durable`` engine config replays the chunk store's
  manifest on the way back up, so the restart is bit-exact.
- :class:`~repro.service.workload.SyntheticWorkload` — a deterministic,
  idempotent store/delete/load driver used by ``repro serve`` and the
  crash-recovery tests.
"""

from repro.service.bus import ControlBus, Subscription
from repro.service.service import (
    EngineService,
    ServiceState,
    Supervisor,
    TOPIC_CONTROL,
    TOPIC_EVENTS,
    TOPIC_TELEMETRY,
)
from repro.service.workload import SyntheticWorkload

__all__ = [
    "ControlBus",
    "EngineService",
    "ServiceState",
    "Subscription",
    "Supervisor",
    "SyntheticWorkload",
    "TOPIC_CONTROL",
    "TOPIC_EVENTS",
    "TOPIC_TELEMETRY",
]
