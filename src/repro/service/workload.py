"""Deterministic synthetic workload for the service demo + crash tests.

The ``repro serve`` acceptance story needs a workload whose result is
**bit-exact reproducible** across an engine kill/restart — a property a
real training loop only has if every byte of persistent state survives
the crash.  This driver is built so that all persistent state lives in
the engine's (durable) store:

- step ``s`` stores ``tensors_per_step`` arrays derived purely from
  ``(seed, s, k)`` — re-running a step after a restart overwrites the
  same tensors with the same bytes (idempotent);
- tensors have **two lifetime classes** (even ``k`` lives
  ``retain_steps`` steps, odd ``k`` twice that), mirroring the mixed
  activation lifetimes of real steps.  Because each step's tensors
  flush together into one chunk, the chunk turns *half*-dead when the
  short-lived half is released — exactly the GC/compaction food the
  endurance path needs (whole-dead chunks are reclaimed by refcount
  alone and never exercise the compactor);
- the step "loss" is a float64 reduction over **every retained tensor
  read back from the engine**, so it covers bytes written several steps
  ago: if manifest replay corrupted or lost anything, the loss of the
  first post-restart step diverges.

Steps end with a chunk-store flush, making each completed step durable
(the crash-recovery tests hard-drop the index *between* steps and
expect everything already stepped over to replay bit-exact).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.engine import Engine
from repro.core.ids import TensorID


class SyntheticWorkload:
    """Idempotent store/release/load step driver (see module docstring).

    Args:
        seed: base seed; two workloads with equal parameters produce
            byte-identical tensors and therefore identical losses.
        tensors_per_step: arrays stored per step.
        tensor_elems: float32 elements per array.
        retain_steps: short lifetime class (even ``k``); odd ``k``
            tensors live ``2 * retain_steps`` steps.
    """

    def __init__(
        self,
        seed: int = 0,
        tensors_per_step: int = 4,
        tensor_elems: int = 256,
        retain_steps: int = 2,
    ) -> None:
        if tensors_per_step < 1 or tensor_elems < 1 or retain_steps < 1:
            raise ValueError("workload dimensions must be >= 1")
        self.seed = seed
        self.tensors_per_step = tensors_per_step
        self.tensor_elems = tensor_elems
        self.retain_steps = retain_steps

    def lifetime(self, k: int) -> int:
        """Steps tensor ``k`` of any step stays live before release."""
        return self.retain_steps if k % 2 == 0 else 2 * self.retain_steps

    def tensor_id(self, step: int, k: int) -> TensorID:
        """Deterministic id — the same (step, k) maps to the same tensor
        across runs and restarts (stamps are synthetic, not clock-based)."""
        return TensorID(
            stamp=step * self.tensors_per_step + k, shape=(self.tensor_elems,)
        )

    def data(self, step: int, k: int) -> np.ndarray:
        rng = np.random.default_rng(
            (self.seed, step, k)  # seed sequences hash tuples deterministically
        )
        return rng.standard_normal(self.tensor_elems, dtype=np.float32)

    def run_step(self, engine: Engine, step: int) -> float:
        """Run one step; returns its loss (a float64 reduction).

        Safe to re-run after a supervised restart: stores overwrite
        bit-identical bytes and the release of an already-released
        tensor is a no-op.
        """
        off = engine.offloader
        for k in range(self.tensors_per_step):
            off.store(self.tensor_id(step, k), self.data(step, k))
        for k in range(self.tensors_per_step):
            dead_step = step - self.lifetime(k)
            if dead_step >= 0:
                off.release(self.tensor_id(dead_step, k))
        total = np.float64(0.0)
        for live_step, k in self.live_pairs(step):
            loaded = off.load(
                self.tensor_id(live_step, k), (self.tensor_elems,), np.float32
            )
            total += np.sum(loaded, dtype=np.float64)
        store = engine.chunk_store
        if store is not None:
            store.flush()  # step boundary = durability boundary
        return float(total)

    def run(
        self, engine: Engine, steps: int, start_step: int = 0
    ) -> List[float]:
        """Run ``steps`` consecutive steps; returns their losses."""
        return [self.run_step(engine, s) for s in range(start_step, start_step + steps)]

    def live_pairs(self, last_step: int) -> List[tuple]:
        """Every ``(step, k)`` still retained after ``last_step`` ran."""
        pairs = []
        first = max(0, last_step - 2 * self.retain_steps + 1)
        for s in range(first, last_step + 1):
            for k in range(self.tensors_per_step):
                if s > last_step - self.lifetime(k):
                    pairs.append((s, k))
        return pairs

    def live_ids(self, last_step: int) -> List[TensorID]:
        """Every tensor id still retained after ``last_step`` ran."""
        return [self.tensor_id(s, k) for s, k in self.live_pairs(last_step)]
