"""Simulated hardware substrate: GPUs, PCIe links, and NVMe SSDs.

The paper evaluates SSDTrain on A100 GPUs attached to Intel Optane P5800X
SSDs.  This package provides the stand-ins used by the reproduction:

- :class:`~repro.device.memory.MemoryLedger` — byte-accurate, tag-aware
  memory accounting (the "GPU memory" whose activation peak Fig. 6 reports).
- :class:`~repro.device.gpu.GPU` — a device with a memory ledger, a kernel
  timing model, and FLOP counters.
- :class:`~repro.device.pcie.PCIeLink` — bandwidth/latency model of the
  host<->device and device<->SSD interconnect.
- :class:`~repro.device.ssd.SSD` / :class:`~repro.device.ssd.RAID0Array` —
  NVMe SSD model including the endurance accounting of Sec. III-D.
"""

from repro.device.clock import VirtualClock
from repro.device.memory import MemoryLedger, MemoryTag, OutOfMemoryError
from repro.device.gpu import GPU, GPUSpec, KernelTimingModel
from repro.device.pcie import PCIeGeneration, PCIeLink
from repro.device.ssd import (
    RAID0Array,
    SSD,
    SSDEnduranceModel,
    SSDSpec,
)

__all__ = [
    "VirtualClock",
    "MemoryLedger",
    "MemoryTag",
    "OutOfMemoryError",
    "GPU",
    "GPUSpec",
    "KernelTimingModel",
    "PCIeGeneration",
    "PCIeLink",
    "SSD",
    "SSDSpec",
    "SSDEnduranceModel",
    "RAID0Array",
]
