"""Tag-aware GPU memory accounting.

SSDTrain's headline metric is the *activation memory peak* during forward and
backward propagation (Fig. 6b, Fig. 7).  The :class:`MemoryLedger` tracks
live bytes per :class:`MemoryTag` and maintains running peaks, so both the
functional engine (real numpy buffers) and the discrete-event simulator can
report the same statistic.

The ledger is thread-safe: SSDTrain's offloading threads release activation
memory concurrently with the main thread allocating new activations.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Dict, Optional


class MemoryTag(str, enum.Enum):
    """Classification of GPU memory use, following Sec. II-B of the paper."""

    ACTIVATIONS = "activations"
    WEIGHTS = "weights"
    GRADIENTS = "gradients"
    OPTIMIZER = "optimizer"
    WORKSPACE = "workspace"
    OTHER = "other"


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation would exceed the device capacity."""


@dataclass
class _TagStats:
    current: int = 0
    peak: int = 0
    total_allocated: int = 0
    alloc_count: int = 0
    free_count: int = 0


@dataclass
class MemorySnapshot:
    """Point-in-time view of ledger state, safe to hold across mutations."""

    current_by_tag: Dict[MemoryTag, int]
    peak_by_tag: Dict[MemoryTag, int]
    current_total: int
    peak_total: int

    def current(self, tag: MemoryTag) -> int:
        return self.current_by_tag.get(tag, 0)

    def peak(self, tag: MemoryTag) -> int:
        return self.peak_by_tag.get(tag, 0)


class MemoryLedger:
    """Byte-accurate memory accounting with per-tag peaks.

    Args:
        capacity_bytes: device capacity; ``None`` disables OOM checking
            (useful for what-if sweeps that intentionally exceed 40 GB).
        name: label used in error messages and reprs.
    """

    def __init__(self, capacity_bytes: Optional[int] = None, name: str = "gpu0") -> None:
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._lock = threading.Lock()
        self._stats: Dict[MemoryTag, _TagStats] = {tag: _TagStats() for tag in MemoryTag}
        self._current_total = 0
        self._peak_total = 0

    # ------------------------------------------------------------------ alloc
    def alloc(self, nbytes: int, tag: MemoryTag = MemoryTag.OTHER) -> None:
        """Record an allocation of ``nbytes`` under ``tag``.

        Raises:
            OutOfMemoryError: when a capacity is configured and exceeded.
            ValueError: on negative sizes.
        """
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        with self._lock:
            new_total = self._current_total + nbytes
            if self.capacity_bytes is not None and new_total > self.capacity_bytes:
                raise OutOfMemoryError(
                    f"{self.name}: allocating {nbytes} bytes under {tag.value} would use "
                    f"{new_total} of {self.capacity_bytes} bytes"
                )
            stats = self._stats[tag]
            stats.current += nbytes
            stats.total_allocated += nbytes
            stats.alloc_count += 1
            stats.peak = max(stats.peak, stats.current)
            self._current_total = new_total
            self._peak_total = max(self._peak_total, new_total)

    def free(self, nbytes: int, tag: MemoryTag = MemoryTag.OTHER) -> None:
        """Record a free of ``nbytes`` under ``tag``.

        Raises:
            ValueError: when freeing more than is live under the tag, which
                indicates an accounting bug in the caller.
        """
        if nbytes < 0:
            raise ValueError(f"negative free: {nbytes}")
        with self._lock:
            stats = self._stats[tag]
            if nbytes > stats.current:
                raise ValueError(
                    f"{self.name}: freeing {nbytes} bytes under {tag.value} but only "
                    f"{stats.current} bytes are live"
                )
            stats.current -= nbytes
            stats.free_count += 1
            self._current_total -= nbytes

    # ------------------------------------------------------------------ query
    def current(self, tag: Optional[MemoryTag] = None) -> int:
        """Live bytes under ``tag``, or across all tags when ``tag is None``."""
        with self._lock:
            if tag is None:
                return self._current_total
            return self._stats[tag].current

    def peak(self, tag: Optional[MemoryTag] = None) -> int:
        """Peak bytes observed under ``tag`` (or total peak)."""
        with self._lock:
            if tag is None:
                return self._peak_total
            return self._stats[tag].peak

    def total_allocated(self, tag: Optional[MemoryTag] = None) -> int:
        """Cumulative bytes ever allocated (never decreases)."""
        with self._lock:
            if tag is None:
                return sum(s.total_allocated for s in self._stats.values())
            return self._stats[tag].total_allocated

    def snapshot(self) -> MemorySnapshot:
        """Return a consistent snapshot of current and peak usage."""
        with self._lock:
            return MemorySnapshot(
                current_by_tag={tag: s.current for tag, s in self._stats.items()},
                peak_by_tag={tag: s.peak for tag, s in self._stats.items()},
                current_total=self._current_total,
                peak_total=self._peak_total,
            )

    # ----------------------------------------------------------------- manage
    def reset_peak(self, tag: Optional[MemoryTag] = None) -> None:
        """Reset peaks to current usage (one tag, or all tags and the total).

        Fig. 6 measures the peak *during forward and backward propagation*;
        the trainer calls this at step boundaries to scope the measurement.
        """
        with self._lock:
            if tag is None:
                for stats in self._stats.values():
                    stats.peak = stats.current
                self._peak_total = self._current_total
            else:
                self._stats[tag].peak = self._stats[tag].current

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"MemoryLedger({self.name}, current={snap.current_total}, "
            f"peak={snap.peak_total}, capacity={self.capacity_bytes})"
        )
