"""NVMe SSD model with endurance accounting (paper Sec. II-C and III-D).

The lifespan argument in the paper rests on three observations:

1. SSD endurance ratings use the JESD218/219 method — random writes after
   tough preconditioning — with a write amplification factor (WAF) around
   2.5, while activation offloading issues large sequential writes with
   WAF ~1.  Sequential workloads therefore get ~2.5x the rated writes.
2. Activations only need to survive until backward propagation (seconds),
   so the 3-year data-retention requirement can be relaxed; NAND gets ~86x
   the program/erase cycles at a 1-day retention target.
3. Lifespan is then ``t_life = S_endurance * t_step / S_activations``.

:class:`SSDEnduranceModel` encodes exactly this arithmetic;
:class:`SSD` adds runtime wear tracking for the functional engine; and
:class:`RAID0Array` models the two RAID0 arrays of the evaluation machine
(3x and 4x Intel Optane P5800X, each dedicated to one A100).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional

SECONDS_PER_YEAR = 365.25 * 24 * 3600


@dataclass(frozen=True)
class SSDSpec:
    """Static description of an SSD model.

    Attributes:
        name: model name.
        capacity_bytes: usable capacity.
        write_bw_gbps: sequential write bandwidth, GB/s.
        read_bw_gbps: sequential read bandwidth, GB/s.
        write_latency_s: per-IO latency for large sequential writes.
        read_latency_s: per-IO latency for large sequential reads.
        rated_writes_bytes: lifetime host writes per the vendor endurance
            rating (TBW / DWPD x capacity x warranty), under JESD testing.
    """

    name: str
    capacity_bytes: int
    write_bw_gbps: float
    read_bw_gbps: float
    write_latency_s: float
    read_latency_s: float
    rated_writes_bytes: float

    @property
    def write_bw(self) -> float:
        return self.write_bw_gbps * 1e9

    @property
    def read_bw(self) -> float:
        return self.read_bw_gbps * 1e9


#: Intel Optane P5800X 1.6 TB (Table II).  Optane endurance is rated at
#: 100 DWPD over 5 years: 1.6 TB x 100 x 365 x 5.
INTEL_OPTANE_P5800X_1600GB = SSDSpec(
    name="Intel-Optane-P5800X-1.6TB",
    capacity_bytes=1600 * 10**9,
    write_bw_gbps=6.1,
    read_bw_gbps=7.2,
    write_latency_s=10e-6,
    read_latency_s=10e-6,
    rated_writes_bytes=1600 * 10**9 * 100 * 365 * 5,
)

#: Samsung 980 PRO 1 TB (used in the Fig. 5 viability projection):
#: 600 TBW rating, ~5 GB/s sequential write.
SAMSUNG_980_PRO_1TB = SSDSpec(
    name="Samsung-980-PRO-1TB",
    capacity_bytes=1000 * 10**9,
    write_bw_gbps=5.0,
    read_bw_gbps=7.0,
    write_latency_s=30e-6,
    read_latency_s=30e-6,
    rated_writes_bytes=600 * 10**12,
)


@dataclass(frozen=True)
class SSDEnduranceModel:
    """Endurance projection per Sec. III-D.

    Attributes:
        jesd_waf: write amplification assumed by the JESD rating (2.5).
        workload_waf: write amplification of large sequential activation
            writes (~1).
        retention_relaxation: PE-cycle multiplier from relaxing retention
            from 3 years to 1 day (86x, after [55]-[58]).
    """

    jesd_waf: float = 2.5
    workload_waf: float = 1.0
    retention_relaxation: float = 86.0

    def __post_init__(self) -> None:
        if self.jesd_waf <= 0 or self.workload_waf <= 0:
            raise ValueError("WAF values must be positive")
        if self.retention_relaxation < 1:
            raise ValueError("retention_relaxation must be >= 1")

    def effective_endurance_bytes(self, spec: SSDSpec) -> float:
        """Lifetime *host* writes available to the offloading workload."""
        sequential_bonus = self.jesd_waf / self.workload_waf
        return spec.rated_writes_bytes * sequential_bonus * self.retention_relaxation

    def lifespan_years(
        self,
        spec: SSDSpec,
        activation_bytes_per_step: float,
        step_time_s: float,
        num_ssds: int = 1,
    ) -> float:
        """Projected lifespan: ``S_endurance * t_step / S_activations``.

        Args:
            activation_bytes_per_step: bytes offloaded per training step
                (per GPU) across the whole array.
            step_time_s: training step time.
            num_ssds: SSDs in the per-GPU array (writes stripe evenly).
        """
        if activation_bytes_per_step < 0 or step_time_s <= 0 or num_ssds < 1:
            raise ValueError("invalid lifespan query")
        if activation_bytes_per_step == 0:
            return float("inf")
        endurance = self.effective_endurance_bytes(spec) * num_ssds
        lifespan_s = endurance * step_time_s / activation_bytes_per_step
        return lifespan_s / SECONDS_PER_YEAR


class SSD:
    """A runtime SSD instance with wear tracking.

    Thread-safe: offloading thread pools write concurrently.
    """

    def __init__(
        self,
        spec: SSDSpec = INTEL_OPTANE_P5800X_1600GB,
        endurance: Optional[SSDEnduranceModel] = None,
        index: int = 0,
    ) -> None:
        self.spec = spec
        self.endurance = endurance if endurance is not None else SSDEnduranceModel()
        self.index = index
        self._lock = threading.Lock()
        self._host_bytes_written = 0
        self._host_bytes_read = 0

    def record_write(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative write: {nbytes}")
        with self._lock:
            self._host_bytes_written += nbytes

    def record_read(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative read: {nbytes}")
        with self._lock:
            self._host_bytes_read += nbytes

    @property
    def host_bytes_written(self) -> int:
        with self._lock:
            return self._host_bytes_written

    @property
    def host_bytes_read(self) -> int:
        with self._lock:
            return self._host_bytes_read

    @property
    def media_bytes_written(self) -> float:
        """Media-level writes: host writes amplified by the workload WAF."""
        return self.host_bytes_written * self.endurance.workload_waf

    def wear_fraction(self) -> float:
        """Fraction of effective endurance consumed so far."""
        return self.host_bytes_written / self.endurance.effective_endurance_bytes(self.spec)

    def write_time(self, nbytes: int) -> float:
        """Seconds to persist ``nbytes`` (sequential write)."""
        if nbytes < 0:
            raise ValueError(f"negative write size: {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.spec.write_latency_s + nbytes / self.spec.write_bw

    def read_time(self, nbytes: int) -> float:
        """Seconds to read back ``nbytes`` (sequential read)."""
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.spec.read_latency_s + nbytes / self.spec.read_bw

    def __repr__(self) -> str:
        return f"SSD({self.spec.name}#{self.index}, written={self.host_bytes_written})"


class RAID0Array:
    """A striped array of identical SSDs (the paper's 3x / 4x P5800X arrays).

    Bandwidth scales with the member count; writes are striped evenly across
    members for wear accounting.
    """

    def __init__(
        self,
        spec: SSDSpec = INTEL_OPTANE_P5800X_1600GB,
        num_ssds: int = 4,
        endurance: Optional[SSDEnduranceModel] = None,
        name: str = "md0",
    ) -> None:
        if num_ssds < 1:
            raise ValueError(f"array needs at least one SSD: {num_ssds}")
        self.name = name
        self.members: List[SSD] = [
            SSD(spec=spec, endurance=endurance, index=i) for i in range(num_ssds)
        ]

    @property
    def spec(self) -> SSDSpec:
        return self.members[0].spec

    @property
    def num_ssds(self) -> int:
        return len(self.members)

    @property
    def write_bw(self) -> float:
        return self.spec.write_bw * self.num_ssds

    @property
    def read_bw(self) -> float:
        return self.spec.read_bw * self.num_ssds

    @property
    def capacity_bytes(self) -> int:
        return self.spec.capacity_bytes * self.num_ssds

    @property
    def host_bytes_written(self) -> int:
        return sum(m.host_bytes_written for m in self.members)

    @property
    def host_bytes_read(self) -> int:
        return sum(m.host_bytes_read for m in self.members)

    def record_write(self, nbytes: int) -> None:
        """Stripe a write evenly across members (remainder to member 0)."""
        per_member, remainder = divmod(nbytes, self.num_ssds)
        for i, member in enumerate(self.members):
            member.record_write(per_member + (remainder if i == 0 else 0))

    def record_read(self, nbytes: int) -> None:
        per_member, remainder = divmod(nbytes, self.num_ssds)
        for i, member in enumerate(self.members):
            member.record_read(per_member + (remainder if i == 0 else 0))

    def write_time(self, nbytes: int) -> float:
        """Seconds to persist ``nbytes`` striped across the array."""
        if nbytes < 0:
            raise ValueError(f"negative write size: {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.spec.write_latency_s + nbytes / self.write_bw

    def read_time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.spec.read_latency_s + nbytes / self.read_bw

    def __repr__(self) -> str:
        return f"RAID0Array({self.name}, {self.num_ssds}x {self.spec.name})"
