"""Simulated GPU device.

A :class:`GPU` bundles together the three things the reproduction needs from
"an A100":

1. a :class:`~repro.device.memory.MemoryLedger` (memory capacity and the
   activation-peak statistic of Fig. 6),
2. a :class:`KernelTimingModel` mapping FLOPs / bytes-moved to kernel time
   under a roofline with a batch-dependent efficiency curve (the "GPU
   computation stack is not designed for small inputs" effect in Sec. I), and
3. FLOP counters for the *model throughput* metric of Fig. 7 (algorithmic
   FLOPs divided by step time, independent of recomputation).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.device.memory import MemoryLedger


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU model.

    Attributes:
        name: marketing name, e.g. ``"A100-PCIe-40GB"``.
        memory_bytes: device memory capacity.
        fp16_tflops: peak dense FP16 throughput in TFLOP/s.
        mem_bandwidth_gbps: device memory bandwidth in GB/s.
        pcie_gbps: host interconnect bandwidth in GB/s (one direction).
    """

    name: str
    memory_bytes: int
    fp16_tflops: float
    mem_bandwidth_gbps: float
    pcie_gbps: float

    @property
    def fp16_flops(self) -> float:
        return self.fp16_tflops * 1e12

    @property
    def mem_bandwidth(self) -> float:
        return self.mem_bandwidth_gbps * 1e9


#: Nvidia A100 PCIe 40 GB locked at base frequency (Table II).  The paper
#: locks clocks for consistency; base-clock FP16 tensor throughput is below
#: the 312 TFLOP/s boost figure, and large-GEMM efficiency is ~0.5 of peak.
A100_PCIE_40GB = GPUSpec(
    name="A100-PCIe-40GB",
    memory_bytes=40 * 1024**3,
    fp16_tflops=312.0,
    mem_bandwidth_gbps=1555.0,
    pcie_gbps=25.0,
)

A100_SXM_80GB = GPUSpec(
    name="A100-SXM-80GB",
    memory_bytes=80 * 1024**3,
    fp16_tflops=312.0,
    mem_bandwidth_gbps=2039.0,
    pcie_gbps=25.0,
)


class KernelTimingModel:
    """Roofline kernel timing with a saturation-style efficiency curve.

    ``time = max(flops / (peak * eff(batch)), bytes / mem_bw) + launch_overhead``

    The efficiency curve ``eff(b) = eff_max * b / (b + b_half)`` captures the
    under-utilization at small micro-batch sizes that motivates the paper's
    Fig. 8(a): doubling the micro-batch raises achieved FLOP/s until the GEMMs
    saturate the device.  The default half-saturation of 0.25 reflects that
    transformer GEMMs keep M = batch x seq rows — even B=1 carries a full
    sequence, so B=1 already achieves ~80% of the saturated efficiency.
    """

    def __init__(
        self,
        spec: GPUSpec,
        eff_max: float = 0.52,
        batch_half_saturation: float = 0.25,
        launch_overhead_s: float = 4e-6,
    ) -> None:
        if not 0 < eff_max <= 1:
            raise ValueError(f"eff_max must be in (0, 1]: {eff_max}")
        self.spec = spec
        self.eff_max = eff_max
        self.batch_half_saturation = batch_half_saturation
        self.launch_overhead_s = launch_overhead_s

    def efficiency(self, batch_size: float) -> float:
        """Fraction of peak FLOP/s achieved at a given micro-batch size."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive: {batch_size}")
        return self.eff_max * batch_size / (batch_size + self.batch_half_saturation)

    def kernel_time(self, flops: float, bytes_moved: float, batch_size: float = 16.0) -> float:
        """Execution time in seconds of one kernel."""
        if flops < 0 or bytes_moved < 0:
            raise ValueError("flops and bytes_moved must be non-negative")
        compute_time = flops / (self.spec.fp16_flops * self.efficiency(batch_size))
        memory_time = bytes_moved / self.spec.mem_bandwidth
        return max(compute_time, memory_time) + self.launch_overhead_s


class GPU:
    """A simulated GPU: ledger + timing model + FLOP counters.

    Multiple :class:`GPU` instances model a multi-GPU node (the evaluation
    machine has two A100s, each with its own dedicated RAID0 array).
    """

    def __init__(
        self,
        spec: GPUSpec = A100_PCIE_40GB,
        index: int = 0,
        enforce_capacity: bool = False,
        timing: Optional[KernelTimingModel] = None,
    ) -> None:
        self.spec = spec
        self.index = index
        self.ledger = MemoryLedger(
            capacity_bytes=spec.memory_bytes if enforce_capacity else None,
            name=f"{spec.name}#{index}",
        )
        self.timing = timing if timing is not None else KernelTimingModel(spec)
        self._lock = threading.Lock()
        self._flops_executed = 0.0
        self._algorithmic_flops = 0.0

    # ------------------------------------------------------------- accounting
    def record_flops(self, flops: float, algorithmic: bool = True) -> None:
        """Record executed FLOPs.

        ``algorithmic=False`` marks recomputation work: it is executed but not
        counted toward the *model throughput* numerator (Fig. 7 definition:
        "the number of algorithmic computations involved in the training step
        regardless of ... whether the activations are recomputed").
        """
        if flops < 0:
            raise ValueError(f"negative flops: {flops}")
        with self._lock:
            self._flops_executed += flops
            if algorithmic:
                self._algorithmic_flops += flops

    @property
    def flops_executed(self) -> float:
        with self._lock:
            return self._flops_executed

    @property
    def algorithmic_flops(self) -> float:
        with self._lock:
            return self._algorithmic_flops

    def reset_counters(self) -> None:
        with self._lock:
            self._flops_executed = 0.0
            self._algorithmic_flops = 0.0

    def model_throughput_tflops(self, step_time_s: float) -> float:
        """Per-GPU model throughput (TFLOP/s) per the Fig. 7 definition."""
        if step_time_s <= 0:
            raise ValueError(f"step_time_s must be positive: {step_time_s}")
        return self.algorithmic_flops / step_time_s / 1e12

    def __repr__(self) -> str:
        return f"GPU({self.spec.name}#{self.index})"
