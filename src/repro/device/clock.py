"""A virtual clock for simulated time.

Functional runs (real numpy math) use wall-clock time; simulated runs
(discrete-event benchmarks) advance a :class:`VirtualClock`.  Keeping the
clock explicit lets the same policy/accounting code run in both modes.
"""

from __future__ import annotations

import itertools
import threading


class VirtualClock:
    """Monotonic simulated clock measured in seconds.

    The clock can only move forward.  A monotonically increasing tick counter
    is also exposed so that events scheduled at the same instant retain a
    deterministic order.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._ticks = itertools.count()
        self._lock = threading.Lock()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t``.

        Raises:
            ValueError: if ``t`` is earlier than the current time.
        """
        with self._lock:
            if t < self._now:
                raise ValueError(
                    f"clock cannot move backwards: now={self._now}, requested={t}"
                )
            self._now = t

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds (must be >= 0)."""
        if dt < 0:
            raise ValueError(f"negative clock advance: {dt}")
        with self._lock:
            self._now += dt

    def next_tick(self) -> int:
        """Return a unique, monotonically increasing sequence number."""
        return next(self._ticks)

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock to ``start`` (used between simulated steps)."""
        with self._lock:
            self._now = float(start)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f}s)"
