"""PCIe interconnect model.

SSDTrain's viability argument (Sec. III-D) is stated in terms of the *PCIe
write bandwidth per GPU* needed to fully overlap activation offloading with
computation.  This module provides a simple bandwidth/latency link model and
the standard PCIe generation parameters used by the paper's platforms
(A100 is PCIe 4.0 x16; the P5800X is PCIe 4.0 x4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PCIeGeneration(enum.Enum):
    """Per-lane usable data rate in GB/s (after encoding overhead)."""

    GEN3 = 0.985
    GEN4 = 1.969
    GEN5 = 3.938

    @property
    def lane_gbps(self) -> float:
        return self.value


@dataclass(frozen=True)
class PCIeLink:
    """A point-to-point PCIe link.

    Attributes:
        generation: PCIe generation of the link.
        lanes: number of lanes (x4, x8, x16 ...).
        latency_s: per-transfer fixed latency (DMA setup, doorbell, etc.).
        efficiency: achievable fraction of the wire rate (protocol overhead,
            payload framing); ~0.85-0.92 is typical for large DMAs.
    """

    generation: PCIeGeneration = PCIeGeneration.GEN4
    lanes: int = 16
    latency_s: float = 5e-6
    efficiency: float = 0.88

    def __post_init__(self) -> None:
        if self.lanes <= 0:
            raise ValueError(f"lanes must be positive: {self.lanes}")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1]: {self.efficiency}")

    @property
    def bandwidth_gbps(self) -> float:
        """Usable one-direction bandwidth in GB/s."""
        return self.generation.lane_gbps * self.lanes * self.efficiency

    @property
    def bandwidth(self) -> float:
        """Usable one-direction bandwidth in bytes/s."""
        return self.bandwidth_gbps * 1e9

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` across the link."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / self.bandwidth


#: x16 Gen4 link between GPU and the root complex (A100 PCIe).
GPU_LINK_GEN4_X16 = PCIeLink(PCIeGeneration.GEN4, lanes=16)

#: x4 Gen4 link of a single NVMe SSD (P5800X, Samsung 980 PRO).
SSD_LINK_GEN4_X4 = PCIeLink(PCIeGeneration.GEN4, lanes=4)
