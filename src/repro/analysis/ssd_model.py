"""SSD deployment projections (Fig. 5, Table III, Fig. 8b).

Combines the performance model with the endurance model to answer the
paper's three viability questions per configuration:

1. required PCIe write bandwidth per GPU — offloaded bytes over half the
   step time;
2. projected SSD lifespan — effective endurance x step time / activation
   bytes per step;
3. maximal activations size per GPU — with only two layers resident and
   everything else offloaded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.configs import (
    FIG5_CONFIGS,
    FIG5_SSD_SPEC,
    FIG5_SSDS_PER_GPU,
    Fig5Config,
)
from repro.analysis.perf_model import StepPerf, model_step_perf, transformer_layer_perf
from repro.device.gpu import A100_PCIE_40GB, GPUSpec, KernelTimingModel
from repro.device.ssd import SSDEnduranceModel, SSDSpec


@dataclass(frozen=True)
class DeploymentProjection:
    """One bar group of Fig. 5."""

    label: str
    num_gpus: int
    step_time_s: float
    activation_bytes_per_step: int
    required_write_bw_gbps: float
    lifespan_years: float
    max_activation_bytes_per_gpu: int

    def as_row(self) -> str:
        return (
            f"{self.label:<28} {self.num_gpus:>5}  "
            f"{self.required_write_bw_gbps:>6.2f} GB/s  "
            f"{self.lifespan_years:>6.2f} yr  "
            f"{self.max_activation_bytes_per_gpu / 1e12:>6.2f} TB"
        )


def project_deployment(
    config: Fig5Config,
    gpu: GPUSpec = A100_PCIE_40GB,
    ssd: SSDSpec = FIG5_SSD_SPEC,
    ssds_per_gpu: int = FIG5_SSDS_PER_GPU,
    endurance: Optional[SSDEnduranceModel] = None,
) -> DeploymentProjection:
    """Project lifespan / bandwidth / max-activation for one Fig. 5 config."""
    model = endurance if endurance is not None else SSDEnduranceModel()
    timing = KernelTimingModel(gpu, eff_max=0.52 * config.efficiency_derate)
    perf: StepPerf = model_step_perf(
        config.model,
        config.microbatch_size,
        gpu=gpu,
        parallelism=config.parallelism,
        num_microbatches=config.num_microbatches,
        timing=timing,
    )
    act_bytes = perf.activation_bytes_per_step
    write_bw = perf.required_write_bandwidth()
    lifespan = model.lifespan_years(
        ssd,
        activation_bytes_per_step=act_bytes,
        step_time_s=perf.step_time_s,
        num_ssds=ssds_per_gpu,
    )
    # Max activations per GPU: "assuming only two layers in a row are in
    # GPU memory at the same time while all other activations are
    # offloaded" — the SSD capacity the step's activations need.
    layer = transformer_layer_perf(
        config.model, config.microbatch_size, gpu, config.parallelism
    )
    resident = 2 * layer.activation_bytes  # only the in-flight micro-batch
    max_act = max(0, int(act_bytes - resident))
    return DeploymentProjection(
        label=config.label,
        num_gpus=config.num_gpus,
        step_time_s=perf.step_time_s,
        activation_bytes_per_step=act_bytes,
        required_write_bw_gbps=write_bw / 1e9,
        lifespan_years=lifespan,
        max_activation_bytes_per_gpu=max_act,
    )


def project_all_fig5(
    gpu: GPUSpec = A100_PCIE_40GB,
    ssd: SSDSpec = FIG5_SSD_SPEC,
    ssds_per_gpu: int = FIG5_SSDS_PER_GPU,
) -> List[DeploymentProjection]:
    """All twelve Fig. 5 bar groups."""
    return [
        project_deployment(config, gpu=gpu, ssd=ssd, ssds_per_gpu=ssds_per_gpu)
        for config in FIG5_CONFIGS
    ]
