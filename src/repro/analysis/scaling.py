"""Scaling-law trends (Fig. 1) and the Sec. II-B growth argument.

Fig. 1 plots, against release date: LLM sizes, GPU FP16 throughput, and
GPU memory capacity (as FP16-element counts).  The paper's observation:
memory capacity grows at ~41% of the rate of compute throughput, while
model sizes track compute — so activation memory becomes the binding
constraint.

Sec. II-B's derivation, reproduced in :func:`activation_growth_exponent`:
with C ∝ N·D_batch, N ∝ C^0.5 (Chinchilla) and h a slow function of N
(h ∝ N^(1/3)), activation footprint S_act ∝ (N/h)·D_batch ∝ C^(5/6),
while other memory S_others ∝ N ∝ C^0.5 — activations dominate and
whole-system memory demand outpaces the historical capacity trend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class TrendPoint:
    """One device or model release."""

    name: str
    year: float          # fractional release year
    value: float         # FP16 elements (capacity / model size) or FLOP/s
    kind: str            # "gpu_flops" | "gpu_memory" | "llm_size"


#: Nvidia 100-class GPUs and Google TPUs (Fig. 1 sources: memory capacity
#: in FP16 elements, peak dense FP16 throughput in FLOP/s).
GPU_TRENDS: List[TrendPoint] = [
    TrendPoint("K100/K40", 2013.8, 12e9 / 2, "gpu_memory"),
    TrendPoint("K100/K40", 2013.8, 4.29e12 / 2, "gpu_flops"),
    TrendPoint("M40", 2015.9, 24e9 / 2, "gpu_memory"),
    TrendPoint("M40", 2015.9, 6.8e12 / 2, "gpu_flops"),
    TrendPoint("P100", 2016.4, 16e9 / 2, "gpu_memory"),
    TrendPoint("P100", 2016.4, 21.2e12, "gpu_flops"),
    TrendPoint("V100", 2017.5, 32e9 / 2, "gpu_memory"),
    TrendPoint("V100", 2017.5, 125e12, "gpu_flops"),
    TrendPoint("TPUv2", 2017.9, 16e9 / 2, "gpu_memory"),
    TrendPoint("TPUv2", 2017.9, 45e12, "gpu_flops"),
    TrendPoint("TPUv3", 2018.9, 32e9 / 2, "gpu_memory"),
    TrendPoint("TPUv3", 2018.9, 123e12, "gpu_flops"),
    TrendPoint("A100", 2020.4, 80e9 / 2, "gpu_memory"),
    TrendPoint("A100", 2020.4, 312e12, "gpu_flops"),
    TrendPoint("TPUv4", 2021.4, 32e9 / 2, "gpu_memory"),
    TrendPoint("TPUv4", 2021.4, 275e12, "gpu_flops"),
    TrendPoint("H100", 2022.7, 80e9 / 2, "gpu_memory"),
    TrendPoint("H100", 2022.7, 989e12, "gpu_flops"),
    TrendPoint("H200", 2023.9, 141e9 / 2, "gpu_memory"),
    TrendPoint("H200", 2023.9, 989e12, "gpu_flops"),
]

#: Representative LLM releases (parameter counts).
LLM_TRENDS: List[TrendPoint] = [
    TrendPoint("BERT-L", 2018.8, 0.34e9, "llm_size"),
    TrendPoint("GPT-2", 2019.1, 1.5e9, "llm_size"),
    TrendPoint("Megatron-LM", 2019.7, 8.3e9, "llm_size"),
    TrendPoint("T5-11B", 2019.8, 11e9, "llm_size"),
    TrendPoint("GPT-3", 2020.4, 175e9, "llm_size"),
    TrendPoint("MT-NLG", 2021.8, 530e9, "llm_size"),
    TrendPoint("PaLM", 2022.3, 540e9, "llm_size"),
    TrendPoint("BLOOM", 2022.5, 176e9, "llm_size"),
    TrendPoint("Llama-2", 2023.5, 70e9, "llm_size"),
    TrendPoint("GPT-4 (est.)", 2023.2, 1.8e12, "llm_size"),
]


def fit_growth_rate(points: Sequence[TrendPoint]) -> float:
    """Least-squares exponential growth rate (fraction/year).

    Fits ``log10(value) = a * year + b`` and returns ``10^a - 1``.
    """
    if len(points) < 2:
        raise ValueError("need at least two points to fit a trend")
    years = np.array([p.year for p in points])
    logs = np.log10([p.value for p in points])
    slope, _ = np.polyfit(years, logs, 1)
    return float(10**slope - 1.0)


def fig1_series() -> dict:
    """The three Fig. 1 series with fitted annual growth rates."""
    flops = [p for p in GPU_TRENDS if p.kind == "gpu_flops"]
    memory = [p for p in GPU_TRENDS if p.kind == "gpu_memory"]
    llm = LLM_TRENDS
    return {
        "gpu_flops": {"points": flops, "growth_per_year": fit_growth_rate(flops)},
        "gpu_memory": {"points": memory, "growth_per_year": fit_growth_rate(memory)},
        "llm_size": {"points": llm, "growth_per_year": fit_growth_rate(llm)},
    }


def memory_to_compute_growth_ratio() -> float:
    """Fig. 1's headline: memory capacity grows at ~41% the rate of
    compute throughput (in log-slope terms)."""
    series = fig1_series()
    mem_slope = math.log10(1 + series["gpu_memory"]["growth_per_year"])
    flops_slope = math.log10(1 + series["gpu_flops"]["growth_per_year"])
    return mem_slope / flops_slope


def activation_growth_exponent(
    chinchilla_exponent: float = 0.5,
    hidden_exponent: float = 1.0 / 3.0,
) -> float:
    """Sec. II-B: exponent g such that S_activations ∝ C^g.

    S_act ∝ (N/h)·D_batch with N ∝ C^a, h ∝ N^b, D_batch ∝ C^(1-a):
    g = a·(1-b) + (1-a).  Defaults give 5/6.
    """
    a, b = chinchilla_exponent, hidden_exponent
    return a * (1 - b) + (1 - a)


def others_growth_exponent(chinchilla_exponent: float = 0.5) -> float:
    """S_others (weights, grads, optimizer) ∝ N ∝ C^0.5."""
    return chinchilla_exponent


def checkpointed_activation_growth_exponent(
    chinchilla_exponent: float = 0.5,
    hidden_exponent: float = 1.0 / 3.0,
    layer_exponent: float = 1.0 / 3.0,
) -> float:
    """With sqrt(L) checkpointing: S'_act ∝ sqrt(L)·h·D_batch ∝ C^g'.

    L ∝ N^l, h ∝ N^b: g' = a·(l/2 + b) + (1-a).  Still above the ~0.5
    exponent of S_others for the default parameters — checkpointing alone
    does not close the gap (the paper's closing argument in Sec. II-B).
    """
    a, b, l = chinchilla_exponent, hidden_exponent, layer_exponent
    return a * (l / 2 + b) + (1 - a)
