"""Analytic models: performance, SSD endurance projections, scaling laws.

This package reimplements the modeling layer of the paper:

- :mod:`~repro.analysis.perf_model` — llm-analysis-style step-time and
  activation-footprint model (Sec. III-D's ``t = max(sum_l max(t_compute,
  t_memory), t_zero_communicate)`` pipeline).
- :mod:`~repro.analysis.ssd_model` — lifespan / required-write-bandwidth
  projections behind Fig. 5 and the Fig. 8(b) upscaling study.
- :mod:`~repro.analysis.scaling` — the Fig. 1 trend database and the
  Sec. II-B scaling-law argument.
- :mod:`~repro.analysis.configs` — the paper's hardware and LLM configs
  (Table II, Megatron 175B/350B, ZeRO-3 variants).
"""

from repro.analysis.perf_model import (
    LayerPerf,
    StepPerf,
    TierTransferModel,
    layer_activation_inventory,
    model_step_perf,
    transformer_layer_perf,
)
from repro.analysis.ssd_model import DeploymentProjection, project_deployment
from repro.analysis.configs import (
    MEGATRON_175B,
    MEGATRON_350B,
    FIG5_CONFIGS,
    Fig5Config,
)
from repro.analysis.scaling import TrendPoint, fit_growth_rate, fig1_series

__all__ = [
    "LayerPerf",
    "StepPerf",
    "TierTransferModel",
    "layer_activation_inventory",
    "transformer_layer_perf",
    "model_step_perf",
    "DeploymentProjection",
    "project_deployment",
    "MEGATRON_175B",
    "MEGATRON_350B",
    "FIG5_CONFIGS",
    "Fig5Config",
    "TrendPoint",
    "fit_growth_rate",
    "fig1_series",
]
