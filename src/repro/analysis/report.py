"""Result export: serialize experiment outputs to JSON/CSV.

Benches and examples print human tables; this module gives downstream
users machine-readable artifacts (e.g. to plot the figures) without
depending on any plotting stack.
"""

from __future__ import annotations

import csv
import dataclasses
import enum
import io
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union


def _coerce(value: Any) -> Any:
    """Make a value JSON-serializable."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _coerce(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if not f.name.startswith("_") and f.repr
        }
    if isinstance(value, dict):
        return {str(k): _coerce(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_coerce(v) for v in value]
    if hasattr(value, "item") and callable(value.item):  # numpy scalars
        try:
            return value.item()
        except Exception:
            pass
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def rows_from(objects: Iterable[Any]) -> List[Dict[str, Any]]:
    """Flatten dataclasses/dicts into uniform row dicts."""
    rows = []
    for obj in objects:
        coerced = _coerce(obj)
        if not isinstance(coerced, dict):
            raise TypeError(f"cannot tabulate {type(obj).__name__}")
        rows.append(coerced)
    return rows


def to_json(objects: Union[Any, Iterable[Any]], path: Optional[Union[str, Path]] = None, indent: int = 2) -> str:
    """Serialize results to JSON; optionally write to ``path``."""
    payload = _coerce(objects)
    text = json.dumps(payload, indent=indent, sort_keys=True)
    if path is not None:
        Path(path).write_text(text + "\n")
    return text


def to_csv(objects: Iterable[Any], path: Optional[Union[str, Path]] = None, columns: Optional[Sequence[str]] = None) -> str:
    """Serialize a homogeneous result list to CSV.

    Nested values are JSON-encoded into their cell.  Column order follows
    the first row unless ``columns`` is given.
    """
    rows = rows_from(objects)
    if not rows:
        raise ValueError("no rows to serialize")
    fieldnames = list(columns) if columns is not None else list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        flat = {
            k: json.dumps(v) if isinstance(v, (dict, list)) else v
            for k, v in row.items()
            if k in fieldnames
        }
        writer.writerow(flat)
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
