"""Micro-batch size studies: Fig. 8(a) and Fig. 8(b).

Fig. 8(a) decomposes the throughput improvement from a larger micro-batch
(relative to B=1) into two stacked components:

- **weights-update saving** — the optimizer step is paid once per step
  regardless of micro-batch size, so its relative cost shrinks as B grows
  ("weight update and gradient accumulation cost is inversely proportional
  to the micro-batch size", Sec. IV-D);
- **higher compute efficiency** — GEMMs on larger inputs achieve a larger
  fraction of peak FLOP/s.

Fig. 8(b) projects the per-GPU PCIe write bandwidth when the training
system is scaled up (TP x PP growing from the 2-GPU testbed), with
Megatron sequence parallelism sharding activations across the TP group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.perf_model import model_step_perf
from repro.device.gpu import A100_PCIE_40GB, GPUSpec, KernelTimingModel
from repro.models.config import ModelConfig
from repro.train.parallel import ParallelismConfig


@dataclass(frozen=True)
class MicrobatchBreakdown:
    """One bar of Fig. 8(a)."""

    batch_size: int
    throughput_tflops: float
    baseline_tflops: float
    total_improvement: float          # T(B)/T(1) - 1
    update_saving_improvement: float  # share from weight-update amortization
    efficiency_improvement: float     # share from GEMM efficiency


def microbatch_breakdown(
    config: ModelConfig,
    batch_sizes: Sequence[int] = (2, 4, 8, 16),
    gpu: GPUSpec = A100_PCIE_40GB,
    parallelism: Optional[ParallelismConfig] = None,
    timing: Optional[KernelTimingModel] = None,
) -> List[MicrobatchBreakdown]:
    """Fig. 8(a): throughput improvement vs B=1, decomposed.

    The decomposition holds per-sample compute time at its B=1 value to
    isolate the update-amortization gain; the remainder is the efficiency
    gain.  The two stack to the total.
    """
    base = model_step_perf(config, 1, gpu, parallelism, timing=timing)
    base_tput = base.model_throughput_tflops()
    per_sample_flops = base.algorithmic_flops
    per_sample_compute = base.compute_time_s
    update = base.weight_update_time_s

    rows: List[MicrobatchBreakdown] = []
    for b in batch_sizes:
        if b < 1:
            raise ValueError(f"batch size must be >= 1: {b}")
        perf = model_step_perf(config, b, gpu, parallelism, timing=timing)
        tput = perf.model_throughput_tflops()
        total = tput / base_tput - 1.0
        # Hypothetical: B samples at B=1 efficiency, one update.
        update_only_tput = (
            per_sample_flops * b / (per_sample_compute * b + update) / 1e12
        )
        update_part = update_only_tput / base_tput - 1.0
        rows.append(
            MicrobatchBreakdown(
                batch_size=b,
                throughput_tflops=tput,
                baseline_tflops=base_tput,
                total_improvement=total,
                update_saving_improvement=update_part,
                efficiency_improvement=total - update_part,
            )
        )
    return rows


@dataclass(frozen=True)
class UpscalingPoint:
    """One bar of Fig. 8(b)."""

    label: str
    pp: int
    tp: int
    num_layers: int
    write_bandwidth_gbps: float


#: The Fig. 8(b) x-axis: (PP, TP, L) growing from the 2-GPU testbed.
FIG8B_CONFIGS: List[Tuple[int, int, int]] = [
    (1, 4, 3),
    (1, 8, 3),
    (2, 8, 6),
    (4, 8, 12),
    (8, 8, 24),
]


def upscaling_write_bandwidth(
    hidden: int = 12288,
    batch: int = 16,
    seq_len: int = 1024,
    configs: Sequence[Tuple[int, int, int]] = tuple(FIG8B_CONFIGS),
    gpu: GPUSpec = A100_PCIE_40GB,
) -> Tuple[float, List[UpscalingPoint]]:
    """Fig. 8(b): per-GPU write bandwidth under upscaling.

    Returns ``(reference_gbps, points)`` where the reference is the
    original 2-GPU case (TP=2, PP=1, L=3 — the orange dashed line).
    """
    ref_cfg = ModelConfig(arch="bert", hidden=hidden, num_layers=3, seq_len=seq_len)
    ref_perf = model_step_perf(ref_cfg, batch, gpu, ParallelismConfig(tp=2))
    reference = ref_perf.required_write_bandwidth() / 1e9

    points: List[UpscalingPoint] = []
    for pp, tp, layers in configs:
        cfg = ModelConfig(arch="bert", hidden=hidden, num_layers=layers, seq_len=seq_len)
        par = ParallelismConfig(tp=tp, pp=pp, sequence_parallel=True)
        # Enough micro-batches to fill the pipeline (typical configs).
        num_mb = max(1, 2 * pp)
        perf = model_step_perf(cfg, batch, gpu, par, num_microbatches=num_mb)
        points.append(
            UpscalingPoint(
                label=f"PP{pp} TP{tp} L{layers}",
                pp=pp,
                tp=tp,
                num_layers=layers,
                write_bandwidth_gbps=perf.required_write_bandwidth() / 1e9,
            )
        )
    return reference, points
