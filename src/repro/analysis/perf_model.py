"""Performance model: step time and activation footprint (Sec. III-D).

Follows the llm-analysis pipeline the paper extends: each transformer
layer's forward is ``t = max(sum_l max(t_l_compute, t_l_memory),
t_zero_communicate)`` — compute/memory rooflines per sub-operator, with
ZeRO communication assumed perfectly pipelined at transformer-layer level.
Backward compute is 2x forward.

The activation inventory is per-tensor and mirrors exactly what the
functional engine saves through the pack hook (with FlashAttention, no
O(S^2) tensors appear):

======================  ==============  =====================
tensor                  saved by        bytes (dtype_bytes x)
======================  ==============  =====================
ln_attn input           LayerNorm       b s h
ln_attn output          QKV matmul      b s h
q, k, v                 FlashAttention  3 b s h
attn merged output      out-proj matmul b s h
residual-1 output       LayerNorm       b s h
ln_mlp output           fc_in matmul    b s h
fc_in output            GELU            4 b s h
gelu output             fc_out matmul   4 b s h
======================  ==============  =====================

Total: 16 x b s h elements per layer (32 bsh bytes in FP16), plus the loss
logits (b s V) once per micro-batch.  This is the "model estimate" column
of Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.device.gpu import GPUSpec, KernelTimingModel, A100_PCIE_40GB
from repro.device.pcie import GPU_LINK_GEN4_X16
from repro.models.config import ModelConfig
from repro.train.parallel import ParallelismConfig
from repro.train.pipeline import ideal_bubble_fraction


@dataclass(frozen=True)
class ActivationTensor:
    """One entry of the per-layer activation inventory."""

    name: str
    nbytes: int


@dataclass(frozen=True)
class LayerPerf:
    """Per-transformer-layer performance numbers (one micro-batch)."""

    forward_time_s: float
    backward_time_s: float
    forward_flops: float
    activation_bytes: int
    param_bytes: int
    inventory: Tuple[ActivationTensor, ...]


@dataclass(frozen=True)
class StepPerf:
    """Whole-step projection for one GPU."""

    forward_time_s: float
    backward_time_s: float
    weight_update_time_s: float
    accumulation_time_s: float
    bubble_time_s: float
    step_time_s: float
    activation_bytes_per_microbatch: int
    activation_bytes_per_step: int
    algorithmic_flops: float
    params_per_gpu: float

    @property
    def compute_time_s(self) -> float:
        return self.forward_time_s + self.backward_time_s

    def model_throughput_tflops(self) -> float:
        return self.algorithmic_flops / self.step_time_s / 1e12

    def required_write_bandwidth(self, offloaded_bytes: Optional[int] = None) -> float:
        """Per-GPU PCIe write bandwidth: offloaded bytes over half the step
        time (the paper's Sec. III-D definition)."""
        bytes_out = (
            offloaded_bytes
            if offloaded_bytes is not None
            else self.activation_bytes_per_step
        )
        return bytes_out / (self.step_time_s / 2.0)


def layer_activation_inventory(
    config: ModelConfig,
    batch: int,
    tp: int = 1,
    cross_attention: bool = False,
    sequence_parallel: bool = False,
) -> List[ActivationTensor]:
    """The per-tensor activation inventory of one transformer layer.

    Tensor-parallelism shards the attention/MLP internals ``tp`` ways;
    the residual-path tensors stay replicated unless Megatron sequence
    parallelism is on (``sequence_parallel``), which shards them too.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1: {batch}")
    elems = batch * config.seq_len * config.hidden  # b s h
    dt = config.dtype_bytes
    residual_shard = tp if sequence_parallel else 1
    inventory = [
        ActivationTensor("ln_attn_in", elems * dt // residual_shard),
        ActivationTensor("ln_attn_out", elems * dt // residual_shard),
        ActivationTensor("attn_q", elems * dt // tp),
        ActivationTensor("attn_k", elems * dt // tp),
        ActivationTensor("attn_v", elems * dt // tp),
        ActivationTensor("attn_merged", elems * dt // tp),
        ActivationTensor("residual1_out", elems * dt // residual_shard),
        ActivationTensor("ln_mlp_out", elems * dt // residual_shard),
        ActivationTensor("fc_in_out", 4 * elems * dt // tp),
        ActivationTensor("gelu_out", 4 * elems * dt // tp),
    ]
    if cross_attention:
        inventory.extend(
            [
                ActivationTensor("ln_cross_out", elems * dt // residual_shard),
                ActivationTensor("cross_q", elems * dt // tp),
                ActivationTensor("cross_k", elems * dt // tp),
                ActivationTensor("cross_v", elems * dt // tp),
                ActivationTensor("cross_merged", elems * dt // tp),
            ]
        )
    return inventory


def layer_param_count(config: ModelConfig, cross_attention: bool = False) -> float:
    """Parameters of one transformer layer: 12 h^2 (+4 h^2 for cross-attn)."""
    h = config.hidden
    params = 12 * h * h  # 4h^2 attention + 8h^2 MLP
    if cross_attention:
        params += 4 * h * h
    return params


def layer_forward_flops(config: ModelConfig, batch: int, cross_attention: bool = False) -> float:
    """Forward FLOPs of one layer for one micro-batch."""
    b, s, h = batch, config.seq_len, config.hidden
    flops = 24.0 * b * s * h * h  # projections + MLP GEMMs
    flops += 4.0 * b * s * s * h  # attention core (qk^T and pv)
    if cross_attention:
        flops += 8.0 * b * s * h * h + 4.0 * b * s * s * h
    return flops


def transformer_layer_perf(
    config: ModelConfig,
    batch: int,
    gpu: GPUSpec = A100_PCIE_40GB,
    parallelism: Optional[ParallelismConfig] = None,
    timing: Optional[KernelTimingModel] = None,
    cross_attention: bool = False,
) -> LayerPerf:
    """Roofline timing + activation inventory for one layer."""
    par = parallelism if parallelism is not None else ParallelismConfig()
    model = timing if timing is not None else KernelTimingModel(gpu)
    flops = layer_forward_flops(config, batch, cross_attention) / par.tp
    params = layer_param_count(config, cross_attention)
    param_bytes = int(params * config.dtype_bytes / par.tp)
    inventory = tuple(
        layer_activation_inventory(
            config,
            batch,
            tp=par.tp,
            cross_attention=cross_attention,
            sequence_parallel=par.sequence_parallel,
        )
    )
    act_bytes = sum(t.nbytes for t in inventory)
    # Memory traffic: weights once, activations a handful of times.
    bytes_moved = param_bytes + 3 * act_bytes
    compute = model.kernel_time(flops, bytes_moved, batch_size=batch)
    tp_comm = par.tp_comm_time_per_layer(
        batch, config.seq_len, config.hidden, config.dtype_bytes
    )
    zero_comm = par.zero_comm_time_per_layer(params * config.dtype_bytes / par.tp)
    # ZeRO communication perfectly pipelined at the layer level (Sec. III-D);
    # TP all-reduces are on the critical path.
    forward = max(compute + tp_comm, zero_comm)
    backward = max(2.0 * compute + tp_comm, zero_comm)
    return LayerPerf(
        forward_time_s=forward,
        backward_time_s=backward,
        forward_flops=flops,
        activation_bytes=act_bytes,
        param_bytes=param_bytes,
        inventory=inventory,
    )


def logits_activation_bytes(config: ModelConfig, batch: int) -> int:
    """The loss logits saved by cross-entropy (b s V elements)."""
    return batch * config.seq_len * config.vocab_size * config.dtype_bytes


def embedding_activation_bytes(config: ModelConfig, batch: int) -> int:
    """Embedding-segment output (b s h elements)."""
    return batch * config.seq_len * config.hidden * config.dtype_bytes


def weight_update_time(
    params_per_gpu: float,
    gpu: GPUSpec = A100_PCIE_40GB,
    optimizer_state_reads: int = 1,
    dtype_bytes: int = 2,
    fixed_overhead_s: float = 80e-3,
) -> float:
    """Optimizer step time: memory-bound sweep over parameters + gradients
    plus the framework's per-step overhead.

    SGD reads the weight and gradient and writes the weight
    (``optimizer_state_reads=1``); Adam adds two state tensors read+written
    (``optimizer_state_reads=5``).  The fixed overhead models the
    Megatron-DeepSpeed bookkeeping around the update — gradient-buffer
    zeroing/copies, loss-scale checks, thousands of small optimizer kernel
    launches — which the paper identifies as "huge when the micro-batch
    size is 1 or 2" (Sec. IV-D).  The whole term is paid once per *step*
    regardless of micro-batch size, which is exactly why Fig. 8(a)'s
    improvement is dominated by weight-update saving.
    """
    bytes_swept = params_per_gpu * dtype_bytes * (2 + optimizer_state_reads)
    return bytes_swept / gpu.mem_bandwidth + fixed_overhead_s


def accumulation_time_per_microbatch(
    params_per_gpu: float,
    gpu: GPUSpec = A100_PCIE_40GB,
    dtype_bytes: int = 2,
    fixed_overhead_s: float = 5e-3,
) -> float:
    """Gradient-accumulation cost paid per micro-batch beyond the first.

    Each extra micro-batch's backward reads and read-modify-writes the
    gradient accumulation buffers — a full parameter-sized sweep — plus a
    fixed bookkeeping overhead.  Summed over a step, this cost is
    "inversely proportional to the micro-batch size" (Sec. IV-D), the other
    half of the pipeline-bubble trade-off SSDTrain relaxes.
    """
    bytes_swept = params_per_gpu * dtype_bytes * 3  # read grad, read buf, write
    return bytes_swept / gpu.mem_bandwidth + fixed_overhead_s


def model_step_perf(
    config: ModelConfig,
    batch: int,
    gpu: GPUSpec = A100_PCIE_40GB,
    parallelism: Optional[ParallelismConfig] = None,
    num_microbatches: int = 1,
    timing: Optional[KernelTimingModel] = None,
    include_logits: bool = True,
) -> StepPerf:
    """Project one training step on one GPU.

    Per-GPU layer count honours pipeline parallelism; bubbles use the
    ideal ``(p-1)/(m+p-1)`` fraction of the compute time.
    """
    if num_microbatches < 1:
        raise ValueError("num_microbatches must be >= 1")
    par = parallelism if parallelism is not None else ParallelismConfig()

    num_cross = config.num_decoder_layers if config.arch == "t5" else 0
    num_plain = config.num_layers - num_cross
    layers_per_gpu_total = par.layers_per_gpu(config.num_layers)
    # Distribute plain/cross layers proportionally across stages.
    frac = layers_per_gpu_total / config.num_layers
    plain_on_gpu = num_plain * frac
    cross_on_gpu = num_cross * frac

    plain = transformer_layer_perf(config, batch, gpu, par, timing)
    fwd = plain.forward_time_s * plain_on_gpu
    bwd = plain.backward_time_s * plain_on_gpu
    act = plain.activation_bytes * plain_on_gpu
    flops = plain.forward_flops * plain_on_gpu * 3  # fwd + 2x bwd
    if cross_on_gpu:
        cross = transformer_layer_perf(config, batch, gpu, par, timing, cross_attention=True)
        fwd += cross.forward_time_s * cross_on_gpu
        bwd += cross.backward_time_s * cross_on_gpu
        act += cross.activation_bytes * cross_on_gpu
        flops += cross.forward_flops * cross_on_gpu * 3

    # Embedding + head segments live on the first/last pipeline stage; for
    # per-GPU averages under PP > 1 they amortize away.  With sequence
    # parallelism, the vocab-parallel head's logits and the embedding
    # output are sharded across the TP group as well.
    emb_head_shard = par.tp if par.sequence_parallel else 1
    if par.pp == 1:
        act += embedding_activation_bytes(config, batch) / emb_head_shard
        if include_logits:
            act += logits_activation_bytes(config, batch) / emb_head_shard
            head_flops = 2.0 * batch * config.seq_len * config.hidden * config.vocab_size / par.tp
            flops += 3 * head_flops
            model = timing if timing is not None else KernelTimingModel(gpu)
            head_time = model.kernel_time(head_flops, logits_activation_bytes(config, batch), batch_size=batch)
            fwd += head_time
            bwd += 2 * head_time

    act_per_mb = int(act)
    fwd_total = fwd * num_microbatches
    bwd_total = bwd * num_microbatches
    compute = fwd_total + bwd_total

    bubble = 0.0
    if par.pp > 1:
        frac_bubble = ideal_bubble_fraction(par.pp, num_microbatches)
        bubble = compute * frac_bubble / (1 - frac_bubble)

    total_params = model_param_count(config)
    params_per_gpu = par.params_per_gpu(total_params)
    update = weight_update_time(params_per_gpu, gpu, dtype_bytes=config.dtype_bytes)
    accumulation = (num_microbatches - 1) * accumulation_time_per_microbatch(
        params_per_gpu, gpu, dtype_bytes=config.dtype_bytes
    )

    step_time = compute + bubble + update + accumulation
    return StepPerf(
        forward_time_s=fwd_total,
        backward_time_s=bwd_total,
        weight_update_time_s=update,
        accumulation_time_s=accumulation,
        bubble_time_s=bubble,
        step_time_s=step_time,
        activation_bytes_per_microbatch=act_per_mb,
        activation_bytes_per_step=act_per_mb * num_microbatches,
        algorithmic_flops=flops * num_microbatches,
        params_per_gpu=params_per_gpu,
    )


@dataclass(frozen=True)
class TierTransferModel:
    """Per-step transfer projection for tiered (GPU -> CPU -> SSD) offload.

    The bounded pinned pool absorbs the first ``cpu_pool_bytes`` of each
    step's offload traffic at PCIe speed; only the spill beyond it pays
    SSD bandwidth.  The two channels run concurrently (separate store
    pools in the functional engine, separate lanes in the simulator), so
    the transfer completes when the slower channel finishes.  This is the
    analytic core behind the ``--cpu-pool-bytes`` sweeps: it answers how
    much pool shrinks the *required SSD write bandwidth* of Table III.

    Attributes:
        cpu_pool_bytes: CPU-tier capacity available to one step.
        ssd_bandwidth: SSD channel bandwidth (bytes/s).
        cpu_bandwidth: CPU channel bandwidth; defaults to the PCIe 4.0
            x16 GPU link, the ceiling for host-pinned transfers.
    """

    cpu_pool_bytes: int
    ssd_bandwidth: float
    cpu_bandwidth: float = GPU_LINK_GEN4_X16.bandwidth

    def __post_init__(self) -> None:
        if self.cpu_pool_bytes < 0:
            raise ValueError(f"cpu_pool_bytes must be >= 0: {self.cpu_pool_bytes}")
        if self.ssd_bandwidth <= 0 or self.cpu_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")

    def split(self, total_bytes: int) -> Tuple[int, int]:
        """(cpu_bytes, ssd_bytes) for one step's offload traffic."""
        cpu_bytes = min(total_bytes, self.cpu_pool_bytes)
        return cpu_bytes, total_bytes - cpu_bytes

    def transfer_time(self, total_bytes: int) -> float:
        """Time for the concurrent two-channel transfer to complete."""
        cpu_bytes, ssd_bytes = self.split(total_bytes)
        return max(cpu_bytes / self.cpu_bandwidth, ssd_bytes / self.ssd_bandwidth)

    def effective_bandwidth(self, total_bytes: int) -> float:
        """Aggregate offload bandwidth the hierarchy delivers."""
        time_s = self.transfer_time(total_bytes)
        return total_bytes / time_s if time_s > 0 else float("inf")

    def required_ssd_write_bandwidth(self, total_bytes: int, step_time_s: float) -> float:
        """Table III's requirement, reduced by the pool's absorption: the
        SSD must only sustain the spilled bytes over half the step."""
        _, ssd_bytes = self.split(total_bytes)
        return ssd_bytes / (step_time_s / 2.0)


def model_param_count(config: ModelConfig) -> float:
    """Total parameter count: layers + embeddings + LM head."""
    num_cross = config.num_decoder_layers if config.arch == "t5" else 0
    params = layer_param_count(config) * (config.num_layers - num_cross)
    if num_cross:
        params += layer_param_count(config, cross_attention=True) * num_cross
    params += 2 * config.vocab_size * config.hidden  # embedding + head
    params += config.seq_len * config.hidden  # positions
    return params
