"""Hardware and workload configurations used by the paper's projections.

Table II (the evaluation machine), the Fig. 5 large-scale configurations
(Megatron 175B / 350B and their ZeRO-3 DeepSpeed variants at 384-2240
GPUs), and the per-GPU SSD provisioning assumption (4x Samsung 980 PRO).

The 175B layout follows Megatron-LM's published GPT-3 config (L=96,
H=12288, TP=8, PP=12 -> 96-GPU model instance; DP in {4, 8, 16} gives the
384 / 768 / 1536 GPU points).  The 350B model scales the hidden dimension
to 16384 with L=105 (TP=8, PP=14 -> 112-GPU instance; DP in {5, 10, 20}
gives 560 / 1120 / 2240).  ZeRO-3 variants shard weights across DP ranks
with TP=8 and no PP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.device.gpu import A100_PCIE_40GB, GPUSpec
from repro.device.ssd import SAMSUNG_980_PRO_1TB, SSDSpec
from repro.models.config import ModelConfig
from repro.train.parallel import ParallelismConfig, ZeroStage

#: GPT-3-scale decoder-only configs used in Fig. 5.
MEGATRON_175B = ModelConfig(
    arch="gpt", hidden=12288, num_layers=96, vocab_size=50257, seq_len=2048
)
MEGATRON_350B = ModelConfig(
    arch="gpt", hidden=16384, num_layers=105, vocab_size=50257, seq_len=2048
)

#: SSDs assumed per GPU in the Fig. 5 viability projection.
FIG5_SSDS_PER_GPU = 4
FIG5_SSD_SPEC: SSDSpec = SAMSUNG_980_PRO_1TB


@dataclass(frozen=True)
class Fig5Config:
    """One bar group of Fig. 5.

    ``efficiency_derate`` calibrates achieved GEMM efficiency to published
    large-scale measurements ("we use measured data from Megatron-LM",
    Sec. III-D): the locked-base-clock A100 PCIe runs at ~0.7 of the
    SXM-boost efficiency the roofline assumes, and ZeRO-3's parameter
    all-gathers interfere with compute for roughly another 2x, growing
    mildly with the data-parallel degree.
    """

    label: str
    model: ModelConfig
    parallelism: ParallelismConfig
    microbatch_size: int
    num_microbatches: int
    efficiency_derate: float = 1.0

    @property
    def num_gpus(self) -> int:
        return self.parallelism.num_gpus


#: Base-clock A100 PCIe vs roofline efficiency (Table II locks clocks).
BASE_CLOCK_DERATE = 0.7


def _megatron(model: ModelConfig, pp: int, dp: int, mbs: int, mbcount: int) -> Fig5Config:
    par = ParallelismConfig(tp=8, pp=pp, dp=dp)
    name = "Megatron 175B" if model is MEGATRON_175B else "Megatron 350B"
    return Fig5Config(
        label=f"{name} @ {par.num_gpus} GPUs",
        model=model,
        parallelism=par,
        microbatch_size=mbs,
        num_microbatches=mbcount,
        efficiency_derate=BASE_CLOCK_DERATE,
    )


def _zero3(model: ModelConfig, dp: int, mbs: int) -> Fig5Config:
    import math

    par = ParallelismConfig(tp=8, pp=1, dp=dp, zero_stage=ZeroStage.WEIGHTS)
    name = "ZeRO3 175B" if model is MEGATRON_175B else "ZeRO3 350B"
    zero_derate = 0.5 / (1.0 + 0.06 * math.log2(dp))
    return Fig5Config(
        label=f"{name} @ {par.num_gpus} GPUs",
        model=model,
        parallelism=par,
        microbatch_size=mbs,
        num_microbatches=1,
        efficiency_derate=BASE_CLOCK_DERATE * zero_derate,
    )


#: The twelve configurations of Fig. 5: micro-batch sizes "range from 8 to
#: 32"; the Megatron micro-batch count keeps the global batch in the
#: BLOOM/GPT-3 regime (~1.5-4k sequences); ZeRO-3 runs one micro-batch
#: (no PP, so gradient accumulation adds nothing to the offload pattern).
FIG5_CONFIGS: List[Fig5Config] = [
    _megatron(MEGATRON_175B, pp=12, dp=4, mbs=8, mbcount=48),
    _megatron(MEGATRON_175B, pp=12, dp=8, mbs=8, mbcount=24),
    _megatron(MEGATRON_175B, pp=12, dp=16, mbs=8, mbcount=12),
    _megatron(MEGATRON_350B, pp=14, dp=5, mbs=8, mbcount=56),
    _megatron(MEGATRON_350B, pp=14, dp=10, mbs=8, mbcount=28),
    _megatron(MEGATRON_350B, pp=14, dp=20, mbs=8, mbcount=14),
    _zero3(MEGATRON_175B, dp=48, mbs=32),
    _zero3(MEGATRON_175B, dp=96, mbs=32),
    _zero3(MEGATRON_175B, dp=192, mbs=32),
    _zero3(MEGATRON_350B, dp=80, mbs=16),
    _zero3(MEGATRON_350B, dp=140, mbs=16),
    _zero3(MEGATRON_350B, dp=280, mbs=16),
]


#: Table II: the evaluation machine.
@dataclass(frozen=True)
class EvaluationSystem:
    gpu: GPUSpec
    num_gpus: int
    ssd: SSDSpec
    raid0_arrays: Tuple[int, ...]  # SSDs per array, one array per GPU


from repro.device.ssd import INTEL_OPTANE_P5800X_1600GB  # noqa: E402

TABLE2_SYSTEM = EvaluationSystem(
    gpu=A100_PCIE_40GB,
    num_gpus=2,
    ssd=INTEL_OPTANE_P5800X_1600GB,
    raid0_arrays=(3, 4),
)
