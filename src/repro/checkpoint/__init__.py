"""Activation checkpointing (the recomputation baseline).

The paper compares SSDTrain against "layerwise full recomputation":
checkpoint every transformer layer, keep only the layer inputs, and re-run
the layer's forward inside backward.  See
:func:`~repro.checkpoint.checkpoint.checkpoint`.
"""

from repro.checkpoint.checkpoint import checkpoint, checkpoint_sequential
from repro.checkpoint.selective import (
    attention_intermediate_bytes,
    selective_checkpoint_attention,
    selective_checkpoint_savings,
)

__all__ = [
    "checkpoint",
    "checkpoint_sequential",
    "selective_checkpoint_attention",
    "attention_intermediate_bytes",
    "selective_checkpoint_savings",
]
