"""Selective checkpointing (Megatron [8]) and why FlashAttention voids it.

Before FlashAttention, Megatron's *selective* checkpointing recomputed only
the core-attention module, discarding the O(S^2) probability/score tensors
that dominated activation memory at long sequence lengths.  "As we use
FlashAttention, the core attention module is done in one kernel,
eliminating these intermediate tensors.  The effect of selective
checkpointing with FlashAttention has negligible impact on performance and
peak memory usage" (Sec. IV-C).

This module provides both pieces so the claim is checkable:

- :func:`selective_checkpoint_attention` wraps a
  :class:`~repro.nn.attention.MultiHeadAttention`'s core so it is
  recomputed in backward;
- :func:`attention_intermediate_bytes` quantifies what selective
  checkpointing *would* save with and without a fused attention kernel.
"""

from __future__ import annotations

from repro.checkpoint.checkpoint import checkpoint
from repro.nn.attention import MultiHeadAttention
from repro.tensor import ops
from repro.tensor.tensor import Tensor


def selective_checkpoint_attention(attention: MultiHeadAttention) -> MultiHeadAttention:
    """Wrap the module's core attention in a checkpoint (in place).

    With the FlashAttention core this only re-saves Q/K/V (which the fused
    op saves anyway) — the measurable effect is negligible, reproducing the
    Sec. IV-C observation.  Returns the module for chaining.
    """
    original_core = ops.flash_attention

    def recomputed_core(q: Tensor, k: Tensor, v: Tensor, causal: bool = False, scale=None) -> Tensor:
        def run(q_, k_, v_):
            return original_core(q_, k_, v_, causal=causal, scale=scale)

        return checkpoint(run, q, k, v)

    attention._core_attention = recomputed_core  # used by forward below
    return attention


def attention_intermediate_bytes(
    batch: int,
    heads: int,
    seq_len: int,
    head_dim: int,
    dtype_bytes: int = 2,
    fused: bool = True,
) -> int:
    """Activation bytes the attention core registers on the graph.

    Unfused attention saves the score matrix and the probability matrix —
    two (B, H, S, S) tensors; the fused kernel saves only Q, K, V
    (3 x B, H, S, d).  The difference is exactly what selective
    checkpointing used to reclaim.
    """
    if min(batch, heads, seq_len, head_dim) < 1:
        raise ValueError("all dimensions must be positive")
    qkv = 3 * batch * heads * seq_len * head_dim * dtype_bytes
    if fused:
        return qkv
    squared = 2 * batch * heads * seq_len * seq_len * dtype_bytes
    return qkv + squared


def selective_checkpoint_savings(
    batch: int,
    heads: int,
    seq_len: int,
    head_dim: int,
    dtype_bytes: int = 2,
    fused: bool = True,
) -> float:
    """Fraction of core-attention activation memory selective
    checkpointing removes.  ~0 with a fused kernel; approaches 1 for long
    sequences without one."""
    full = attention_intermediate_bytes(batch, heads, seq_len, head_dim, dtype_bytes, fused)
    if not fused:
        kept = attention_intermediate_bytes(batch, heads, seq_len, head_dim, dtype_bytes, True)
        return 1.0 - kept / full
    return 0.0
