"""Gradient/activation checkpointing, PyTorch-style.

``checkpoint(fn, *inputs)`` runs ``fn`` without building a graph (so none
of its internal activations are saved) and re-executes it during backward
to reproduce them.  Two integration points matter for SSDTrain:

- the *inputs* of a checkpointed segment are saved through the regular
  pack hook, so they can themselves be offloaded;
- the recomputation runs inside backward, where the tensor cache's pack
  hook sees ``in_backward`` and keeps the recomputed activations in GPU
  memory instead of offloading them again (Alg. 1 line 5);
- recomputed FLOPs are recorded as executed but **not algorithmic**, so
  the Fig. 7 model-throughput metric penalizes recomputation through the
  longer step time only.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.tensor import flags
from repro.tensor.function import BackwardNode, FunctionContext, run_backward
from repro.tensor.tensor import Tensor


class _CheckpointNode(BackwardNode):
    """Backward node that recomputes a segment instead of loading saves."""

    __slots__ = ("run_fn", "num_inputs")

    def __init__(self, run_fn: Callable, inputs: Sequence[Any]) -> None:
        ctx = FunctionContext()
        tensor_inputs = [a for a in inputs if isinstance(a, Tensor)]
        ctx.save_for_backward(*[t.detach() for t in tensor_inputs])
        ctx.input_spec = [
            (isinstance(a, Tensor), a.requires_grad if isinstance(a, Tensor) else False)
            for a in inputs
        ]
        ctx.non_tensor_args = [a for a in inputs if not isinstance(a, Tensor)]
        edges = [
            a._grad_edge() if isinstance(a, Tensor) and a.requires_grad else None
            for a in inputs
        ]
        super().__init__(_CheckpointNode, ctx, edges)
        self.run_fn = run_fn
        self.num_inputs = len(inputs)
        self.name = "Checkpoint"

    def run_backward(self, grad_output: np.ndarray) -> Tuple[Optional[np.ndarray], ...]:
        for cb in self.pre_callbacks:
            cb(grad_output)
        saved = list(self.ctx.saved_tensors)
        non_tensors = list(self.ctx.non_tensor_args)
        rebuilt: List[Any] = []
        leaves: List[Optional[Tensor]] = []
        for is_tensor, requires_grad in self.ctx.input_spec:
            if is_tensor:
                base = saved.pop(0)
                leaf = Tensor(
                    base.data,
                    storage=base.storage,
                    requires_grad=requires_grad,
                )
                rebuilt.append(leaf)
                leaves.append(leaf if requires_grad else None)
            else:
                rebuilt.append(non_tensors.pop(0))
                leaves.append(None)
        # Re-run the segment with grad enabled; recomputation executes
        # inside backward, which the tensor cache and FLOP accounting see.
        with flags.set_flag("grad_enabled", True):
            with flags.recompute_region():
                output = self.run_fn(*rebuilt)
        if not isinstance(output, Tensor):
            raise TypeError("checkpointed function must return a single Tensor")
        if output.grad_fn is None:
            raise RuntimeError(
                "checkpointed function built no graph on recompute; "
                "did it detach its output?"
            )
        run_backward(output.grad_fn, grad_output)
        grads: List[Optional[np.ndarray]] = []
        for leaf in leaves:
            if leaf is not None and leaf.grad is not None:
                grads.append(leaf.grad.data)
            else:
                grads.append(None)
        for cb in self.post_callbacks:
            cb(tuple(grads))
        self.ctx.release()
        return tuple(grads)


def checkpoint(run_fn: Callable, *inputs: Any) -> Tensor:
    """Checkpoint one segment.

    Runs ``run_fn(*inputs)`` under ``no_grad`` (activations inside are not
    saved) and splices a recompute node into the graph.

    Args:
        run_fn: a module or function mapping inputs to a single Tensor.
        inputs: positional arguments; Tensor inputs are the checkpoint's
            saved state.

    Returns:
        The segment output, connected to the autograd graph through the
        recompute node.
    """
    if not flags.grad_enabled():
        return run_fn(*inputs)
    with flags.set_flag("grad_enabled", False):
        output = run_fn(*inputs)
    if not isinstance(output, Tensor):
        raise TypeError("checkpointed function must return a single Tensor")
    tensor_inputs = [a for a in inputs if isinstance(a, Tensor)]
    if any(t.requires_grad for t in tensor_inputs):
        node = _CheckpointNode(run_fn, inputs)
        output.requires_grad = True
        output.grad_fn = node
    return output


def checkpoint_sequential(segments: Sequence[Callable], x: Tensor) -> Tensor:
    """Layerwise full recomputation over a stack of layers (Fig. 7's
    "Recompute" strategy): each layer is its own checkpoint segment, so
    only the per-layer inputs stay resident."""
    for segment in segments:
        x = checkpoint(segment, x)
    return x
