"""Tensor-parallel execution with per-rank tensor caches.

The evaluation machine runs the two A100s in tensor parallelism, each with
a dedicated RAID0 array (Table II), and SSDTrain "extends naturally to
distributed settings ... by working below PyTorch and keeping each
process' activities local" (Sec. III-A).  This package provides the
Megatron-style sharded layers and the lockstep collective primitives to
reproduce that setup in one process: every rank owns its weight shards,
its own tensor cache, and its own offload target.
"""

from repro.distributed.tp import (
    ColumnParallelLinear,
    RowParallelLinear,
    TensorParallelMLP,
    all_reduce,
    shard_columns,
    shard_rows,
)

__all__ = [
    "all_reduce",
    "shard_columns",
    "shard_rows",
    "ColumnParallelLinear",
    "RowParallelLinear",
    "TensorParallelMLP",
]
