"""Megatron-style tensor parallelism over per-rank tensor lists.

Ranks execute in lockstep within one process: a "distributed tensor" is a
list with one :class:`~repro.tensor.tensor.Tensor` per rank.  Collectives
are ordinary differentiable ops — an all-reduce is a chain of adds, whose
autograd backward is exactly the broadcast the real collective needs — so
offloading, hooks, and the tensor caches see nothing unusual.

Layer layout follows Megatron-LM:

- :class:`ColumnParallelLinear` shards the weight's *output* dimension;
  each rank computes a slice of the output (no communication in forward).
- :class:`RowParallelLinear` shards the *input* dimension; each rank
  computes a partial product and the results are all-reduced.
- :class:`TensorParallelMLP` chains the two (fc_in column-, fc_out
  row-parallel), needing exactly one all-reduce in forward and one in
  backward — the communication pattern priced by
  :meth:`~repro.train.parallel.ParallelismConfig.tp_allreduce_bytes_per_layer`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.activations import GELU
from repro.tensor import ops
from repro.tensor.module import Module, ModuleList
from repro.tensor.tensor import Parameter, Tensor


def all_reduce(parts: Sequence[Tensor]) -> Tensor:
    """Sum the per-rank partial tensors (differentiable).

    Backward broadcasts the gradient to every rank's partial — the
    autograd of addition *is* the all-reduce backward rule.
    """
    if not parts:
        raise ValueError("all_reduce needs at least one tensor")
    total = parts[0]
    for part in parts[1:]:
        total = ops.add(total, part)
    return total


def shard_columns(weight: np.ndarray, world_size: int) -> List[np.ndarray]:
    """Split a (out, in) weight along the output dimension."""
    if weight.shape[0] % world_size != 0:
        raise ValueError(
            f"output dim {weight.shape[0]} not divisible by {world_size}"
        )
    return [np.ascontiguousarray(s) for s in np.split(weight, world_size, axis=0)]


def shard_rows(weight: np.ndarray, world_size: int) -> List[np.ndarray]:
    """Split a (out, in) weight along the input dimension."""
    if weight.shape[1] % world_size != 0:
        raise ValueError(
            f"input dim {weight.shape[1]} not divisible by {world_size}"
        )
    return [np.ascontiguousarray(s) for s in np.split(weight, world_size, axis=1)]


class _RankLinear(Module):
    """One rank's shard of a parallel linear layer."""

    def __init__(self, weight_shard: np.ndarray, bias_shard: Optional[np.ndarray]) -> None:
        super().__init__()
        self.weight = Parameter(weight_shard)
        self.bias = Parameter(bias_shard) if bias_shard is not None else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class ColumnParallelLinear(Module):
    """Output-sharded linear: rank r computes columns ``[r*k, (r+1)*k)``.

    ``forward`` maps one replicated input per rank to one output shard per
    rank; ``gather`` concatenates shards when a full tensor is needed.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        world_size: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1: {world_size}")
        self.in_features = in_features
        self.out_features = out_features
        self.world_size = world_size
        gen = rng if rng is not None else np.random.default_rng()
        std = 1.0 / np.sqrt(in_features)
        full_weight = (gen.standard_normal((out_features, in_features)) * std).astype(np.float32)
        full_bias = np.zeros(out_features, dtype=np.float32) if bias else None
        weight_shards = shard_columns(full_weight, world_size)
        bias_shards = (
            np.split(full_bias, world_size) if full_bias is not None else [None] * world_size
        )
        self.ranks = ModuleList(
            _RankLinear(w, b) for w, b in zip(weight_shards, bias_shards)
        )

    def forward(self, inputs: Sequence[Tensor]) -> List[Tensor]:
        if len(inputs) != self.world_size:
            raise ValueError(f"expected {self.world_size} rank inputs, got {len(inputs)}")
        return [rank(x) for rank, x in zip(self.ranks, inputs)]

    def gather(self, outputs: Sequence[Tensor]) -> Tensor:
        result = outputs[0]
        for shard in outputs[1:]:
            result = ops.concat(result, shard, axis=result.ndim - 1)
        return result


class RowParallelLinear(Module):
    """Input-sharded linear: partial products all-reduce into the output."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        world_size: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1: {world_size}")
        self.in_features = in_features
        self.out_features = out_features
        self.world_size = world_size
        gen = rng if rng is not None else np.random.default_rng()
        std = 1.0 / np.sqrt(in_features)
        full_weight = (gen.standard_normal((out_features, in_features)) * std).astype(np.float32)
        weight_shards = shard_rows(full_weight, world_size)
        # The bias is applied once, after the reduction (Megatron keeps it
        # on one rank).
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None
        self.ranks = ModuleList(_RankLinear(w, None) for w in weight_shards)

    def forward(self, inputs: Sequence[Tensor]) -> Tensor:
        if len(inputs) != self.world_size:
            raise ValueError(f"expected {self.world_size} rank inputs, got {len(inputs)}")
        partials = [rank(x) for rank, x in zip(self.ranks, inputs)]
        total = all_reduce(partials)
        if self.bias is not None:
            total = total + self.bias
        return total


class TensorParallelMLP(Module):
    """The Megatron MLP: column-parallel fc_in, GELU, row-parallel fc_out.

    One all-reduce in forward (fc_out) and one in backward (fc_in's input
    grad) — no gather is ever materialized for the 4x-hidden tensor, which
    is why TP shards exactly the activation entries the inventory divides
    by ``tp`` (`repro.analysis.perf_model.layer_activation_inventory`).
    """

    def __init__(
        self,
        hidden: int,
        world_size: int,
        ffn_hidden: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.hidden = hidden
        self.world_size = world_size
        self.ffn_hidden = ffn_hidden if ffn_hidden is not None else 4 * hidden
        gen = rng if rng is not None else np.random.default_rng()
        self.fc_in = ColumnParallelLinear(hidden, self.ffn_hidden, world_size, rng=gen)
        self.act = GELU()
        self.fc_out = RowParallelLinear(self.ffn_hidden, hidden, world_size, rng=gen)

    def forward(self, x: Tensor) -> Tensor:
        # Input is replicated to every rank (identity in forward; its
        # backward is the second all-reduce of the layer).
        replicated = [x for _ in range(self.world_size)]
        hidden_shards = self.fc_in(replicated)
        activated = [self.act(h) for h in hidden_shards]
        return self.fc_out(activated)

    def reference_weights(self) -> tuple:
        """The equivalent unsharded (fc_in, fc_out) weights, for tests."""
        w_in = np.concatenate([r.weight.data for r in self.fc_in.ranks], axis=0)
        b_in = np.concatenate(
            [r.bias.data for r in self.fc_in.ranks if r.bias is not None]
        )
        w_out = np.concatenate([r.weight.data for r in self.fc_out.ranks], axis=1)
        b_out = self.fc_out.bias.data if self.fc_out.bias is not None else None
        return w_in, b_in, w_out, b_out
