"""Transformer layers (pre-LayerNorm, Megatron layout).

A :class:`TransformerLayer` is an attention block plus an MLP block with
residual connections.  Decoder layers add causality; T5 decoder layers add
a cross-attention block between the self-attention and the MLP
(Sec. II-A of the paper).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.activations import GELU
from repro.nn.attention import MultiHeadAttention
from repro.nn.dropout import Dropout
from repro.nn.layernorm import LayerNorm
from repro.nn.linear import Linear
from repro.tensor.module import Module
from repro.tensor.tensor import Tensor


class MLP(Module):
    """Position-wise MLP: hidden -> ffn_hidden -> hidden with GELU."""

    def __init__(
        self,
        hidden: int,
        ffn_hidden: Optional[int] = None,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        self.hidden = hidden
        self.ffn_hidden = ffn_hidden if ffn_hidden is not None else 4 * hidden
        self.fc_in = Linear(hidden, self.ffn_hidden, rng=rng, dtype=dtype)
        self.act = GELU()
        self.fc_out = Linear(self.ffn_hidden, hidden, rng=rng, dtype=dtype)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.fc_out(self.act(self.fc_in(x))))


class TransformerLayer(Module):
    """One transformer layer: [LN -> attn -> +res] then [LN -> MLP -> +res].

    Args:
        hidden: hidden dimension H.
        num_heads: attention heads (paper: head dim 128, so heads = H/128).
        causal: True for decoder-only (GPT) and T5-decoder self-attention.
        cross_attention: add a cross-attention block (T5 decoder layers).
        dropout: dropout probability applied in attention/MLP outputs.
    """

    def __init__(
        self,
        hidden: int,
        num_heads: int,
        causal: bool = False,
        cross_attention: bool = False,
        ffn_hidden: Optional[int] = None,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        self.hidden = hidden
        self.causal = causal
        self.cross_attention = cross_attention
        self.ln_attn = LayerNorm(hidden, dtype=dtype)
        self.attn = MultiHeadAttention(
            hidden, num_heads, causal=causal, dropout=dropout, rng=rng, dtype=dtype
        )
        if cross_attention:
            self.ln_cross = LayerNorm(hidden, dtype=dtype)
            self.cross_attn = MultiHeadAttention(
                hidden, num_heads, is_cross=True, dropout=dropout, rng=rng, dtype=dtype
            )
        self.ln_mlp = LayerNorm(hidden, dtype=dtype)
        self.mlp = MLP(hidden, ffn_hidden=ffn_hidden, dropout=dropout, rng=rng, dtype=dtype)

    def forward(self, x: Tensor, context: Optional[Tensor] = None) -> Tensor:
        x = x + self.attn(self.ln_attn(x))
        if self.cross_attention:
            if context is None:
                raise ValueError("cross-attention layer requires encoder context")
            x = x + self.cross_attn(self.ln_cross(x), context=context)
        x = x + self.mlp(self.ln_mlp(x))
        return x

    def __repr__(self) -> str:
        kind = "decoder" if self.causal else "encoder"
        cross = "+cross" if self.cross_attention else ""
        return f"TransformerLayer({self.hidden}, {kind}{cross})"
