"""Activation modules."""

from __future__ import annotations

from repro.tensor import ops
from repro.tensor.module import Module
from repro.tensor.tensor import Tensor


class GELU(Module):
    """tanh-approximation GELU (GPT/Megatron MLP activation)."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.gelu(x)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)
