"""Linear layer.

Stores its weight as ``(out_features, in_features)`` and computes
``x @ W.T`` like PyTorch.  The transpose is a *view sharing the weight's
storage* — this is the exact case Sec. III-C1 calls out: SSDTrain records
the identifier of the transpose before training, and because ``get_id()``
stamps the underlying storage, the transposed weight deduplicates to the
same identifier in every step.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor.module import Module
from repro.tensor.tensor import Parameter, Tensor


class Linear(Module):
    """Affine map ``y = x @ W.T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        gen = rng if rng is not None else np.random.default_rng()
        std = 1.0 / np.sqrt(in_features)
        self.weight = Parameter(
            (gen.standard_normal((out_features, in_features)) * std).astype(dtype)
        )
        if bias:
            self.bias = Parameter(np.zeros(out_features, dtype=dtype))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"
