"""Dropout module with deterministic per-call seeding.

Seeds are recorded in forward order and replayed during checkpoint
recomputation (``flags.recompute_mode``), so a recomputed segment
reproduces the exact masks of its original forward — the same guarantee
PyTorch provides by snapshotting RNG state in ``torch.utils.checkpoint``.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque

from repro.tensor import flags, ops
from repro.tensor.module import Module
from repro.tensor.tensor import Tensor

_seed_counter = itertools.count(0x5EED)


class Dropout(Module):
    """Inverted dropout, active only in training mode."""

    def __init__(self, p: float = 0.1) -> None:
        super().__init__()
        if not 0 <= p < 1:
            raise ValueError(f"dropout p must be in [0, 1): {p}")
        self.p = p
        self._seed_history: Deque[int] = deque()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        if flags.recompute_mode():
            if not self._seed_history:
                raise RuntimeError(
                    "dropout recompute without a recorded seed; was the "
                    "segment recomputed more times than it ran forward?"
                )
            seed = self._seed_history.popleft()
        else:
            seed = next(_seed_counter)
            self._seed_history.append(seed)
        return ops.dropout(x, self.p, seed)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
