"""Token and position embedding tables."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor import ops
from repro.tensor.module import Module
from repro.tensor.tensor import Parameter, Tensor


class Embedding(Module):
    """Lookup table mapping integer ids to vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        gen = rng if rng is not None else np.random.default_rng()
        self.weight = Parameter(
            (gen.standard_normal((num_embeddings, embedding_dim)) * 0.02).astype(dtype)
        )

    def forward(self, ids: Tensor) -> Tensor:
        return ops.embedding(self.weight, ids)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"
