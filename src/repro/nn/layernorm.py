"""LayerNorm module wrapping the fused layernorm op."""

from __future__ import annotations

import numpy as np

from repro.tensor import ops
from repro.tensor.module import Module
from repro.tensor.tensor import Parameter, Tensor


class LayerNorm(Module):
    """Layer normalization over the last dimension with affine parameters."""

    def __init__(self, hidden: int, eps: float = 1e-5, dtype=np.float32) -> None:
        super().__init__()
        self.hidden = hidden
        self.eps = eps
        self.gamma = Parameter(np.ones(hidden, dtype=dtype))
        self.beta = Parameter(np.zeros(hidden, dtype=dtype))

    def forward(self, x: Tensor) -> Tensor:
        return ops.layernorm(x, self.gamma, self.beta, self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.hidden})"
