"""Neural-network layers built on the tensor engine.

Follows the Megatron transformer layout the paper trains: pre-LayerNorm
blocks, a fused FlashAttention-style core attention (so the O(S^2)
intermediates never hit the autograd graph), and an MLP with a 4x hidden
expansion and GELU.
"""

from repro.nn.linear import Linear
from repro.nn.layernorm import LayerNorm
from repro.nn.embedding import Embedding
from repro.nn.dropout import Dropout
from repro.nn.activations import GELU, ReLU
from repro.nn.attention import MultiHeadAttention
from repro.nn.transformer import MLP, TransformerLayer

__all__ = [
    "Linear",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "GELU",
    "ReLU",
    "MultiHeadAttention",
    "MLP",
    "TransformerLayer",
]
