"""Multi-head attention with a FlashAttention-style fused core.

Supports self-attention (encoder: bidirectional; decoder: causal) and
cross-attention (T5 decoder attending to encoder output).  The core
attention is :func:`repro.tensor.ops.flash_attention`, which saves only
Q/K/V and recomputes probabilities in backward — the paper's evaluation
runs with FlashAttention-2, which is also why Megatron's *selective
checkpointing* has nothing left to save (Sec. IV-C).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.tensor import ops
from repro.tensor.module import Module
from repro.tensor.tensor import Tensor


class MultiHeadAttention(Module):
    """Multi-head attention block.

    Args:
        hidden: model hidden dimension.
        num_heads: number of attention heads (head_dim = hidden / num_heads;
            the paper uses head_dim 128).
        causal: apply the decoder causal mask in self-attention.
        is_cross: if True, K/V come from a separate ``context`` input.
        dropout: output dropout probability.
    """

    def __init__(
        self,
        hidden: int,
        num_heads: int,
        causal: bool = False,
        is_cross: bool = False,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        dtype=np.float32,
    ) -> None:
        super().__init__()
        if hidden % num_heads != 0:
            raise ValueError(f"hidden {hidden} not divisible by heads {num_heads}")
        self.hidden = hidden
        self.num_heads = num_heads
        self.head_dim = hidden // num_heads
        self.causal = causal
        self.is_cross = is_cross
        if is_cross:
            self.q_proj = Linear(hidden, hidden, rng=rng, dtype=dtype)
            self.kv_proj = Linear(hidden, 2 * hidden, rng=rng, dtype=dtype)
            self.qkv_proj = None
        else:
            # Fused QKV projection like Megatron's ColumnParallelLinear.
            self.qkv_proj = Linear(hidden, 3 * hidden, rng=rng, dtype=dtype)
            self.q_proj = None
            self.kv_proj = None
        self.out_proj = Linear(hidden, hidden, rng=rng, dtype=dtype)
        self.dropout = Dropout(dropout)
        # Overridable core kernel (selective checkpointing swaps this in
        # repro.checkpoint.selective; with the fused kernel it changes
        # little — the Sec. IV-C observation).
        self._core_attention = ops.flash_attention

    def _split_heads(self, x: Tensor, seq: int, batch: int) -> Tensor:
        """(B, S, H) -> (B, heads, S, head_dim)."""
        x = x.reshape(batch, seq, self.num_heads, self.head_dim)
        return x.transpose(1, 2)

    def forward(self, x: Tensor, context: Optional[Tensor] = None) -> Tensor:
        batch, seq, hidden = x.shape
        if self.is_cross:
            if context is None:
                raise ValueError("cross-attention requires a context input")
            q = self.q_proj(x)
            kv = self.kv_proj(context)
            ctx_seq = context.shape[1]
            k = ops.narrow(kv, 2, 0, self.hidden)
            v = ops.narrow(kv, 2, self.hidden, self.hidden)
            q = self._split_heads(q, seq, batch)
            k = self._split_heads(k, ctx_seq, batch)
            v = self._split_heads(v, ctx_seq, batch)
        else:
            qkv = self.qkv_proj(x)
            q = ops.narrow(qkv, 2, 0, self.hidden)
            k = ops.narrow(qkv, 2, self.hidden, self.hidden)
            v = ops.narrow(qkv, 2, 2 * self.hidden, self.hidden)
            q = self._split_heads(q, seq, batch)
            k = self._split_heads(k, seq, batch)
            v = self._split_heads(v, seq, batch)

        attn = self._core_attention(q, k, v, causal=self.causal and not self.is_cross)
        # (B, heads, S, d) -> (B, S, H)
        merged = attn.transpose(1, 2).reshape(batch, seq, hidden)
        return self.dropout(self.out_proj(merged))

    def __repr__(self) -> str:
        kind = "cross" if self.is_cross else ("causal" if self.causal else "bidir")
        return f"MultiHeadAttention({self.hidden}, heads={self.num_heads}, {kind})"
