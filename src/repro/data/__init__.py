"""Synthetic corpus and tokenizer (stand-in for the OSCAR dataset)."""

from repro.data.tokenizer import ToyTokenizer
from repro.data.dataset import SyntheticCorpus, TokenBatchLoader

__all__ = ["ToyTokenizer", "SyntheticCorpus", "TokenBatchLoader"]
