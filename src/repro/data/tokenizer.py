"""A toy whitespace/byte tokenizer.

The paper pretrains on the OSCAR corpus; this reproduction only needs token
streams with realistic shapes, so the tokenizer maps words to ids with a
hash-bucketed open vocabulary plus byte-level fallback for round-tripping.
"""

from __future__ import annotations

import hashlib
from typing import List


class ToyTokenizer:
    """Deterministic word-hash tokenizer with special tokens.

    Ids 0..3 are reserved: <pad>, <bos>, <eos>, <unk>.  Words hash into the
    remaining id space, so the same text always produces the same ids
    (deterministic batches for tests).
    """

    PAD, BOS, EOS, UNK = 0, 1, 2, 3
    _NUM_SPECIAL = 4

    def __init__(self, vocab_size: int = 50257) -> None:
        if vocab_size <= self._NUM_SPECIAL:
            raise ValueError(f"vocab too small: {vocab_size}")
        self.vocab_size = vocab_size

    def _word_id(self, word: str) -> int:
        digest = hashlib.sha256(word.encode("utf-8")).digest()
        bucket = int.from_bytes(digest[:8], "little")
        return self._NUM_SPECIAL + bucket % (self.vocab_size - self._NUM_SPECIAL)

    def encode(self, text: str, add_special: bool = True) -> List[int]:
        ids = [self._word_id(w) for w in text.split()]
        if add_special:
            return [self.BOS] + ids + [self.EOS]
        return ids

    def encode_batch(self, texts: List[str], seq_len: int) -> List[List[int]]:
        """Encode and pad/truncate each text to exactly ``seq_len`` ids."""
        batch = []
        for text in texts:
            ids = self.encode(text)[:seq_len]
            ids = ids + [self.PAD] * (seq_len - len(ids))
            batch.append(ids)
        return batch
