"""Synthetic token corpus with Zipfian unigram statistics.

Stands in for OSCAR: the training loop only needs (batch, seq_len) id
arrays and next-token targets.  Zipfian draws give a realistic loss curve
shape for the examples without shipping a corpus.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.tensor.storage import Device, cpu
from repro.tensor.tensor import Tensor


class SyntheticCorpus:
    """An infinite synthetic token stream.

    Args:
        vocab_size: vocabulary size.
        zipf_a: Zipf exponent; larger concentrates mass on frequent tokens.
        seed: RNG seed for reproducibility.
    """

    def __init__(self, vocab_size: int = 50257, zipf_a: float = 1.2, seed: int = 0) -> None:
        if vocab_size < 8:
            raise ValueError(f"vocab too small: {vocab_size}")
        self.vocab_size = vocab_size
        self.zipf_a = zipf_a
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
        weights = ranks ** (-zipf_a)
        self._probs = weights / weights.sum()

    def sample_tokens(self, batch: int, seq_len: int) -> np.ndarray:
        """Draw a (batch, seq_len) int64 array of token ids."""
        if batch < 1 or seq_len < 1:
            raise ValueError("batch and seq_len must be positive")
        flat = self._rng.choice(self.vocab_size, size=batch * seq_len, p=self._probs)
        return flat.reshape(batch, seq_len).astype(np.int64)


class TokenBatchLoader:
    """Yields (tokens, targets) batches for LM pretraining.

    Targets are the next-token shift of the inputs, matching the GPT/BERT/T5
    pretraining objective shape used in the evaluation.
    """

    def __init__(
        self,
        corpus: SyntheticCorpus,
        batch_size: int,
        seq_len: int,
        device: Device = cpu,
    ) -> None:
        self.corpus = corpus
        self.batch_size = batch_size
        self.seq_len = seq_len
        self.device = device

    def next_batch(self) -> Tuple[Tensor, Tensor]:
        ids = self.corpus.sample_tokens(self.batch_size, self.seq_len + 1)
        tokens = Tensor(ids[:, :-1].copy(), device=self.device)
        targets = Tensor(ids[:, 1:].copy(), device=self.device)
        return tokens, targets

    def __iter__(self) -> Iterator[Tuple[Tensor, Tensor]]:
        while True:
            yield self.next_batch()
