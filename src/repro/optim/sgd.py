"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.device.memory import MemoryTag
from repro.tensor.tensor import Parameter, Tensor


class SGD:
    """SGD optimizer.

    Args:
        params: parameters to optimize.
        lr: learning rate.
        momentum: momentum factor; 0 disables the velocity buffers (and
            their optimizer-state memory).
        weight_decay: L2 penalty coefficient.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive: {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, Tensor] = {}

    def step(self) -> None:
        """Apply one update to every parameter with a gradient."""
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad.data
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                key = id(p)
                if key not in self._velocity:
                    self._velocity[key] = Tensor(
                        np.zeros_like(p.data),
                        device=p.device,
                        tag=MemoryTag.OPTIMIZER,
                    )
                vel = self._velocity[key]
                vel.data *= self.momentum
                vel.data += grad
                grad = vel.data
            p.data -= self.lr * grad

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None
