"""Optimizers.

The paper's evaluation uses SGD (to shrink optimizer state on 40 GB A100s,
Sec. IV-A); Adam is provided for completeness and for the optimizer-state
terms of the memory model.  Optimizer state is charged to the OPTIMIZER
memory tag so its footprint is visible in ledger snapshots.
"""

from repro.optim.sgd import SGD
from repro.optim.adam import Adam

__all__ = ["SGD", "Adam"]
