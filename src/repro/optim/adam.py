"""Adam optimizer (two FP32 state tensors per parameter)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.device.memory import MemoryTag
from repro.tensor.tensor import Parameter, Tensor


class Adam:
    """Adam with bias correction.

    Keeps first/second-moment buffers in FP32 charged to the OPTIMIZER tag,
    so ledger snapshots reflect the 8-bytes-per-parameter state the paper's
    memory budget discussion assumes for Adam-based training.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive: {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: Dict[int, Tensor] = {}
        self._v: Dict[int, Tensor] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bc1 = 1.0 - self.beta1**t
        bc2 = 1.0 - self.beta2**t
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad.data.astype(np.float32)
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data.astype(np.float32)
            key = id(p)
            if key not in self._m:
                self._m[key] = Tensor(
                    np.zeros(p.shape, dtype=np.float32),
                    device=p.device,
                    tag=MemoryTag.OPTIMIZER,
                )
                self._v[key] = Tensor(
                    np.zeros(p.shape, dtype=np.float32),
                    device=p.device,
                    tag=MemoryTag.OPTIMIZER,
                )
            m, v = self._m[key], self._v[key]
            m.data *= self.beta1
            m.data += (1 - self.beta1) * grad
            v.data *= self.beta2
            v.data += (1 - self.beta2) * grad * grad
            update = (m.data / bc1) / (np.sqrt(v.data / bc2) + self.eps)
            p.data -= (self.lr * update).astype(p.dtype)

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None
