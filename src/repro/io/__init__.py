"""Asynchronous I/O substrate for activation offloading.

- :class:`~repro.io.scheduler.IOScheduler` — priority-aware scheduler with
  per-tier lanes, deadline promotion, store cancellation and write
  coalescing; the cache's I/O spine.
- :class:`~repro.io.aio.AsyncIOPool` — FIFO worker pool (the paper's tensor
  cache runs one pool for stores and one for loads, Sec. III-C2; kept as
  the baseline the scheduler is measured against).
- :class:`~repro.io.filestore.TensorFileStore` — real file-backed tensor
  persistence with optional bandwidth throttling and SSD wear accounting.
- :class:`~repro.io.chunkstore.ChunkedTensorStore` — chunk-coalescing
  variant: many small tensors per fixed-size chunk file, one sequential
  write per chunk, refcounted space reclaim.
- :mod:`~repro.io.gds` — GPUDirect Storage path model: direct GPU<->SSD
  transfers vs. a CPU bounce buffer, plus the CUDA-malloc-hook registration
  emulation (Sec. III-A).
- :mod:`~repro.io.errors` — the typed I/O failure taxonomy
  (transient / permanent / integrity) and the retry classification rule.
- :mod:`~repro.io.faults` — seeded deterministic fault injection
  (:class:`FaultPlan` / :class:`FaultInjector`): the chaos harness that
  proves the retry, checksum, and tier-failover recovery paths.
- :mod:`~repro.io.buffers` — the zero-copy data plane's allocator:
  :class:`BufferArena` (size-class-binned pool of reusable host buffers
  with explicit lease/release) plus the copy-count telemetry that makes
  the eliminated copies measurable.
- :mod:`~repro.io.tenancy` — multi-tenant QoS layer:
  :class:`TenantContext` / :class:`TenantRegistry` (weights, byte and
  bandwidth quotas, admission) plus the thread-local tenant scope that
  attributes every store/load to its owning job.
- :mod:`~repro.io.uring` — the batched submission/completion-queue lane
  backend: vectored multi-request submissions over a pre-opened FD
  table, a dedicated completion reaper, an ``O_DIRECT``-aligned write
  path and the simulated GPUDirect-Storage lane
  (:class:`GDSSimBackend`); :class:`~repro.io.aio.ThreadBackend` is the
  default blocking model behind the same :class:`~repro.io.aio.IOBackend`
  interface.
"""

from repro.io.aio import (
    AsyncIOPool,
    IOBackend,
    IOJob,
    IOLaneStats,
    ThreadBackend,
    count_syscalls,
    syscall_tape,
)
from repro.io.buffers import (
    ArenaStats,
    BufferArena,
    BufferLease,
    CopyCounter,
    DataPlaneStats,
)
from repro.io.chunkstore import ChunkedTensorStore, DEFAULT_CHUNK_BYTES
from repro.io.errors import (
    IntegrityError,
    PermanentIOError,
    TransientIOError,
    is_retryable,
    retry_call,
)
from repro.io.faults import FaultInjector, FaultPlan, inject_faults
from repro.io.filestore import TensorFileStore
from repro.io.gds import BounceBufferPath, DirectGDSPath, GDSRegistry
from repro.io.scheduler import (
    ChannelWindow,
    IORequest,
    IOScheduler,
    LaneHealthTracker,
    Priority,
    SchedulerStats,
)
from repro.io.tenancy import (
    DEFAULT_TENANT,
    TenantContext,
    TenantQuotaError,
    TenantRegistry,
    TenantStats,
    current_tenant,
    jain_index,
    tenant_scope,
)
from repro.io.uring import (
    FDTable,
    GDSSimBackend,
    IOContext,
    UringBackend,
    current_io_context,
    io_context,
)

__all__ = [
    "AsyncIOPool",
    "IOBackend",
    "IOJob",
    "IOLaneStats",
    "ThreadBackend",
    "UringBackend",
    "GDSSimBackend",
    "FDTable",
    "IOContext",
    "current_io_context",
    "io_context",
    "count_syscalls",
    "syscall_tape",
    "ArenaStats",
    "BufferArena",
    "BufferLease",
    "CopyCounter",
    "DataPlaneStats",
    "IORequest",
    "IOScheduler",
    "LaneHealthTracker",
    "Priority",
    "SchedulerStats",
    "ChannelWindow",
    "TensorFileStore",
    "ChunkedTensorStore",
    "DEFAULT_CHUNK_BYTES",
    "GDSRegistry",
    "DirectGDSPath",
    "BounceBufferPath",
    "TransientIOError",
    "PermanentIOError",
    "IntegrityError",
    "is_retryable",
    "retry_call",
    "FaultPlan",
    "FaultInjector",
    "inject_faults",
    "DEFAULT_TENANT",
    "TenantContext",
    "TenantQuotaError",
    "TenantRegistry",
    "TenantStats",
    "current_tenant",
    "jain_index",
    "tenant_scope",
]
