"""Priority-aware I/O scheduler: the successor of the two FIFO pools.

The paper's tensor cache drives all traffic through two strictly FIFO
worker pools (Sec. III-C2, :class:`~repro.io.aio.AsyncIOPool`).  Under
load that design inverts priorities: a backlog of low-urgency stores can
starve the loads sitting on the backward critical path.  This module
replaces the pools with one :class:`IOScheduler` that understands *what*
each request is for:

- **per-tier lanes** — every storage tier (``"ssd"``, ``"cpu"``) gets its
  own worker group and request queue, modelling that PCIe traffic to host
  memory and NVMe queue depth are independent resources.  Store and load
  channels of a tier share its lane, the way reads and writes share one
  NVMe submission stream;
- **priority classes** — lanes dequeue by :class:`Priority`:
  backward-blocking loads > prefetch loads > tier demotions > stores.
  A blocking load submitted behind N queued stores runs next, not last;
- **deadline promotion** — a pending prefetch load is re-queued as
  BLOCKING_LOAD when its segment's backward arrives
  (:meth:`IOScheduler.promote`), so urgency follows the training
  schedule instead of submission order;
- **store cancellation** — a store whose tensor was already consumed via
  data forwarding is cancelled while still PENDING
  (:meth:`~repro.io.aio.IOJob.cancel`), reclaiming its queue slot and
  the SSD write it would have issued;
- **write coalescing** — a worker that dequeues a small store drains the
  adjacent small stores queued behind it and runs them back-to-back as
  one batch, so a :class:`~repro.io.chunkstore.ChunkedTensorStore`
  backend fills one chunk with one uninterrupted submission instead of
  interleaving chunk fragments with higher-priority work;
- **completion telemetry** — every executed request is timed, and the
  per-(lane, channel) aggregates (bytes moved, channel busy seconds,
  queue wait) are exported through
  :meth:`IOScheduler.consume_completion_stats`.  This is the feedback
  signal the online adaptive controller
  (:mod:`repro.core.autotune`) turns into live bandwidth estimates.

``fifo=True`` collapses every class into submission order — the paper's
original behaviour — which keeps an apples-to-apples baseline for the
priority-vs-FIFO comparison in benchmarks and tests.

**Failure model** (see :mod:`repro.io.errors` for the taxonomy and
``docs/architecture.md`` §6 for the map): a request whose body raises is
never allowed to take a lane worker down with it — the worker loop
survives any job exception (FAILED is a first-class terminal state with
exact accounting: ``submitted == executed + failed + cancelled`` once
drained, and the blocking waiter sees the error instead of a hang),
retryable errors are re-attempted within the request's bounded
retry-with-backoff budget before failing, and every outcome feeds the
per-lane :class:`LaneHealthTracker` — the signal the tiered offloader
uses to fail a dead SSD over to the CPU tier and the adaptive controller
uses to trim the budget on a degraded lane.
"""

from __future__ import annotations

import enum
import heapq
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.io.aio import IOJob, JobState
from repro.io.errors import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_RETRY_BACKOFF_S,
    PermanentIOError,
    is_device_error,
)

logger = logging.getLogger(__name__)

#: Default cap on the total bytes of one coalesced store batch.
DEFAULT_COALESCE_BYTES = 1 << 20


class Priority(enum.IntEnum):
    """Dequeue classes, most urgent first (lower value wins)."""

    BLOCKING_LOAD = 0   # backward is waiting on this tensor right now
    PREFETCH_LOAD = 1   # look-ahead load; needed soon, not yet
    DEMOTION = 2        # CPU -> SSD spill; pool space already reclaimed
    STORE = 3           # forward-pass offload; deadline is the step end


#: Request kinds (the channel of the paper's two pools, plus demotions).
REQUEST_KINDS = ("store", "load", "demote")


class IORequest(IOJob):
    """A typed unit of I/O work: what, how big, which lane, how urgent.

    Extends :class:`~repro.io.aio.IOJob` (state machine, completion event,
    done callbacks, cancellation) with the scheduling metadata the lanes
    dequeue by.  ``priority`` is mutated only by
    :meth:`IOScheduler.promote` while the request is PENDING.
    """

    def __init__(
        self,
        fn: Callable[[], object],
        *,
        kind: str,
        priority: Priority,
        tensor_id: str = "",
        nbytes: int = 0,
        lane: str = "ssd",
        label: str = "",
        max_retries: Optional[int] = None,
        retry_backoff_s: Optional[float] = None,
        lease=None,
    ) -> None:
        if kind not in REQUEST_KINDS:
            raise ValueError(f"unknown request kind {kind!r}; expected one of {REQUEST_KINDS}")
        super().__init__(fn, label=label or f"{kind}:{tensor_id}")
        # None = inherit the scheduler's retry policy at submit time; an
        # explicit value (0 opts out — e.g. stateful demotion bodies that
        # retry internally) always wins.
        self._max_retries_override = max_retries
        self._retry_backoff_override = retry_backoff_s
        if max_retries is not None:
            self.max_retries = max_retries
        if retry_backoff_s is not None:
            self.retry_backoff_s = retry_backoff_s
        self.kind = kind
        self.priority = Priority(priority)
        self.tensor_id = tensor_id
        self.nbytes = int(nbytes)
        self.lane = lane
        #: True when this request ran as a trailing member of a coalesced
        #: store batch (not the batch head).  Set only once the member has
        #: actually won ``claim()`` — a batch member cancelled before the
        #: worker reached it never coalesced anything.
        self.coalesced = False
        #: Set by a body that *recovered* from an I/O failure internally
        #: (e.g. the tiered demotion writer failing a dead SSD over to
        #: the CPU tier): the request completes DONE, but the lane must
        #: still learn about the device failure it papered over.
        self.health_error: Optional[BaseException] = None
        #: Optional :class:`~repro.io.buffers.BufferLease` riding with the
        #: request (e.g. a queued demotion's parked buffer).  The
        #: scheduler releases whatever is still attached when the request
        #: reaches ANY terminal state (DONE / FAILED / CANCELLED) — no
        #: outcome may leak arena memory.  Code that wants to keep the
        #: bytes (cancellation reinstate, failover recovery) must
        #: :meth:`detach_lease` first; detach-then-decide under the
        #: owner's lock is the race-free order.
        self.lease = lease
        #: Completion telemetry, stamped by the worker loop (monotonic
        #: seconds).  ``submitted_at`` is set by :meth:`IOScheduler.submit`.
        self.submitted_at: float = 0.0
        self.started_at: float = 0.0
        self.finished_at: float = 0.0

    def detach_lease(self):
        """Atomically take ownership of the attached lease (or None)."""
        with self._lock:
            lease, self.lease = self.lease, None
        return lease


@dataclass
class SchedulerStats:
    """Cumulative counters (the benchmark / test / trace surface)."""

    submitted: int = 0
    executed: int = 0
    #: Requests submitted per priority class name.
    submitted_by_class: Dict[str, int] = field(default_factory=dict)
    cancelled: int = 0
    cancelled_stores: int = 0
    cancelled_bytes: int = 0
    #: Requests whose body failed terminally (retry budget exhausted or a
    #: non-retryable error).  Once drained the books always reconcile:
    #: ``submitted == executed + failed + cancelled``.
    failed: int = 0
    failed_bytes: int = 0
    #: Re-attempts performed across all requests (each healed transient
    #: fault is one retry that kept ``failed`` from growing).
    retries: int = 0
    promotions: int = 0
    #: Coalesced store batches with >= 2 *executed* members, and the
    #: executed members beyond each batch head (the stores that avoided a
    #: standalone submission).  Members cancelled after being claimed into
    #: a batch but before the worker reached them are not counted — they
    #: never ran, so they are cancellation wins, not coalescing wins.
    coalesced_batches: int = 0
    coalesced_requests: int = 0
    coalesced_bytes: int = 0
    #: Requests submitted carrying a buffer lease, and those leases
    #: resolved at a terminal state — released back to the arena by the
    #: scheduler, or already detached by an owner that kept the bytes
    #: (cancellation reinstate, failover recovery).  Once drained,
    #: ``leased_requests == leases_released`` — the no-leak invariant the
    #: property suite pins down.
    leased_requests: int = 0
    leases_released: int = 0


#: Channel names completion telemetry is aggregated under: stores and
#: demotions both consume a lane's write stream; loads its read stream.
CHANNELS = ("write", "read")


def _channel_of(kind: str) -> str:
    return "read" if kind == "load" else "write"


@dataclass
class ChannelWindow:
    """Executed-request aggregates for one (lane, channel) pair since the
    last :meth:`IOScheduler.consume_completion_stats` call.

    ``busy_s`` is the *union* of the channel's execution intervals —
    the wall time at least one worker was executing on the channel —
    not the per-request sum, so ``nbytes / busy_s`` stays an honest
    observed bandwidth even when several workers drain one lane
    concurrently (a sum would overcount the overlap and understate the
    bandwidth by up to the concurrency factor).  ``queued_s`` is the
    total submit-to-start wait, a direct read on how contended the lane
    was.
    """

    nbytes: int = 0
    busy_s: float = 0.0
    queued_s: float = 0.0
    count: int = 0

    def merge(self, other: "ChannelWindow") -> None:
        self.nbytes += other.nbytes
        self.busy_s += other.busy_s
        self.queued_s += other.queued_s
        self.count += other.count

    def bandwidth_bytes_per_s(self) -> Optional[float]:
        """Observed throughput, or ``None`` when the window saw no work."""
        if self.busy_s <= 0.0:
            return None
        return self.nbytes / self.busy_s


@dataclass
class LaneHealthSnapshot:
    """Point-in-time health of one lane (read-only copy)."""

    successes: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    dead: bool = False


class LaneHealthTracker:
    """Per-lane failure/success bookkeeping and the dead-lane verdict.

    Fed by the scheduler on every request completion.  A lane is marked
    **dead** the moment any request fails with a
    :class:`~repro.io.errors.PermanentIOError`, or after
    ``death_threshold`` *consecutive* terminal failures (a device that
    fails everything is dead in all but errno).  Death is sticky —
    storage does not resurrect itself; :meth:`revive` exists for
    operator-driven recovery (tests, a replaced device).

    Two consumer surfaces:

    - :meth:`is_dead` / :meth:`dead_lanes` — routing: the tiered
      offloader steers placements off a dead ``ssd`` lane (CPU failover);
    - :meth:`consume_failure_window` — per-step failure deltas the
      adaptive controller folds into its trim signal, the same way it
      consumes the completion-bandwidth windows.
    """

    def __init__(self, death_threshold: int = 3) -> None:
        if death_threshold < 1:
            raise ValueError(f"death_threshold must be >= 1: {death_threshold}")
        self.death_threshold = death_threshold
        self._lock = threading.Lock()
        self._lanes: Dict[str, LaneHealthSnapshot] = {}
        #: Failures per lane since the last consume_failure_window().
        self._window: Dict[str, int] = {}

    def _state(self, lane: str) -> LaneHealthSnapshot:
        state = self._lanes.get(lane)
        if state is None:
            state = self._lanes[lane] = LaneHealthSnapshot()
        return state

    def record_success(self, lane: str) -> None:
        with self._lock:
            state = self._state(lane)
            state.successes += 1
            state.consecutive_failures = 0

    def record_failure(self, lane: str, permanent: bool = False) -> None:
        with self._lock:
            state = self._state(lane)
            state.failures += 1
            state.consecutive_failures += 1
            self._window[lane] = self._window.get(lane, 0) + 1
            if permanent or state.consecutive_failures >= self.death_threshold:
                state.dead = True

    def mark_dead(self, lane: str) -> None:
        with self._lock:
            self._state(lane).dead = True

    def revive(self, lane: str) -> None:
        with self._lock:
            state = self._state(lane)
            state.dead = False
            state.consecutive_failures = 0

    def is_dead(self, lane: str) -> bool:
        with self._lock:
            state = self._lanes.get(lane)
            return state.dead if state is not None else False

    def dead_lanes(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(name for name, s in self._lanes.items() if s.dead))

    def snapshot(self) -> Dict[str, LaneHealthSnapshot]:
        with self._lock:
            return {
                lane: LaneHealthSnapshot(
                    successes=s.successes,
                    failures=s.failures,
                    consecutive_failures=s.consecutive_failures,
                    dead=s.dead,
                )
                for lane, s in self._lanes.items()
            }

    def consume_failure_window(self) -> Dict[str, int]:
        """Failures per lane since the last call (the controller's feed)."""
        with self._lock:
            window, self._window = self._window, {}
            return window


class _Lane:
    """One tier's queue + bookkeeping (workers live on the scheduler)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        #: Heap of (priority value, seq, entry priority snapshot, request).
        self.heap: List[Tuple[int, int, int, IORequest]] = []
        self.seq = 0
        self.pending = 0  # submitted, not yet finished or cancelled
        self.idle = threading.Event()
        self.idle.set()


class IOScheduler:
    """Single scheduler owning per-tier lanes with priority dequeue.

    Args:
        num_store_workers / num_load_workers: kept for drop-in
            compatibility with the two FIFO pools; their sum is each
            lane's worker count (total channel concurrency per tier is
            unchanged, but any worker may serve any class — that is what
            lets a blocking load overtake the store backlog).
        lanes: tier names to create lanes for.
        fifo: ignore priority classes and dequeue in submission order
            (the paper's baseline behaviour; promotion becomes a no-op).
        coalesce_bytes: cap on one coalesced store batch; ``0`` disables
            coalescing.  A store larger than the cap always runs alone.
        max_retries / retry_backoff_s: default bounded retry budget
            stamped onto requests that do not carry their own; retryable
            job errors (transient device faults, checksum mismatches)
            are re-attempted this many times with exponential backoff
            before the request goes FAILED.
        name: thread-name prefix.
    """

    def __init__(
        self,
        num_store_workers: int = 2,
        num_load_workers: int = 2,
        lanes: Tuple[str, ...] = ("ssd", "cpu"),
        fifo: bool = False,
        coalesce_bytes: int = DEFAULT_COALESCE_BYTES,
        max_retries: int = DEFAULT_MAX_RETRIES,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
        name: str = "ssdtrain-io",
    ) -> None:
        if num_store_workers < 1 or num_load_workers < 1:
            raise ValueError("each channel needs at least one worker")
        if not lanes:
            raise ValueError("need at least one lane")
        if coalesce_bytes < 0:
            raise ValueError(f"coalesce_bytes must be >= 0: {coalesce_bytes}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {max_retries}")
        if retry_backoff_s < 0:
            raise ValueError(f"retry_backoff_s must be >= 0: {retry_backoff_s}")
        self.name = name
        self.fifo = fifo
        self.coalesce_bytes = coalesce_bytes
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.stats = SchedulerStats()
        #: Per-lane failure/death bookkeeping fed by request completions;
        #: the tiered offloader and the adaptive controller both read it.
        self.health = LaneHealthTracker()
        self._stats_lock = threading.Lock()
        # An Event, not a lock-guarded bool: worker loops read the flag
        # under their lane's condition while shutdown() runs under the
        # stats lock — a plain bool written under one lock and read under
        # another has no consistent guard, so a lane mid-wait could miss
        # it.  The Event's own lock makes every read/write coherent and
        # the check-then-wait under ``lane.cond`` stays race-free against
        # the post-set ``notify_all`` (which also takes ``lane.cond``).
        self._shutdown = threading.Event()
        #: Per-(lane, channel) completion aggregates since the last
        #: consume_completion_stats() call; guarded by _stats_lock.
        self._windows: Dict[Tuple[str, str], ChannelWindow] = {}
        #: Per-(lane, channel) [active_count, interval_open_time]:
        #: tracks the union of execution intervals across the lane's
        #: workers so busy_s never double-counts overlap.
        self._channel_usage: Dict[Tuple[str, str], List[float]] = {}
        self._listeners: List[Callable[[str, IORequest], None]] = []
        self._lanes: Dict[str, _Lane] = {lane: _Lane(lane) for lane in lanes}
        workers_per_lane = num_store_workers + num_load_workers
        self._workers: List[threading.Thread] = []
        for lane in self._lanes.values():
            for i in range(workers_per_lane):
                worker = threading.Thread(
                    target=self._worker_loop,
                    args=(lane,),
                    name=f"{name}-{lane.name}-{i}",
                    daemon=True,
                )
                self._workers.append(worker)
                worker.start()

    # --------------------------------------------------------------- listeners
    def add_listener(self, listener: Callable[[str, IORequest], None]) -> None:
        """Subscribe to scheduler events.

        ``listener(event, request)`` fires for ``"submit"``, ``"start"``,
        ``"done"``, ``"cancel"`` and ``"promote"`` (after the fact, with
        no scheduler lock held).  The I/O tracer uses this to surface
        cancellations and promotions in overlap reports.
        """
        self._listeners.append(listener)

    def _notify(self, event: str, request: IORequest) -> None:
        for listener in self._listeners:
            listener(event, request)

    # ------------------------------------------------------------------ submit
    def _lane_of(self, request: IORequest) -> _Lane:
        lane = self._lanes.get(request.lane)
        if lane is None:
            raise ValueError(
                f"unknown lane {request.lane!r}; scheduler has {tuple(self._lanes)}"
            )
        return lane

    def _sort_key(self, request: IORequest) -> int:
        return 0 if self.fifo else int(request.priority)

    def submit(self, request: IORequest) -> IORequest:
        """Enqueue a typed request on its tier lane; returns the request."""
        lane = self._lane_of(request)
        # Requests without an explicit retry policy inherit the
        # scheduler's (an explicit 0 opts out — stateful bodies that
        # handle their own retries must not be blindly re-executed).
        if request._max_retries_override is None:
            request.max_retries = self.max_retries
        if request._retry_backoff_override is None:
            request.retry_backoff_s = self.retry_backoff_s
        request.submitted_at = time.monotonic()
        with lane.cond:
            if self._shutdown.is_set():
                raise RuntimeError(f"scheduler {self.name} is shut down")
            lane.pending += 1
            lane.idle.clear()
            heapq.heappush(
                lane.heap,
                (self._sort_key(request), lane.seq, int(request.priority), request),
            )
            lane.seq += 1
            lane.cond.notify()
        # Finishing — by execution or by cancellation — is bookkept in one
        # place so the pending count never double-decrements on the
        # cancel-vs-dequeue race.
        had_lease = request.lease is not None
        request.add_done_callback(
            lambda req, ln=lane, leased=had_lease: self._on_request_done(ln, req, leased)
        )
        with self._stats_lock:
            self.stats.submitted += 1
            if had_lease:
                self.stats.leased_requests += 1
            cls = request.priority.name
            self.stats.submitted_by_class[cls] = (
                self.stats.submitted_by_class.get(cls, 0) + 1
            )
        self._safe_notify("submit", request)
        return request

    def _on_request_done(
        self, lane: _Lane, request: IORequest, leased: bool = False
    ) -> None:
        state = request.state
        if leased:
            # Whatever terminal state this is, the riding lease must not
            # leak: release anything still attached (an owner that kept
            # the bytes detached it first, which counts as resolved).
            # Resolved BEFORE the pending decrement below — drain()
            # returns the moment every lane goes idle, and the no-leak
            # invariants (leased == released, arena outstanding == 0)
            # must already hold at that point.
            lease = request.detach_lease()
            if lease is not None:
                lease.release()
            with self._stats_lock:
                self.stats.leases_released += 1
        with lane.cond:
            lane.pending -= 1
            if lane.pending == 0:
                lane.idle.set()
        with self._stats_lock:
            self.stats.retries += request.attempts
            if state is JobState.CANCELLED:
                self.stats.cancelled += 1
                self.stats.cancelled_bytes += request.nbytes
                if request.kind in ("store", "demote"):
                    self.stats.cancelled_stores += 1
            elif state is JobState.FAILED:
                self.stats.failed += 1
                self.stats.failed_bytes += request.nbytes
            else:
                self.stats.executed += 1
        # Health is learned only from requests that actually ran, and
        # only from *device-shaped* errors: a MemoryError (pool capacity
        # spike), a structural OSError (missing file, permissions), or a
        # plain bug in a job body says nothing about the device, and
        # must not brick a lane.  A body that recovered from an I/O
        # failure internally (tiered demotion failover) reports it via
        # ``health_error`` so the lane still learns the truth despite
        # the request completing DONE.
        if state is JobState.CANCELLED:
            return
        error = request.error if state is JobState.FAILED else request.health_error
        if is_device_error(error):
            self.health.record_failure(
                request.lane, permanent=isinstance(error, PermanentIOError)
            )
        elif state is JobState.DONE:
            self.health.record_success(request.lane)

    # ------------------------------------------------------ cancel / promote
    def cancel(self, request: IORequest) -> bool:
        """Cancel a PENDING request (False if it already started).

        The request's done event fires either way once it reaches a
        terminal state; a successful cancel reaches it without touching
        the backing store.
        """
        if request.cancel():
            self._safe_notify("cancel", request)
            return True
        return False

    def promote(self, request: Optional[IORequest], priority: Priority = Priority.BLOCKING_LOAD) -> bool:
        """Raise a PENDING request's urgency (deadline promotion).

        Re-pushes the request with the new class; the stale heap entry is
        skipped at dequeue time (its priority snapshot no longer matches).
        No-op in FIFO mode, for requests already at least that urgent,
        and for requests that left the queue.
        """
        if request is None or self.fifo:
            return False
        lane = self._lane_of(request)
        with lane.cond:
            if request.state is not JobState.PENDING:
                return False
            if int(priority) >= int(request.priority):
                return False
            request.priority = Priority(priority)
            heapq.heappush(
                lane.heap,
                (self._sort_key(request), lane.seq, int(request.priority), request),
            )
            lane.seq += 1
            lane.cond.notify()
        with self._stats_lock:
            self.stats.promotions += 1
        self._safe_notify("promote", request)
        return True

    # ----------------------------------------------------------------- workers
    def _pop_valid_locked(self, lane: _Lane) -> Optional[IORequest]:
        """Pop the most urgent live entry; drops stale/cancelled ones."""
        while lane.heap:
            _, _, entry_priority, request = heapq.heappop(lane.heap)
            if request.state is not JobState.PENDING:
                continue  # cancelled while queued (or stale duplicate)
            if entry_priority != int(request.priority):
                continue  # stale entry left behind by a promotion
            return request
        return None

    def _pop_batch_locked(self, lane: _Lane) -> List[IORequest]:
        """Pop one request, plus — for small stores — the adjacent small
        stores queued behind it, to run back-to-back as one batch.

        Stores are the lowest class, so when a store is at the front the
        whole heap is stores: draining from the top preserves priority
        order while guaranteeing the batch is adjacent in queue order.

        Members claimed into a batch ride behind its head even if another
        worker goes idle — adjacency is the point (one chunk submission).
        Within the store class that can reorder a later store ahead of a
        claimed one, which is fine: stores carry no ordering guarantee,
        only a step-end deadline, and claimed members stay cancellable
        until the worker reaches them.
        """
        head = self._pop_valid_locked(lane)
        if head is None:
            return []
        batch = [head]
        if (
            self.coalesce_bytes <= 0
            or head.kind not in ("store", "demote")
            or head.nbytes >= self.coalesce_bytes
        ):
            return batch
        total = head.nbytes
        while lane.heap:
            _, _, entry_priority, nxt = lane.heap[0]
            if nxt.state is not JobState.PENDING or entry_priority != int(nxt.priority):
                heapq.heappop(lane.heap)  # stale: drop and keep scanning
                continue
            if nxt.kind not in ("store", "demote"):
                break
            if total + nxt.nbytes > self.coalesce_bytes:
                break
            heapq.heappop(lane.heap)
            batch.append(nxt)
            total += nxt.nbytes
        return batch

    def _channel_started(self, request: IORequest) -> None:
        key = (request.lane, _channel_of(request.kind))
        with self._stats_lock:
            usage = self._channel_usage.setdefault(key, [0, 0.0])
            if usage[0] == 0:
                usage[1] = request.started_at  # a new busy interval opens
            usage[0] += 1

    def _record_completion(self, request: IORequest) -> None:
        key = (request.lane, _channel_of(request.kind))
        with self._stats_lock:
            window = self._windows.setdefault(key, ChannelWindow())
            if request.state is not JobState.FAILED:
                # A failed request moved no usable bytes; counting them
                # would inflate the observed bandwidth the adaptive
                # controller trusts.  Its busy time is still real, so the
                # interval-union accounting below proceeds either way.
                window.nbytes += request.nbytes
                window.queued_s += max(0.0, request.started_at - request.submitted_at)
                window.count += 1
            usage = self._channel_usage[key]
            usage[0] -= 1
            if usage[0] == 0:
                # Last concurrent request on the channel: the busy
                # interval closes, credited once for all of them.
                window.busy_s += max(0.0, request.finished_at - usage[1])

    def consume_completion_stats(self) -> Dict[str, Dict[str, ChannelWindow]]:
        """Drain the per-lane completion windows accumulated since the
        last call: ``{lane: {"write" | "read": ChannelWindow}}``.

        Cancelled requests never appear (they moved no bytes).  The
        adaptive controller calls this once per training step and feeds
        each window's observed bandwidth into its EWMA estimators.
        """
        now = time.monotonic()
        with self._stats_lock:
            # Close any still-open busy interval at the window boundary
            # so in-flight work's elapsed time lands in this window and
            # the next interval starts fresh.
            for key, usage in self._channel_usage.items():
                if usage[0] > 0:
                    window = self._windows.setdefault(key, ChannelWindow())
                    window.busy_s += max(0.0, now - usage[1])
                    usage[1] = now
            windows, self._windows = self._windows, {}
        out: Dict[str, Dict[str, ChannelWindow]] = {}
        for (lane, channel), window in windows.items():
            out.setdefault(lane, {})[channel] = window
        return out

    def _safe_notify(self, event: str, request: IORequest) -> None:
        """Listener dispatch that cannot take a worker down: a raising
        listener is a telemetry bug, not a reason to strand a lane."""
        try:
            self._notify(event, request)
        except Exception:
            logger.exception(
                "scheduler listener raised on %r for %s", event, request.label
            )

    @staticmethod
    def _force_terminal(request: IORequest) -> None:
        """Last-resort guarantee that a claimed request reaches a
        terminal state.  ``execute()`` fails the job on any body
        exception, but a *done callback* raising mid-dispatch can
        propagate out with the remaining callbacks unrun; re-finishing
        is not possible (the state is already terminal), so this only
        covers the theoretical claimed-but-never-finished hole — a
        waiter must never block forever on a request a worker touched."""
        if request.done_event.is_set():
            return
        request.error = request.error or RuntimeError(
            f"request {request.label} left non-terminal by a callback failure"
        )
        try:
            request._finish(JobState.FAILED)
        except Exception:
            logger.exception("failing stranded request %s raised", request.label)
            request.done_event.set()

    def _worker_loop(self, lane: _Lane) -> None:
        while True:
            with lane.cond:
                while not lane.heap and not self._shutdown.is_set():
                    lane.cond.wait()
                if not lane.heap and self._shutdown.is_set():
                    return
                batch = self._pop_batch_locked(lane)
            claimed = 0
            done_members = 0
            trailing_done_bytes = 0
            for request in batch:
                # claim() loses against a cancel — and against another
                # worker holding a duplicate entry left by a promotion;
                # the loser must stay silent (no start/done events).
                # Coalescing is booked per member only after it both wins
                # claim() *and* completes: a member cancelled between the
                # pop and the claim is a cancellation win, and a member
                # that FAILED stored nothing — counting either as
                # coalesced work would break the reconciliation invariant
                # ``coalesced_requests <= executed``.
                if not request.claim():
                    continue
                claimed += 1
                if claimed > 1:
                    request.coalesced = True
                request.started_at = time.monotonic()
                self._channel_started(request)
                self._safe_notify("start", request)
                # The worker must survive anything the job throws at it:
                # execute() turns body exceptions into the FAILED state
                # (after the bounded retry budget), and the try/except
                # contains the residual hazard — exceptions escaping from
                # the job's *done callbacks* — so one poisoned request
                # can never kill the lane and hang drain() on the work
                # queued behind it.
                try:
                    request.execute()
                except Exception:
                    logger.exception(
                        "request %s raised outside its body (callback failure); "
                        "worker %s continues",
                        request.label,
                        threading.current_thread().name,
                    )
                finally:
                    request.finished_at = time.monotonic()
                    self._record_completion(request)
                    self._force_terminal(request)
                if request.state is JobState.DONE:
                    done_members += 1
                    if done_members > 1:
                        trailing_done_bytes += request.nbytes
                self._safe_notify("done", request)
            if done_members > 1:
                with self._stats_lock:
                    self.stats.coalesced_batches += 1
                    self.stats.coalesced_requests += done_members - 1
                    self.stats.coalesced_bytes += trailing_done_bytes

    # ------------------------------------------------------------------- drain
    def pending(self, lane: Optional[str] = None) -> int:
        """Requests submitted but not yet finished (one lane or all)."""
        lanes = [self._lanes[lane]] if lane is not None else list(self._lanes.values())
        total = 0
        for ln in lanes:
            with ln.lock:
                total += ln.pending
        return total

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every lane is simultaneously empty and idle.

        A single pass is not enough: work finishing on a later-checked
        lane may submit onto an earlier-checked one (a cpu-lane store
        triggering a tiered demotion queues an ssd-lane write), so loop
        until one pass observes every lane idle at once.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            for lane in self._lanes.values():
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                if not lane.idle.wait(remaining):
                    return False
            if all(lane.idle.is_set() for lane in self._lanes.values()):
                return True

    def shutdown(self) -> None:
        """Finish queued work and stop the workers (idempotent)."""
        with self._stats_lock:  # idempotency only; readers use the Event
            if self._shutdown.is_set():
                return
            self._shutdown.set()
        self.drain()
        for lane in self._lanes.values():
            with lane.cond:
                lane.cond.notify_all()
        for worker in self._workers:
            worker.join(timeout=5)
