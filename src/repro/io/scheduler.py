"""Priority-aware I/O scheduler: the successor of the two FIFO pools.

The paper's tensor cache drives all traffic through two strictly FIFO
worker pools (Sec. III-C2, :class:`~repro.io.aio.AsyncIOPool`).  Under
load that design inverts priorities: a backlog of low-urgency stores can
starve the loads sitting on the backward critical path.  This module
replaces the pools with one :class:`IOScheduler` that understands *what*
each request is for:

- **per-tier lanes** — every storage tier (``"ssd"``, ``"cpu"``) gets its
  own worker group and request queue, modelling that PCIe traffic to host
  memory and NVMe queue depth are independent resources.  Store and load
  channels of a tier share its lane, the way reads and writes share one
  NVMe submission stream;
- **priority classes** — lanes dequeue by :class:`Priority`:
  backward-blocking loads > prefetch loads > tier demotions > stores.
  A blocking load submitted behind N queued stores runs next, not last;
- **deadline promotion** — a pending prefetch load is re-queued as
  BLOCKING_LOAD when its segment's backward arrives
  (:meth:`IOScheduler.promote`), so urgency follows the training
  schedule instead of submission order;
- **store cancellation** — a store whose tensor was already consumed via
  data forwarding is cancelled while still PENDING
  (:meth:`~repro.io.aio.IOJob.cancel`), reclaiming its queue slot and
  the SSD write it would have issued;
- **write coalescing** — a worker that dequeues a small store drains the
  adjacent small stores queued behind it and runs them back-to-back as
  one batch, so a :class:`~repro.io.chunkstore.ChunkedTensorStore`
  backend fills one chunk with one uninterrupted submission instead of
  interleaving chunk fragments with higher-priority work;
- **completion telemetry** — every executed request is timed, and the
  per-(lane, channel) aggregates (bytes moved, channel busy seconds,
  queue wait) are exported through
  :meth:`IOScheduler.consume_completion_stats`.  This is the feedback
  signal the online adaptive controller
  (:mod:`repro.core.autotune`) turns into live bandwidth estimates.

``fifo=True`` collapses every class into submission order — the paper's
original behaviour — which keeps an apples-to-apples baseline for the
priority-vs-FIFO comparison in benchmarks and tests.

**Multi-tenancy** (architecture §8): pass a
:class:`~repro.io.tenancy.TenantRegistry` and each lane swaps its heap
for a weighted fair-share queue — priority classes stay strictly
ordered, but *within* a class tenants are served by deficit round-robin
over per-tenant subqueues, so one tenant's backlog cannot starve
another's.  The registry also gates admission (byte quotas reject or
park over-budget submissions; parked requests re-enter when a refund
frees headroom) and paces bandwidth-quota'd tenants (soft token bucket,
work-conserving).  Telemetry, request books and lane health all grow a
per-tenant dimension with the same exact-reconciliation bar as the
global books.  Without a registry the legacy single-heap path runs
unchanged — the default-tenant behaviour is byte-identical to the
pre-tenancy scheduler.

**Failure model** (see :mod:`repro.io.errors` for the taxonomy and
``docs/architecture.md`` §6 for the map): a request whose body raises is
never allowed to take a lane worker down with it — the worker loop
survives any job exception (FAILED is a first-class terminal state with
exact accounting: ``submitted == executed + failed + cancelled`` once
drained, and the blocking waiter sees the error instead of a hang),
retryable errors are re-attempted within the request's bounded
retry-with-backoff budget before failing, and every outcome feeds the
per-lane :class:`LaneHealthTracker` — the signal the tiered offloader
uses to fail a dead SSD over to the CPU tier and the adaptive controller
uses to trim the budget on a degraded lane.

**Degraded modes** (architecture §12): with ``deadlines`` and/or
``hedge`` configured the scheduler runs a watchdog thread over the
in-flight set.  A request stuck past its per-class deadline is
*abandoned* — forced FAILED with :class:`~repro.io.errors
.DeadlineExceededError` so the waiter unblocks and fails over, while
the wedged body's eventual outcome is discarded (hung-I/O survival).
A BLOCKING_LOAD stuck past the adaptive hedge delay gets a *hedged
duplicate* submitted from its ``hedge_fn``; first completion wins, the
loser is cancelled, and ``hedges_issued``/``hedges_won`` book the
outcome.  ``slow_request_s`` arms a *slow* lane verdict distinct from
*dead* — sustained high latency (brownout) sheds prefetch/demotion
traffic off the lane without declaring the device gone.
"""

from __future__ import annotations

import enum
import heapq
import logging
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.io.aio import IOBackend, IOJob, IOLaneStats, JobState, ThreadBackend
from repro.io.errors import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_RETRY_BACKOFF_S,
    DeadlineExceededError,
    PermanentIOError,
    is_device_error,
)
from repro.io.tenancy import (
    DEFAULT_TENANT,
    TenantQuotaError,
    TenantRegistry,
    current_tenant,
)

logger = logging.getLogger(__name__)

#: Default cap on the total bytes of one coalesced store batch.
DEFAULT_COALESCE_BYTES = 1 << 20


class Priority(enum.IntEnum):
    """Dequeue classes, most urgent first (lower value wins)."""

    BLOCKING_LOAD = 0   # backward is waiting on this tensor right now
    PREFETCH_LOAD = 1   # look-ahead load; needed soon, not yet
    DEMOTION = 2        # CPU -> SSD spill; pool space already reclaimed
    STORE = 3           # forward-pass offload; deadline is the step end


#: Request kinds (the channel of the paper's two pools, plus demotions).
REQUEST_KINDS = ("store", "load", "demote")


class IORequest(IOJob):
    """A typed unit of I/O work: what, how big, which lane, how urgent.

    Extends :class:`~repro.io.aio.IOJob` (state machine, completion event,
    done callbacks, cancellation) with the scheduling metadata the lanes
    dequeue by.  ``priority`` is mutated only by
    :meth:`IOScheduler.promote` while the request is PENDING.
    """

    def __init__(
        self,
        fn: Callable[[], object],
        *,
        kind: str,
        priority: Priority,
        tensor_id: str = "",
        nbytes: int = 0,
        lane: str = "ssd",
        label: str = "",
        max_retries: Optional[int] = None,
        retry_backoff_s: Optional[float] = None,
        lease=None,
        tenant: Optional[str] = None,
        deadline_s: Optional[float] = None,
        hedge_fn: Optional[Callable[[], object]] = None,
    ) -> None:
        if kind not in REQUEST_KINDS:
            raise ValueError(f"unknown request kind {kind!r}; expected one of {REQUEST_KINDS}")
        super().__init__(fn, label=label or f"{kind}:{tensor_id}")
        # None = inherit the scheduler's retry policy at submit time; an
        # explicit value (0 opts out — e.g. stateful demotion bodies that
        # retry internally) always wins.
        self._max_retries_override = max_retries
        self._retry_backoff_override = retry_backoff_s
        if max_retries is not None:
            self.max_retries = max_retries
        if retry_backoff_s is not None:
            self.retry_backoff_s = retry_backoff_s
        self.kind = kind
        self.priority = Priority(priority)
        self.tensor_id = tensor_id
        self.nbytes = int(nbytes)
        self.lane = lane
        #: Owning tenant; defaults to the submitting thread's scope
        #: (:func:`~repro.io.tenancy.current_tenant`), so un-scoped
        #: callers land on ``"default"`` and see pre-tenancy behaviour.
        self.tenant = tenant if tenant is not None else current_tenant()
        #: True while held by quota admission (not on any lane queue).
        self._parked = False
        #: True when this request ran as a trailing member of a coalesced
        #: store batch (not the batch head).  Set only once the member has
        #: actually won ``claim()`` — a batch member cancelled before the
        #: worker reached it never coalesced anything.
        self.coalesced = False
        #: Set by a body that *recovered* from an I/O failure internally
        #: (e.g. the tiered demotion writer failing a dead SSD over to
        #: the CPU tier): the request completes DONE, but the lane must
        #: still learn about the device failure it papered over.
        self.health_error: Optional[BaseException] = None
        #: Optional :class:`~repro.io.buffers.BufferLease` riding with the
        #: request (e.g. a queued demotion's parked buffer).  The
        #: scheduler releases whatever is still attached when the request
        #: reaches ANY terminal state (DONE / FAILED / CANCELLED) — no
        #: outcome may leak arena memory.  Code that wants to keep the
        #: bytes (cancellation reinstate, failover recovery) must
        #: :meth:`detach_lease` first; detach-then-decide under the
        #: owner's lock is the race-free order.
        self.lease = lease
        #: Per-request deadline override (seconds of *execution* time
        #: before the watchdog abandons it); ``None`` inherits the
        #: scheduler's per-class deadline, if any.
        self.deadline_s = deadline_s
        #: Idempotent re-issue closure for hedged reads: the watchdog
        #: builds the hedge request from this, so the duplicate does not
        #: share the (possibly wedged) original body.  ``None`` opts the
        #: request out of hedging.
        self.hedge_fn = hedge_fn
        #: The hedge duplicate issued for this request (at most one).
        self.hedge: Optional["IORequest"] = None
        #: True when this request *is* a hedge duplicate (never itself
        #: hedged).
        self.is_hedge = False
        #: Completion telemetry, stamped by the worker loop (monotonic
        #: seconds).  ``submitted_at`` is set by :meth:`IOScheduler.submit`.
        self.submitted_at: float = 0.0
        self.started_at: float = 0.0
        self.finished_at: float = 0.0

    def detach_lease(self):
        """Atomically take ownership of the attached lease (or None)."""
        with self._lock:
            lease, self.lease = self.lease, None
        return lease


@dataclass
class SchedulerStats:
    """Cumulative counters (the benchmark / test / trace surface)."""

    submitted: int = 0
    executed: int = 0
    #: Requests submitted per priority class name.
    submitted_by_class: Dict[str, int] = field(default_factory=dict)
    cancelled: int = 0
    cancelled_stores: int = 0
    cancelled_bytes: int = 0
    #: Requests whose body failed terminally (retry budget exhausted or a
    #: non-retryable error).  Once drained the books always reconcile:
    #: ``submitted == executed + failed + cancelled``.
    failed: int = 0
    failed_bytes: int = 0
    #: Re-attempts performed across all requests (each healed transient
    #: fault is one retry that kept ``failed`` from growing).
    retries: int = 0
    promotions: int = 0
    #: Coalesced store batches with >= 2 *executed* members, and the
    #: executed members beyond each batch head (the stores that avoided a
    #: standalone submission).  Members cancelled after being claimed into
    #: a batch but before the worker reached them are not counted — they
    #: never ran, so they are cancellation wins, not coalescing wins.
    coalesced_batches: int = 0
    coalesced_requests: int = 0
    coalesced_bytes: int = 0
    #: Requests submitted carrying a buffer lease, and those leases
    #: resolved at a terminal state — released back to the arena by the
    #: scheduler, or already detached by an owner that kept the bytes
    #: (cancellation reinstate, failover recovery).  Once drained,
    #: ``leased_requests == leases_released`` — the no-leak invariant the
    #: property suite pins down.
    leased_requests: int = 0
    leases_released: int = 0
    #: Hedged-read books: duplicates issued by the watchdog for stuck
    #: blocking loads, and the subset whose result completed the primary
    #: first (the stall the hedge actually cut).
    hedges_issued: int = 0
    hedges_won: int = 0
    #: Requests force-failed by the watchdog for sitting past their
    #: per-class deadline (hung-I/O failover).
    deadline_abandons: int = 0


#: Channel names completion telemetry is aggregated under: stores and
#: demotions both consume a lane's write stream; loads its read stream.
CHANNELS = ("write", "read")


def _channel_of(kind: str) -> str:
    return "read" if kind == "load" else "write"


@dataclass
class ChannelWindow:
    """Executed-request aggregates for one (lane, channel) pair since the
    last :meth:`IOScheduler.consume_completion_stats` call.

    ``busy_s`` is the *union* of the channel's execution intervals —
    the wall time at least one worker was executing on the channel —
    not the per-request sum, so ``nbytes / busy_s`` stays an honest
    observed bandwidth even when several workers drain one lane
    concurrently (a sum would overcount the overlap and understate the
    bandwidth by up to the concurrency factor).  ``queued_s`` is the
    total submit-to-start wait, a direct read on how contended the lane
    was.
    """

    nbytes: int = 0
    busy_s: float = 0.0
    queued_s: float = 0.0
    count: int = 0
    #: Completion-reap delay accumulated over the window's requests: the
    #: time between a request's I/O finishing and its completion being
    #: reaped/booked.  Always 0.0 on the thread backend (execution and
    #: completion coincide); the SQ/CQ backend's reaper stamps it so the
    #: adaptive controller can see completion-path latency.
    reap_lag_s: float = 0.0

    def merge(self, other: "ChannelWindow") -> None:
        self.nbytes += other.nbytes
        self.busy_s += other.busy_s
        self.queued_s += other.queued_s
        self.count += other.count
        self.reap_lag_s += other.reap_lag_s

    def bandwidth_bytes_per_s(self) -> Optional[float]:
        """Observed throughput, or ``None`` when the window saw no work."""
        if self.busy_s <= 0.0:
            return None
        return self.nbytes / self.busy_s


@dataclass
class LaneHealthSnapshot:
    """Point-in-time health of one lane (read-only copy)."""

    successes: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    dead: bool = False
    #: Brownout verdict: the lane answers, but sustained latency crossed
    #: the slow threshold.  Distinct from ``dead`` — a slow lane sheds
    #: deferrable traffic (prefetch, demotions) but keeps serving.
    slow: bool = False
    consecutive_slow: int = 0


class LaneHealthTracker:
    """Per-lane failure/success bookkeeping and the dead-lane verdict.

    Fed by the scheduler on every request completion.  A lane is marked
    **dead** the moment any request fails with a
    :class:`~repro.io.errors.PermanentIOError`, or after
    ``death_threshold`` *consecutive* terminal failures (a device that
    fails everything is dead in all but errno).  Death is sticky —
    storage does not resurrect itself; :meth:`revive` exists for
    operator-driven recovery (tests, a replaced device).

    Two consumer surfaces:

    - :meth:`is_dead` / :meth:`dead_lanes` — routing: the tiered
      offloader steers placements off a dead ``ssd`` lane (CPU failover);
    - :meth:`consume_failure_window` — per-step failure deltas the
      adaptive controller folds into its trim signal, the same way it
      consumes the completion-bandwidth windows.

    **Tenant scoping** (isolation, architecture §8): traffic from the
    default tenant drives the lane's *global* verdict exactly as
    before; a non-default tenant's failures drive a per-(lane, tenant)
    verdict only.  ``is_dead(lane, tenant)`` is the union — a lane is
    dead *for a tenant* when the device is globally dead or that
    tenant's own traffic bricked it — so tenant A's permanent failures
    degrade A's placement without touching B's.
    """

    def __init__(
        self,
        death_threshold: int = 3,
        slow_threshold_s: Optional[float] = None,
        slow_trip: int = 3,
    ) -> None:
        if death_threshold < 1:
            raise ValueError(f"death_threshold must be >= 1: {death_threshold}")
        if slow_trip < 1:
            raise ValueError(f"slow_trip must be >= 1: {slow_trip}")
        self.death_threshold = death_threshold
        #: Request duration at or above which an op counts as *slow*;
        #: ``None`` disables the brownout verdict entirely.
        self.slow_threshold_s = slow_threshold_s
        self.slow_trip = slow_trip
        self._lock = threading.Lock()
        self._lanes: Dict[str, LaneHealthSnapshot] = {}
        #: Per-(lane, tenant) verdicts for non-default tenants.
        self._tenant_lanes: Dict[Tuple[str, str], LaneHealthSnapshot] = {}
        #: Failures per lane since the last consume_failure_window()
        #: (lane-wide: every tenant's failures count — it feeds the
        #: adaptive controller's device-degradation signal).
        self._window: Dict[str, int] = {}

    def _state(self, lane: str) -> LaneHealthSnapshot:
        state = self._lanes.get(lane)
        if state is None:
            state = self._lanes[lane] = LaneHealthSnapshot()
        return state

    def _scoped_state(self, lane: str, tenant: str) -> LaneHealthSnapshot:
        if tenant == DEFAULT_TENANT:
            return self._state(lane)
        key = (lane, tenant)
        state = self._tenant_lanes.get(key)
        if state is None:
            state = self._tenant_lanes[key] = LaneHealthSnapshot()
        return state

    def record_success(self, lane: str, tenant: str = DEFAULT_TENANT) -> None:
        with self._lock:
            state = self._scoped_state(lane, tenant)
            state.successes += 1
            state.consecutive_failures = 0

    def record_failure(
        self, lane: str, permanent: bool = False, tenant: str = DEFAULT_TENANT
    ) -> None:
        with self._lock:
            state = self._scoped_state(lane, tenant)
            state.failures += 1
            state.consecutive_failures += 1
            self._window[lane] = self._window.get(lane, 0) + 1
            if permanent or state.consecutive_failures >= self.death_threshold:
                state.dead = True

    def record_duration(
        self, lane: str, seconds: float, tenant: str = DEFAULT_TENANT
    ) -> None:
        """Feed one executed request's duration into the brownout verdict.

        ``slow_trip`` consecutive ops at/above ``slow_threshold_s`` set
        the lane *slow*; a single fast op clears it — the brownouts that
        matter are sustained, and a device serving fast ops again has by
        definition recovered.  Lane-global (not tenant-scoped): latency
        is a device property, unlike quota-attributable failures.
        """
        if self.slow_threshold_s is None:
            return
        with self._lock:
            state = self._state(lane)
            if seconds >= self.slow_threshold_s:
                state.consecutive_slow += 1
                if state.consecutive_slow >= self.slow_trip:
                    state.slow = True
            else:
                state.consecutive_slow = 0
                state.slow = False

    def is_slow(self, lane: str) -> bool:
        with self._lock:
            state = self._lanes.get(lane)
            return state.slow if state is not None else False

    def slow_lanes(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(name for name, s in self._lanes.items() if s.slow))

    def mark_slow(self, lane: str) -> None:
        """Force the brownout verdict (operator/test hook)."""
        with self._lock:
            self._state(lane).slow = True

    def mark_dead(self, lane: str, tenant: Optional[str] = None) -> None:
        """Brick the lane globally, or for one tenant only."""
        with self._lock:
            if tenant is None or tenant == DEFAULT_TENANT:
                self._state(lane).dead = True
            else:
                self._scoped_state(lane, tenant).dead = True

    def revive(self, lane: str, tenant: Optional[str] = None) -> None:
        """Operator-driven recovery.  Reviving the lane globally (no
        tenant) also clears every tenant-scoped verdict for it — a
        replaced device is new for everyone."""
        with self._lock:
            if tenant is None or tenant == DEFAULT_TENANT:
                state = self._state(lane)
                state.dead = False
                state.consecutive_failures = 0
                state.slow = False
                state.consecutive_slow = 0
                if tenant is None:
                    for (ln, _), scoped in self._tenant_lanes.items():
                        if ln == lane:
                            scoped.dead = False
                            scoped.consecutive_failures = 0
            else:
                scoped = self._scoped_state(lane, tenant)
                scoped.dead = False
                scoped.consecutive_failures = 0

    def is_dead(self, lane: str, tenant: Optional[str] = None) -> bool:
        with self._lock:
            state = self._lanes.get(lane)
            if state is not None and state.dead:
                return True
            if tenant is None or tenant == DEFAULT_TENANT:
                return False
            scoped = self._tenant_lanes.get((lane, tenant))
            return scoped.dead if scoped is not None else False

    def dead_lanes(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(name for name, s in self._lanes.items() if s.dead))

    def dead_tenants(self, lane: str) -> Tuple[str, ...]:
        """Tenants whose own traffic bricked this lane (global deaths
        are reported by :meth:`dead_lanes`, not here)."""
        with self._lock:
            return tuple(
                sorted(t for (ln, t), s in self._tenant_lanes.items() if ln == lane and s.dead)
            )

    def tenant_snapshot(self) -> Dict[Tuple[str, str], LaneHealthSnapshot]:
        with self._lock:
            return {key: replace(s) for key, s in self._tenant_lanes.items()}

    def snapshot(self) -> Dict[str, LaneHealthSnapshot]:
        with self._lock:
            return {lane: replace(s) for lane, s in self._lanes.items()}

    def consume_failure_window(self) -> Dict[str, int]:
        """Failures per lane since the last call (the controller's feed)."""
        with self._lock:
            window, self._window = self._window, {}
            return window


class _ClassRing:
    """Deficit round-robin over per-tenant FIFO subqueues of one
    priority class.

    Classic DRR: tenants sit on a ring; each visit a tenant earns
    ``quantum * weight`` bytes of credit, and its head request is
    served once the accumulated deficit covers the request size — so
    over time each backlogged tenant's byte share converges to its
    weight share, and a tenant with a non-empty subqueue is always
    served within ``ceil(nbytes / (quantum * weight))`` ring passes
    (the no-starvation bound the property suite pins down).  Idle
    tenants leave the ring and forfeit their credit — deficit never
    accumulates while a tenant has nothing queued.
    """

    __slots__ = ("queues", "order", "idx", "deficit", "fresh")

    def __init__(self) -> None:
        self.queues: Dict[str, Deque[IORequest]] = {}
        self.order: List[str] = []
        self.idx = 0
        self.deficit: Dict[str, float] = {}
        #: True when the ring pointer just arrived at ``order[idx]`` —
        #: the arrival grants the tenant its ``quantum * weight`` credit
        #: exactly once; the pointer then stays (across pop() calls)
        #: while the deficit keeps covering the tenant's heads, and
        #: advances when it no longer does.  Granting per *arrival*
        #: rather than per visit is what makes byte shares track
        #: weights: a weight-2 tenant drains twice the bytes per round,
        #: not merely one request per turn.
        self.fresh = True

    def push(self, request: IORequest) -> None:
        queue = self.queues.get(request.tenant)
        if queue is None:
            queue = self.queues[request.tenant] = deque()
            self.order.append(request.tenant)
            self.deficit.setdefault(request.tenant, 0.0)
        queue.append(request)

    def retire(self, tenant: str) -> None:
        """Drop an emptied tenant from the ring (and its credit)."""
        pos = self.order.index(tenant)
        del self.order[pos]
        if pos < self.idx:
            self.idx -= 1
        elif pos == self.idx:
            self.fresh = True  # the pointer landed on the next tenant
        if self.idx >= len(self.order):
            self.idx = 0
        del self.queues[tenant]
        self.deficit.pop(tenant, None)

    def pop(self, weight_of, quantum: int, bw_gate) -> Tuple[Optional[IORequest], int]:
        """Serve the next request by DRR; returns (request | None,
        stale entries dropped).

        ``bw_gate(tenant, nbytes, force)`` is the registry's token
        bucket.  A bandwidth-blocked tenant is skipped while others can
        be served, but after a full bounded sweep with no service it is
        served anyway with ``force=True`` (work-conserving: quota
        pacing shapes order, it never idles the device — which also
        keeps this loop's termination unconditional).
        """
        dropped = 0
        visits_without_service = 0
        bw_blocked: Optional[str] = None
        while self.order:
            if self.idx >= len(self.order):
                self.idx = 0
            tenant = self.order[self.idx]
            queue = self.queues[tenant]
            while queue and queue[0].state is not JobState.PENDING:
                queue.popleft()  # cancelled while queued
                dropped += 1
            if not queue:
                self.retire(tenant)
                continue
            if self.fresh:
                self.deficit[tenant] = (
                    self.deficit.get(tenant, 0.0) + quantum * weight_of(tenant)
                )
                self.fresh = False
            head = queue[0]
            credit = self.deficit.get(tenant, 0.0)
            if credit >= head.nbytes:
                force = (
                    tenant == bw_blocked
                    and visits_without_service >= 2 * len(self.order)
                )
                if bw_gate is None or bw_gate(tenant, head.nbytes, force):
                    queue.popleft()
                    self.deficit[tenant] = credit - head.nbytes
                    if not queue:
                        self.retire(tenant)
                    # The pointer stays on this tenant (fresh stays
                    # False) so its burst continues while credit lasts.
                    return head, dropped
                if bw_blocked is None:
                    bw_blocked = tenant
            # Deficit exhausted or bandwidth-blocked: pointer moves on.
            visits_without_service += 1
            self.idx += 1
            self.fresh = True
        return None, dropped


class _FairQueue:
    """Per-lane weighted fair-share queue: priority classes stay
    strictly ordered (a blocking load still overtakes every store);
    *within* a class tenants are served by :class:`_ClassRing` DRR."""

    def __init__(self, registry: TenantRegistry) -> None:
        self.registry = registry
        self.classes: Dict[int, _ClassRing] = {}
        #: Queued entries, live + stale (drives the workers' wait
        #: predicate; stale entries are dropped lazily by pop()).
        self.size = 0

    def push(self, request: IORequest) -> None:
        cls = int(request.priority)
        ring = self.classes.get(cls)
        if ring is None:
            ring = self.classes[cls] = _ClassRing()
        ring.push(request)
        self.size += 1

    def pop(self) -> Optional[IORequest]:
        for cls in sorted(self.classes):
            ring = self.classes[cls]
            request, dropped = ring.pop(
                self.registry.weight, self.registry.quantum_bytes, self._bw_gate
            )
            self.size -= dropped
            if not ring.order:
                del self.classes[cls]
            if request is not None:
                self.size -= 1
                return request
        return None

    def _bw_gate(self, tenant: str, nbytes: int, force: bool) -> bool:
        return self.registry.bw_admit(tenant, nbytes, force=force)

    def remove(self, request: IORequest) -> bool:
        """Unlink a queued request (promotion re-push); False when it
        is not queued here (already popped, or parked)."""
        cls = int(request.priority)
        ring = self.classes.get(cls)
        if ring is None:
            return False
        queue = ring.queues.get(request.tenant)
        if queue is None:
            return False
        try:
            queue.remove(request)
        except ValueError:
            return False
        self.size -= 1
        if not queue:
            ring.retire(request.tenant)
            if not ring.order:
                del self.classes[cls]
        return True

    def peek_tenant_head(self, tenant: str) -> Optional[IORequest]:
        """The tenant's most urgent live queued request (coalescing
        looks here for the next batch member, so a batch never crosses
        tenants — adjacency within the owner is the point)."""
        for cls in sorted(self.classes):
            ring = self.classes[cls]
            queue = ring.queues.get(tenant)
            if queue is None:
                continue
            while queue and queue[0].state is not JobState.PENDING:
                queue.popleft()
                self.size -= 1
            if not queue:
                ring.retire(tenant)
                if not ring.order:
                    del self.classes[cls]
                continue
            return queue[0]
        return None


class _Lane:
    """One tier's queue + bookkeeping (workers live on the scheduler)."""

    def __init__(self, name: str, fair: Optional[_FairQueue] = None) -> None:
        self.name = name
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        #: Heap of (priority value, seq, entry priority snapshot, request).
        self.heap: List[Tuple[int, int, int, IORequest]] = []
        self.seq = 0
        self.pending = 0  # submitted, not yet finished or cancelled
        self.idle = threading.Event()
        self.idle.set()
        #: Fair-share queue replacing the heap when the scheduler runs
        #: with a tenant registry (None = legacy single-heap path).
        self.fair = fair

    def has_work(self) -> bool:
        return bool(self.heap) if self.fair is None else self.fair.size > 0


class IOScheduler:
    """Single scheduler owning per-tier lanes with priority dequeue.

    Args:
        num_store_workers / num_load_workers: kept for drop-in
            compatibility with the two FIFO pools; their sum is each
            lane's worker count (total channel concurrency per tier is
            unchanged, but any worker may serve any class — that is what
            lets a blocking load overtake the store backlog).
        lanes: tier names to create lanes for.
        fifo: ignore priority classes and dequeue in submission order
            (the paper's baseline behaviour; promotion becomes a no-op).
        coalesce_bytes: cap on one coalesced store batch; ``0`` disables
            coalescing.  A store larger than the cap always runs alone.
        max_retries / retry_backoff_s: default bounded retry budget
            stamped onto requests that do not carry their own; retryable
            job errors (transient device faults, checksum mismatches)
            are re-attempted this many times with exponential backoff
            before the request goes FAILED.
        tenants: a :class:`~repro.io.tenancy.TenantRegistry` to share
            the lanes across jobs: enables quota admission and — unless
            ``fifo`` — weighted fair-share (DRR) dequeue across tenants
            within each priority class.  ``None`` (the default) keeps
            the legacy single-heap path, byte-identical to the
            pre-tenancy scheduler (a registry is still created for
            bookkeeping, but never drives dequeue order).
        name: thread-name prefix.
        backend: the lane execution backend
            (:class:`~repro.io.aio.IOBackend`).  ``None`` installs the
            default :class:`~repro.io.aio.ThreadBackend` — blocking
            per-request I/O on the dequeuing worker, byte-identical to
            the pre-backend scheduler; :mod:`repro.io.uring` provides
            the batched SQ/CQ and simulated-GDS backends.
    """

    def __init__(
        self,
        num_store_workers: int = 2,
        num_load_workers: int = 2,
        lanes: Tuple[str, ...] = ("ssd", "cpu"),
        fifo: bool = False,
        coalesce_bytes: int = DEFAULT_COALESCE_BYTES,
        max_retries: int = DEFAULT_MAX_RETRIES,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
        tenants: Optional[TenantRegistry] = None,
        name: str = "ssdtrain-io",
        backend: Optional[IOBackend] = None,
        deadlines: Optional[Dict[str, float]] = None,
        hedge: bool = False,
        hedge_delay_s: Optional[float] = None,
        slow_request_s: Optional[float] = None,
        watchdog_interval_s: float = 0.005,
    ) -> None:
        if num_store_workers < 1 or num_load_workers < 1:
            raise ValueError("each channel needs at least one worker")
        if not lanes:
            raise ValueError("need at least one lane")
        if coalesce_bytes < 0:
            raise ValueError(f"coalesce_bytes must be >= 0: {coalesce_bytes}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {max_retries}")
        if retry_backoff_s < 0:
            raise ValueError(f"retry_backoff_s must be >= 0: {retry_backoff_s}")
        for cls, seconds in (deadlines or {}).items():
            if cls not in Priority.__members__:
                raise ValueError(
                    f"unknown deadline class {cls!r}; expected one of "
                    f"{tuple(Priority.__members__)}"
                )
            if seconds <= 0:
                raise ValueError(f"deadline for {cls} must be positive: {seconds}")
        if hedge_delay_s is not None and hedge_delay_s < 0:
            raise ValueError(f"hedge_delay_s must be >= 0: {hedge_delay_s}")
        if slow_request_s is not None and slow_request_s <= 0:
            raise ValueError(f"slow_request_s must be positive: {slow_request_s}")
        if watchdog_interval_s <= 0:
            raise ValueError(
                f"watchdog_interval_s must be positive: {watchdog_interval_s}"
            )
        self.name = name
        self.fifo = fifo
        self.coalesce_bytes = coalesce_bytes
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        #: Tenant registry: admission control + per-tenant books.  Fair
        #: dequeue engages only when a registry was passed explicitly
        #: (and not in FIFO mode) — the implicit bookkeeping registry
        #: must not perturb the legacy heap order.
        self.tenants = tenants if tenants is not None else TenantRegistry()
        self.fair_share = tenants is not None and not fifo
        #: Requests held by quota admission, per tenant, in submit
        #: order; not on any lane (pending/drain ignore them) until a
        #: refund re-admits them.  Guarded by _park_lock.
        self._parked: Dict[str, Deque[IORequest]] = {}
        self._park_lock = threading.Lock()
        self.stats = SchedulerStats()
        #: Per-class execution deadlines (Priority name -> seconds) the
        #: watchdog abandons stuck requests against; empty = no deadlines.
        self.deadlines: Dict[str, float] = dict(deadlines or {})
        #: Hedged-read knobs: ``hedge`` arms the watchdog's duplicate
        #: issue for stuck blocking loads; ``hedge_delay_s`` pins the
        #: stuck threshold (None = adaptive from recent load durations).
        self.hedge = hedge
        self.hedge_delay_s = hedge_delay_s
        self.watchdog_interval_s = watchdog_interval_s
        #: Per-lane failure/death bookkeeping fed by request completions;
        #: the tiered offloader and the adaptive controller both read it.
        self.health = LaneHealthTracker(slow_threshold_s=slow_request_s)
        self._stats_lock = threading.Lock()
        # An Event, not a lock-guarded bool: worker loops read the flag
        # under their lane's condition while shutdown() runs under the
        # stats lock — a plain bool written under one lock and read under
        # another has no consistent guard, so a lane mid-wait could miss
        # it.  The Event's own lock makes every read/write coherent and
        # the check-then-wait under ``lane.cond`` stays race-free against
        # the post-set ``notify_all`` (which also takes ``lane.cond``).
        self._shutdown = threading.Event()
        #: Per-(lane, channel) completion aggregates since the last
        #: consume_completion_stats() call; guarded by _stats_lock.
        self._windows: Dict[Tuple[str, str], ChannelWindow] = {}
        #: Per-(lane, channel) [active_count, interval_open_time]:
        #: tracks the union of execution intervals across the lane's
        #: workers so busy_s never double-counts overlap.
        self._channel_usage: Dict[Tuple[str, str], List[float]] = {}
        #: Per-(tenant, lane, channel) mirrors of the two dicts above —
        #: the per-tenant telemetry surface (autotune per tenant).
        self._tenant_windows: Dict[Tuple[str, str, str], ChannelWindow] = {}
        self._tenant_usage: Dict[Tuple[str, str, str], List[float]] = {}
        self._listeners: List[Callable[[str, IORequest], None]] = []
        #: How dequeued batches reach the kernel.  The default thread
        #: backend reproduces the pre-backend worker loop operation for
        #: operation; see :class:`~repro.io.aio.IOBackend` for the
        #: contract a replacement must honour.
        self.backend = backend if backend is not None else ThreadBackend()
        self.backend.bind(self)
        self._lanes: Dict[str, _Lane] = {
            lane: _Lane(lane, _FairQueue(self.tenants) if self.fair_share else None)
            for lane in lanes
        }
        workers_per_lane = num_store_workers + num_load_workers
        self._workers: List[threading.Thread] = []
        for lane in self._lanes.values():
            for i in range(workers_per_lane):
                worker = threading.Thread(
                    target=self._worker_loop,
                    args=(lane,),
                    name=f"{name}-{lane.name}-{i}",
                    daemon=True,
                )
                self._workers.append(worker)
                worker.start()
        #: In-flight (begun, not finished) requests the watchdog scans;
        #: maintained only when a watchdog runs.  Guarded by _inflight_lock.
        self._inflight: set = set()
        self._inflight_lock = threading.Lock()
        #: Recent executed-load durations per lane, the adaptive hedge
        #: delay's sample window.  Guarded by _stats_lock.
        self._load_durations: Dict[str, Deque[float]] = {}
        # The watchdog thread exists only when a degraded-mode feature
        # needs it — a default-configured scheduler spawns no extra
        # thread (the engine-lifecycle leak test counts on that).
        self._watchdog: Optional[threading.Thread] = None
        if self.deadlines or self.hedge:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, name=f"{name}-watchdog", daemon=True
            )
            self._watchdog.start()

    # --------------------------------------------------------------- listeners
    def add_listener(self, listener: Callable[[str, IORequest], None]) -> None:
        """Subscribe to scheduler events.

        ``listener(event, request)`` fires for ``"submit"``, ``"start"``,
        ``"done"``, ``"cancel"``, ``"promote"`` and — under quota
        admission — ``"park"`` / ``"unpark"`` (after the fact, with
        no scheduler lock held).  The I/O tracer uses this to surface
        cancellations and promotions in overlap reports.
        """
        self._listeners.append(listener)

    def _notify(self, event: str, request: IORequest) -> None:
        for listener in self._listeners:
            listener(event, request)

    # ------------------------------------------------------------------ submit
    def _lane_of(self, request: IORequest) -> _Lane:
        lane = self._lanes.get(request.lane)
        if lane is None:
            raise ValueError(
                f"unknown lane {request.lane!r}; scheduler has {tuple(self._lanes)}"
            )
        return lane

    def _sort_key(self, request: IORequest) -> int:
        return 0 if self.fifo else int(request.priority)

    def submit(self, request: IORequest) -> IORequest:
        """Enqueue a typed request on its tier lane; returns the request.

        Tenant admission runs first: an over-quota submission is either
        rejected (:class:`~repro.io.tenancy.TenantQuotaError`) or
        parked — held off-lane until a refund (a cancellation or
        failure of an admitted request) frees headroom, at which point
        it is enqueued in park order.  A parked request is PENDING and
        cancellable, but invisible to ``pending()``/``drain()``.
        """
        self._lane_of(request)  # validate the lane before charging quota
        outcome = self.tenants.admit(request.tenant, request.nbytes)
        if outcome == "reject":
            raise TenantQuotaError(
                f"tenant {request.tenant!r} over quota: {request.label} "
                f"({request.nbytes} bytes) rejected"
            )
        if outcome == "park":
            with self._park_lock:
                if self._shutdown.is_set():
                    self.tenants.note_parked_cancelled(request.tenant)
                    raise RuntimeError(f"scheduler {self.name} is shut down")
                request._parked = True
                self._parked.setdefault(request.tenant, deque()).append(request)
            self._safe_notify("park", request)
            return request
        return self._enqueue(request)

    def _enqueue(self, request: IORequest) -> IORequest:
        """Admission already charged: put the request on its lane."""
        lane = self._lane_of(request)
        # Requests without an explicit retry policy inherit the
        # scheduler's (an explicit 0 opts out — stateful bodies that
        # handle their own retries must not be blindly re-executed).
        if request._max_retries_override is None:
            request.max_retries = self.max_retries
        if request._retry_backoff_override is None:
            request.retry_backoff_s = self.retry_backoff_s
        request.submitted_at = time.monotonic()
        with lane.cond:
            shut = self._shutdown.is_set()
            if not shut:
                lane.pending += 1
                lane.idle.clear()
                if lane.fair is not None:
                    lane.fair.push(request)
                else:
                    heapq.heappush(
                        lane.heap,
                        (self._sort_key(request), lane.seq, int(request.priority), request),
                    )
                    lane.seq += 1
                lane.cond.notify()
        if shut:
            # Admission already booked/charged this request; undo it so
            # the per-tenant books stay exact through the refusal.
            self.tenants.rollback_submitted(request.tenant, request.nbytes)
            raise RuntimeError(f"scheduler {self.name} is shut down")
        # Finishing — by execution or by cancellation — is bookkept in one
        # place so the pending count never double-decrements on the
        # cancel-vs-dequeue race.
        had_lease = request.lease is not None
        request.add_done_callback(
            lambda req, ln=lane, leased=had_lease: self._on_request_done(ln, req, leased)
        )
        with self._stats_lock:
            self.stats.submitted += 1
            if had_lease:
                self.stats.leased_requests += 1
            cls = request.priority.name
            self.stats.submitted_by_class[cls] = (
                self.stats.submitted_by_class.get(cls, 0) + 1
            )
        self._safe_notify("submit", request)
        return request

    def _on_request_done(
        self, lane: _Lane, request: IORequest, leased: bool = False
    ) -> None:
        state = request.state
        if leased:
            # Whatever terminal state this is, the riding lease must not
            # leak: release anything still attached (an owner that kept
            # the bytes detached it first, which counts as resolved).
            # Resolved BEFORE the pending decrement below — drain()
            # returns the moment every lane goes idle, and the no-leak
            # invariants (leased == released, arena outstanding == 0)
            # must already hold at that point.
            lease = request.detach_lease()
            if lease is not None:
                lease.release()
            with self._stats_lock:
                self.stats.leases_released += 1
        with lane.cond:
            lane.pending -= 1
            if lane.pending == 0:
                lane.idle.set()
        with self._stats_lock:
            self.stats.retries += request.attempts
            if state is JobState.CANCELLED:
                self.stats.cancelled += 1
                self.stats.cancelled_bytes += request.nbytes
                if request.kind in ("store", "demote"):
                    self.stats.cancelled_stores += 1
            elif state is JobState.FAILED:
                self.stats.failed += 1
                self.stats.failed_bytes += request.nbytes
            else:
                self.stats.executed += 1
        outcome = (
            "cancelled"
            if state is JobState.CANCELLED
            else "failed" if state is JobState.FAILED else "executed"
        )
        self.tenants.note_finished(
            request.tenant, outcome, request.nbytes, retries=request.attempts
        )
        if outcome != "executed":
            # The bytes never landed: refund the tenant's quota charge
            # and give any of its parked submissions a shot at the
            # freed headroom.
            self.tenants.refund(request.tenant, request.nbytes)
            self.kick_parked(request.tenant)
        # Health is learned only from requests that actually ran, and
        # only from *device-shaped* errors: a MemoryError (pool capacity
        # spike), a structural OSError (missing file, permissions), or a
        # plain bug in a job body says nothing about the device, and
        # must not brick a lane.  A body that recovered from an I/O
        # failure internally (tiered demotion failover) reports it via
        # ``health_error`` so the lane still learns the truth despite
        # the request completing DONE.  Verdicts are tenant-scoped: the
        # default tenant drives the lane's global verdict, any other
        # tenant only its own (isolation).
        if state is JobState.CANCELLED:
            return
        error = request.error if state is JobState.FAILED else request.health_error
        if is_device_error(error):
            self.health.record_failure(
                request.lane,
                permanent=isinstance(error, PermanentIOError),
                tenant=request.tenant,
            )
        elif state is JobState.DONE:
            self.health.record_success(request.lane, tenant=request.tenant)

    # ------------------------------------------------------------------ parked
    def parked(self, tenant: Optional[str] = None) -> int:
        """Requests currently held by quota admission (one tenant or all)."""
        with self._park_lock:
            if tenant is not None:
                return sum(
                    1
                    for req in self._parked.get(tenant, ())
                    if req.state is JobState.PENDING
                )
            return sum(
                1
                for queue in self._parked.values()
                for req in queue
                if req.state is JobState.PENDING
            )

    def kick_parked(self, tenant: str) -> int:
        """Re-try admission for the tenant's parked requests, in park
        order, until the head no longer fits; returns how many were
        enqueued.  Called automatically on every refund; call it
        manually after :meth:`TenantRegistry.resume` or a quota raise.
        """
        enqueued = 0
        while True:
            with self._park_lock:
                queue = self._parked.get(tenant)
                while queue and queue[0].state is not JobState.PENDING:
                    queue.popleft()  # cancelled while parked
                    self.tenants.note_parked_cancelled(tenant)
                if not queue:
                    if queue is not None:
                        self._parked.pop(tenant, None)
                    return enqueued
                request = queue[0]
                if not self.tenants.try_charge(tenant, request.nbytes):
                    return enqueued  # still no headroom; stays parked
                queue.popleft()
                request._parked = False
                if not queue:
                    self._parked.pop(tenant, None)
            self._enqueue(request)
            self._safe_notify("unpark", request)
            enqueued += 1

    def _discard_parked(self, request: IORequest) -> bool:
        with self._park_lock:
            queue = self._parked.get(request.tenant)
            if not queue:
                return False
            try:
                queue.remove(request)
            except ValueError:
                return False
            request._parked = False
            if not queue:
                self._parked.pop(request.tenant, None)
        self.tenants.note_parked_cancelled(request.tenant)
        return True

    # ------------------------------------------------------ cancel / promote
    def cancel(self, request: IORequest) -> bool:
        """Cancel a PENDING request (False if it already started).

        The request's done event fires either way once it reaches a
        terminal state; a successful cancel reaches it without touching
        the backing store.  Cancelling a parked request unlinks it from
        the park queue immediately (it owed no quota).
        """
        if request.cancel():
            if request._parked:
                self._discard_parked(request)
            self._safe_notify("cancel", request)
            return True
        return False

    def promote(self, request: Optional[IORequest], priority: Priority = Priority.BLOCKING_LOAD) -> bool:
        """Raise a PENDING request's urgency (deadline promotion).

        Legacy path: re-pushes the request with the new class; the stale
        heap entry is skipped at dequeue time (its priority snapshot no
        longer matches).  Fair path: the request is unlinked from its
        class ring and re-pushed under the new class (no stale entries).
        A parked request just has its priority raised — it enters the
        queue with it when admission unparks it.  No-op in FIFO mode,
        for requests already at least that urgent, and for requests
        that left the queue.
        """
        if request is None or self.fifo:
            return False
        if request._parked:
            with self._park_lock:
                if not request._parked or request.state is not JobState.PENDING:
                    return False
                if int(priority) >= int(request.priority):
                    return False
                request.priority = Priority(priority)
            with self._stats_lock:
                self.stats.promotions += 1
            self._safe_notify("promote", request)
            return True
        lane = self._lane_of(request)
        with lane.cond:
            if request.state is not JobState.PENDING:
                return False
            if int(priority) >= int(request.priority):
                return False
            if lane.fair is not None:
                requeue = lane.fair.remove(request)
                request.priority = Priority(priority)
                if requeue:
                    lane.fair.push(request)
                    lane.cond.notify()
            else:
                request.priority = Priority(priority)
                heapq.heappush(
                    lane.heap,
                    (self._sort_key(request), lane.seq, int(request.priority), request),
                )
                lane.seq += 1
                lane.cond.notify()
        with self._stats_lock:
            self.stats.promotions += 1
        self._safe_notify("promote", request)
        return True

    # ----------------------------------------------------------------- workers
    def _pop_valid_locked(self, lane: _Lane) -> Optional[IORequest]:
        """Pop the most urgent live entry; drops stale/cancelled ones."""
        while lane.heap:
            _, _, entry_priority, request = heapq.heappop(lane.heap)
            if request.state is not JobState.PENDING:
                continue  # cancelled while queued (or stale duplicate)
            if entry_priority != int(request.priority):
                continue  # stale entry left behind by a promotion
            return request
        return None

    def _pop_batch_locked(self, lane: _Lane) -> List[IORequest]:
        """Pop one request, plus — for small stores — the adjacent small
        stores queued behind it, to run back-to-back as one batch.

        Stores are the lowest class, so when a store is at the front the
        whole heap is stores: draining from the top preserves priority
        order while guaranteeing the batch is adjacent in queue order.

        Members claimed into a batch ride behind its head even if another
        worker goes idle — adjacency is the point (one chunk submission).
        Within the store class that can reorder a later store ahead of a
        claimed one, which is fine: stores carry no ordering guarantee,
        only a step-end deadline, and claimed members stay cancellable
        until the worker reaches them.
        """
        if lane.fair is not None:
            return self._pop_batch_fair_locked(lane)
        head = self._pop_valid_locked(lane)
        if head is None:
            return []
        batch = [head]
        if (
            self.coalesce_bytes <= 0
            or head.kind not in ("store", "demote")
            or head.nbytes >= self.coalesce_bytes
        ):
            return batch
        total = head.nbytes
        while lane.heap:
            _, _, entry_priority, nxt = lane.heap[0]
            if nxt.state is not JobState.PENDING or entry_priority != int(nxt.priority):
                heapq.heappop(lane.heap)  # stale: drop and keep scanning
                continue
            if nxt.kind not in ("store", "demote"):
                break
            if total + nxt.nbytes > self.coalesce_bytes:
                break
            heapq.heappop(lane.heap)
            batch.append(nxt)
            total += nxt.nbytes
        return batch

    def _pop_batch_fair_locked(self, lane: _Lane) -> List[IORequest]:
        """Fair-path dequeue: DRR picks the head; coalescing then
        drains the *same tenant's* queued small stores/demotions (in
        its class order) into the batch — a batch never mixes tenants,
        so coalescing cannot become a fairness loophole (the bytes a
        batch moves are all charged to the tenant DRR selected)."""
        head = lane.fair.pop()
        if head is None:
            return []
        batch = [head]
        if (
            self.coalesce_bytes <= 0
            or head.kind not in ("store", "demote")
            or head.nbytes >= self.coalesce_bytes
        ):
            return batch
        total = head.nbytes
        while True:
            nxt = lane.fair.peek_tenant_head(head.tenant)
            if (
                nxt is None
                or nxt.kind not in ("store", "demote")
                or total + nxt.nbytes > self.coalesce_bytes
            ):
                break
            lane.fair.remove(nxt)
            batch.append(nxt)
            total += nxt.nbytes
        return batch

    @staticmethod
    def _usage_open(usage_map, key, at: float) -> None:
        usage = usage_map.setdefault(key, [0, 0.0])
        if usage[0] == 0:
            usage[1] = at  # a new busy interval opens
        usage[0] += 1

    @staticmethod
    def _usage_close(usage_map, windows_map, key, request: IORequest) -> None:
        window = windows_map.setdefault(key, ChannelWindow())
        if request.state is not JobState.FAILED:
            # A failed request moved no usable bytes; counting them
            # would inflate the observed bandwidth the adaptive
            # controller trusts.  Its busy time is still real, so the
            # interval-union accounting below proceeds either way.
            window.nbytes += request.nbytes
            window.queued_s += max(0.0, request.started_at - request.submitted_at)
            window.count += 1
        usage = usage_map[key]
        usage[0] -= 1
        if usage[0] == 0:
            # Last concurrent request on the channel: the busy
            # interval closes, credited once for all of them.
            window.busy_s += max(0.0, request.finished_at - usage[1])

    def _channel_started(self, request: IORequest) -> None:
        channel = _channel_of(request.kind)
        with self._stats_lock:
            self._usage_open(
                self._channel_usage, (request.lane, channel), request.started_at
            )
            self._usage_open(
                self._tenant_usage,
                (request.tenant, request.lane, channel),
                request.started_at,
            )

    def _record_completion(self, request: IORequest) -> None:
        channel = _channel_of(request.kind)
        with self._stats_lock:
            self._usage_close(
                self._channel_usage, self._windows, (request.lane, channel), request
            )
            self._usage_close(
                self._tenant_usage,
                self._tenant_windows,
                (request.tenant, request.lane, channel),
                request,
            )

    def stats_snapshot(self) -> SchedulerStats:
        """A point-in-time copy of the cumulative counters.

        Unlike reading :attr:`stats` directly this is coherent (taken
        under the stats lock) and detached — mutating the copy, or the
        scheduler executing more work, does not affect the other.  The
        aggregate :meth:`repro.core.engine.Engine.stats` surface is built
        from this, so it never hands callers the live mutable books.
        """
        with self._stats_lock:
            snap = replace(self.stats)
            snap.submitted_by_class = dict(self.stats.submitted_by_class)
        return snap

    def peek_completion_stats(self) -> Dict[str, Dict[str, ChannelWindow]]:
        """Copy the per-lane completion windows WITHOUT draining them:
        ``{lane: {"write" | "read": ChannelWindow}}``.

        The consuming reader is the adaptive controller
        (:meth:`consume_completion_stats` once per step); a second
        consumer would silently steal its bandwidth samples.  This
        read-only view lets ``engine.stats()`` report the windows while
        leaving the controller's feed intact.  Open busy intervals are
        closed *virtually* (elapsed time added to the copy only), so an
        in-flight transfer still shows up with honest busy seconds.
        """
        now = time.monotonic()
        out: Dict[str, Dict[str, ChannelWindow]] = {}
        with self._stats_lock:
            for (lane, channel), window in self._windows.items():
                copy = replace(window)
                usage = self._channel_usage.get((lane, channel))
                if usage is not None and usage[0] > 0:
                    copy.busy_s += max(0.0, now - usage[1])
                out.setdefault(lane, {})[channel] = copy
        return out

    def consume_completion_stats(self) -> Dict[str, Dict[str, ChannelWindow]]:
        """Drain the per-lane completion windows accumulated since the
        last call: ``{lane: {"write" | "read": ChannelWindow}}``.

        Cancelled requests never appear (they moved no bytes).  The
        adaptive controller calls this once per training step and feeds
        each window's observed bandwidth into its EWMA estimators.
        """
        now = time.monotonic()
        with self._stats_lock:
            # Close any still-open busy interval at the window boundary
            # so in-flight work's elapsed time lands in this window and
            # the next interval starts fresh.
            for key, usage in self._channel_usage.items():
                if usage[0] > 0:
                    window = self._windows.setdefault(key, ChannelWindow())
                    window.busy_s += max(0.0, now - usage[1])
                    usage[1] = now
            windows, self._windows = self._windows, {}
        out: Dict[str, Dict[str, ChannelWindow]] = {}
        for (lane, channel), window in windows.items():
            out.setdefault(lane, {})[channel] = window
        return out

    def consume_tenant_completion_stats(
        self,
    ) -> Dict[str, Dict[str, Dict[str, ChannelWindow]]]:
        """Per-tenant completion windows since the last call:
        ``{tenant: {lane: {"write" | "read": ChannelWindow}}}``.

        The per-tenant mirror of :meth:`consume_completion_stats` (same
        interval-union busy accounting, scoped to one tenant's
        requests) — the feed for per-tenant bandwidth reporting and a
        future per-tenant autotune.  The two surfaces drain independent
        window dicts, so consuming one does not reset the other.
        """
        now = time.monotonic()
        with self._stats_lock:
            for key, usage in self._tenant_usage.items():
                if usage[0] > 0:
                    window = self._tenant_windows.setdefault(key, ChannelWindow())
                    window.busy_s += max(0.0, now - usage[1])
                    usage[1] = now
            windows, self._tenant_windows = self._tenant_windows, {}
        out: Dict[str, Dict[str, Dict[str, ChannelWindow]]] = {}
        for (tenant, lane, channel), window in windows.items():
            out.setdefault(tenant, {}).setdefault(lane, {})[channel] = window
        return out

    def _safe_notify(self, event: str, request: IORequest) -> None:
        """Listener dispatch that cannot take a worker down: a raising
        listener is a telemetry bug, not a reason to strand a lane."""
        try:
            self._notify(event, request)
        except Exception:
            logger.exception(
                "scheduler listener raised on %r for %s", event, request.label
            )

    @staticmethod
    def _force_terminal(request: IORequest) -> None:
        """Last-resort guarantee that a claimed request reaches a
        terminal state.  ``execute()`` fails the job on any body
        exception, but a *done callback* raising mid-dispatch can
        propagate out with the remaining callbacks unrun; re-finishing
        is not possible (the state is already terminal), so this only
        covers the theoretical claimed-but-never-finished hole — a
        waiter must never block forever on a request a worker touched."""
        if request.done_event.is_set():
            return
        request.error = request.error or RuntimeError(
            f"request {request.label} left non-terminal by a callback failure"
        )
        try:
            request._finish(JobState.FAILED)
        except Exception:
            logger.exception("failing stranded request %s raised", request.label)
            request.done_event.set()

    # ---------------------------------------------------- watchdog
    # Runs only when deadlines or hedging are configured: scans the
    # in-flight set, abandons requests stuck past their per-class
    # deadline, and issues hedge duplicates for stuck blocking loads.

    def hedge_delay_for(self, lane: str) -> float:
        """Seconds a blocking load may run before its hedge is issued.

        Explicit ``hedge_delay_s`` wins.  Otherwise adapt from the
        lane's recent executed-load durations: the p99, capped at four
        medians — on a healthy lane (tail ≈ median) only genuine
        stragglers hedge, while under brownout (tail ≫ median) the
        median cap pulls the delay down so hedges fire as soon as a
        request exceeds 4x the typical latency.  With too few samples
        the conservative 50 ms default applies.
        """
        if self.hedge_delay_s is not None:
            return self.hedge_delay_s
        with self._stats_lock:
            samples = list(self._load_durations.get(lane, ()))
        if len(samples) < 8:
            return 0.05
        ordered = sorted(samples)
        p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
        p50 = ordered[len(ordered) // 2]
        return max(0.002, min(p99, 4.0 * p50))

    def _deadline_of(self, request: IORequest) -> Optional[float]:
        if request.deadline_s is not None:
            return request.deadline_s
        return self.deadlines.get(request.priority.name)

    def _watchdog_loop(self) -> None:
        while not self._shutdown.wait(self.watchdog_interval_s):
            try:
                self._watchdog_scan()
            except Exception:  # a scan bug must not kill the watchdog
                logger.exception("scheduler %s watchdog scan raised", self.name)

    def _watchdog_scan(self, now: Optional[float] = None) -> None:
        """One pass over the in-flight set (public for deterministic tests
        via an explicit ``now``)."""
        now = time.monotonic() if now is None else now
        with self._inflight_lock:
            inflight = list(self._inflight)
        for request in inflight:
            if request.done_event.is_set() or not request.started_at:
                continue
            elapsed = now - request.started_at
            deadline = self._deadline_of(request)
            if deadline is not None and elapsed > deadline:
                self._abandon(request, elapsed, deadline)
                continue
            if (
                self.hedge
                and request.kind == "load"
                and request.priority is Priority.BLOCKING_LOAD
                and not request.is_hedge
                and request.hedge is None
                and request.hedge_fn is not None
                and elapsed >= self.hedge_delay_for(request.lane)
            ):
                self._issue_hedge(request)

    def _abandon(self, request: IORequest, elapsed: float, deadline: float) -> None:
        """Force a stuck request FAILED; the wedged body's eventual
        outcome is discarded by the job's first-completion-wins rule."""
        error = DeadlineExceededError(
            f"{request.label} exceeded its {deadline:.3f}s deadline on lane "
            f"{request.lane!r} ({elapsed:.3f}s elapsed)"
        )
        if request.abandon(error):
            with self._stats_lock:
                self.stats.deadline_abandons += 1
            self._safe_notify("abandon", request)

    def _issue_hedge(self, request: IORequest) -> None:
        """Submit the hedge duplicate for a stuck blocking load.

        First completion wins: the hedge's DONE result completes the
        primary (idempotent :meth:`~repro.io.aio.IOJob.complete` — a
        late primary outcome is discarded), and a primary completing
        first cancels a still-PENDING hedge.
        """
        hedge = IORequest(
            request.hedge_fn,
            kind="load",
            priority=Priority.BLOCKING_LOAD,
            tensor_id=request.tensor_id,
            nbytes=request.nbytes,
            lane=request.lane,
            label=f"hedge:{request.label}",
            tenant=request.tenant,
        )
        hedge.is_hedge = True
        request.hedge = hedge

        def hedge_done(job: IOJob, primary: IORequest = request) -> None:
            if job.state is JobState.DONE and not primary.done_event.is_set():
                primary.complete(job.result, None)
                with self._stats_lock:
                    self.stats.hedges_won += 1

        hedge.add_done_callback(hedge_done)
        try:
            self.submit(hedge)
        except Exception:
            # Shutdown race or quota rejection: the hedge never ran;
            # the primary proceeds as if no hedge had been issued.
            logger.debug("hedge submit for %s refused", request.label, exc_info=True)
            return
        if hedge._parked:
            # A parked hedge would fire long after the stall it was
            # meant to cut; retract it rather than waste the quota.
            self.cancel(hedge)
            return
        with self._stats_lock:
            self.stats.hedges_issued += 1
        request.add_done_callback(lambda _req, h=hedge: self.cancel(h))

    # ---------------------------------------------------- backend hooks
    # The installed IOBackend drives these for every request it claimed;
    # together they are the whole bookkeeping contract (docs §10).  Kept
    # as small public wrappers so a backend never reaches into the
    # scheduler's locking discipline.

    def begin_request(self, request: IORequest) -> None:
        """Book a claimed request as started (telemetry + listeners).

        Must be called exactly once per won :meth:`IOJob.claim`, before
        the body runs — the channel busy interval opens here.
        """
        request.started_at = time.monotonic()
        if self._watchdog is not None:
            with self._inflight_lock:
                self._inflight.add(request)
        self._channel_started(request)
        self._safe_notify("start", request)

    def finish_request(self, request: IORequest) -> None:
        """Book a begun request as finished and force a terminal state.

        Must be called exactly once per :meth:`begin_request`, after the
        body's outcome has been applied (or when the backend gave up on
        the request).  Closes the busy interval, books the completion
        windows, and guarantees the job is DONE/FAILED so no waiter can
        block forever on a request a backend touched.  ``finished_at``
        is stamped here unless the backend already did (an SQ/CQ
        backend stamps it at I/O completion, before the reap).
        """
        if not request.finished_at:
            request.finished_at = time.monotonic()
        if self._watchdog is not None:
            with self._inflight_lock:
                self._inflight.discard(request)
        duration = request.finished_at - request.started_at
        self.health.record_duration(request.lane, duration)
        if self.hedge and request.kind == "load":
            with self._stats_lock:
                window = self._load_durations.get(request.lane)
                if window is None:
                    window = self._load_durations[request.lane] = deque(maxlen=64)
                window.append(duration)
        self._record_completion(request)
        self._force_terminal(request)

    def notify_done(self, request: IORequest) -> None:
        """Emit the ``"done"`` listener event for a finished request."""
        self._safe_notify("done", request)

    def book_coalesced(self, done_members: int, trailing_done_bytes: int) -> None:
        """Book one multi-request submission's coalescing outcome.

        ``done_members`` counts the batch members that reached DONE;
        only the trailing ones (beyond the head) count as coalesced
        work, preserving ``coalesced_requests <= executed``.  A batch
        with fewer than two DONE members books nothing.
        """
        if done_members <= 1:
            return
        with self._stats_lock:
            self.stats.coalesced_batches += 1
            self.stats.coalesced_requests += done_members - 1
            self.stats.coalesced_bytes += trailing_done_bytes

    def note_reap_lag(self, request: IORequest, lag_s: float) -> None:
        """Credit completion-reap delay to the request's channel window.

        The SQ/CQ backend's reaper calls this with ``reaped_at -
        finished_at``; the controller folds the per-request lag into its
        read-latency estimate.  The thread backend never calls it (its
        windows keep ``reap_lag_s == 0.0``).
        """
        if lag_s <= 0.0:
            return
        channel = _channel_of(request.kind)
        with self._stats_lock:
            window = self._windows.setdefault((request.lane, channel), ChannelWindow())
            window.reap_lag_s += lag_s
            tenant_key = (request.tenant, request.lane, channel)
            tenant_window = self._tenant_windows.setdefault(tenant_key, ChannelWindow())
            tenant_window.reap_lag_s += lag_s

    def backend_stats_snapshot(self) -> Dict[str, IOLaneStats]:
        """Non-destructive per-lane backend telemetry (syscalls, batch
        membership, GDS-sim routing) — the ``EngineStats.io_lanes``
        surface."""
        return self.backend.lane_stats()

    def _worker_loop(self, lane: _Lane) -> None:
        while True:
            with lane.cond:
                while not lane.has_work() and not self._shutdown.is_set():
                    lane.cond.wait()
                if not lane.has_work() and self._shutdown.is_set():
                    return
                batch = self._pop_batch_locked(lane)
            # How the batch's members reach the kernel is the installed
            # backend's business (blocking per-request I/O on this
            # thread, or SQ/CQ submission with a separate reaper); the
            # scheduler's books are updated through the begin/finish
            # hooks the backend is contractually bound to call.  The
            # backend must not raise — but one poisoned batch still must
            # not kill the lane and hang drain() on the work queued
            # behind it, so the residual hazard is contained here too.
            try:
                self.backend.run_batch(lane.name, batch)
            except Exception:
                logger.exception(
                    "backend %s raised on a %s batch; worker %s continues",
                    self.backend.name,
                    lane.name,
                    threading.current_thread().name,
                )
                for request in batch:
                    if request.state is JobState.RUNNING:
                        try:
                            self.finish_request(request)
                        except Exception:
                            self._force_terminal(request)

    # ------------------------------------------------------------------- drain
    def pending(self, lane: Optional[str] = None) -> int:
        """Requests submitted but not yet finished (one lane or all)."""
        lanes = [self._lanes[lane]] if lane is not None else list(self._lanes.values())
        total = 0
        for ln in lanes:
            with ln.lock:
                total += ln.pending
        return total

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every lane is simultaneously empty and idle.

        A single pass is not enough: work finishing on a later-checked
        lane may submit onto an earlier-checked one (a cpu-lane store
        triggering a tiered demotion queues an ssd-lane write), so loop
        until one pass observes every lane idle at once.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            for lane in self._lanes.values():
                remaining = (
                    None if deadline is None else max(0.0, deadline - time.monotonic())
                )
                if not lane.idle.wait(remaining):
                    return False
            if all(lane.idle.is_set() for lane in self._lanes.values()):
                return True

    def shutdown(self) -> None:
        """Finish queued work and stop the workers (idempotent).

        Parked requests are cancelled — they were never admitted, and
        nothing will refund quota for them after the lanes stop."""
        with self._stats_lock:  # idempotency only; readers use the Event
            if self._shutdown.is_set():
                return
            self._shutdown.set()
        with self._park_lock:
            parked = [req for queue in self._parked.values() for req in queue]
            self._parked.clear()
        for request in parked:
            request._parked = False
            self.tenants.note_parked_cancelled(request.tenant)
            if request.cancel():
                self._safe_notify("cancel", request)
        self.drain()
        for lane in self._lanes.values():
            with lane.cond:
                lane.cond.notify_all()
        for worker in self._workers:
            worker.join(timeout=5)
        if self._watchdog is not None:
            self._watchdog.join(timeout=5)
        # Only after the lane workers are gone: no batch can be in
        # flight, so the backend can stop its reaper and close its FDs.
        self.backend.shutdown()

    #: Closeable-resource alias; service restarts lean on it being
    #: idempotent and actually joining every worker (no daemon leaks).
    close = shutdown

    def __enter__(self) -> "IOScheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
