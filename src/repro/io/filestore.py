"""File-backed tensor persistence (the functional-mode "SSD").

Writes tensor bytes to files under a directory (one file per tensor
identifier, like the paper's ``/mnt/md1/t1.pt`` in Fig. 4) and reads them
back.  Optional throttling emulates a bandwidth-limited device so tests can
exercise stalls, backpressure, and forwarding races; writes/reads are also
recorded against an optional :class:`~repro.device.ssd.RAID0Array` for wear
accounting.

Every file carries a **checksum frame** so silent corruption surfaces as
a typed :class:`~repro.io.errors.IntegrityError` instead of wrong
numerics::

    ┌───────┬────────────┬───────┬───────────────────┐
    │ magic │ payload len│ crc32 │      payload      │
    │ 4 B   │ 8 B (LE)   │ 4 B   │ raw tensor bytes  │
    └───────┴────────────┴───────┴───────────────────┘

``read`` verifies the magic, the length (catches short/torn writes) and
the crc32 of the payload (catches bit-rot) before any bytes reach the
caller.  An ``IntegrityError`` is classified retryable
(:func:`~repro.io.errors.is_retryable`): a transient read-path flip
heals on re-read; corruption at rest exhausts the retry budget and
surfaces.  All byte accounting (stats, throttle, wear model) stays on
the payload — the 16-byte frame is bookkeeping, not traffic.
"""

from __future__ import annotations

import struct
import threading
import time
import zlib
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.device.ssd import RAID0Array, SSD
from repro.io.errors import IntegrityError

#: Checksum-frame header: magic, payload length (LE u64), crc32 (LE u32).
FRAME_MAGIC = b"RPRO"
_FRAME_HEADER = struct.Struct("<4sQI")
FRAME_HEADER_BYTES = _FRAME_HEADER.size


def frame_payload(payload: bytes) -> bytes:
    """Prepend the checksum frame to raw tensor bytes."""
    return _FRAME_HEADER.pack(FRAME_MAGIC, len(payload), zlib.crc32(payload)) + payload


def unframe_payload(raw: bytes, label: str) -> bytes:
    """Verify and strip the checksum frame; raises :class:`IntegrityError`.

    ``label`` names the tensor/file for the error message.
    """
    if len(raw) < FRAME_HEADER_BYTES:
        raise IntegrityError(
            f"torn write: {label} holds {len(raw)} bytes, shorter than the frame header"
        )
    magic, length, crc = _FRAME_HEADER.unpack_from(raw)
    if magic != FRAME_MAGIC:
        raise IntegrityError(f"corrupt frame header for {label}: bad magic {magic!r}")
    payload = raw[FRAME_HEADER_BYTES:]
    if len(payload) != length:
        raise IntegrityError(
            f"torn write: {label} frames {length} payload bytes, found {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise IntegrityError(f"checksum mismatch for {label}: bit-rot or torn write")
    return payload


class TensorFileStore:
    """Stores numpy arrays as raw files, one per tensor id.

    Args:
        root: directory for tensor files (created if missing).
        throttle_bytes_per_s: if set, sleep so that transfers do not exceed
            this bandwidth — used to emulate slow SSDs in tests.
        array: optional SSD/RAID0 model charged with the traffic.
    """

    def __init__(
        self,
        root: Union[str, Path],
        throttle_bytes_per_s: Optional[float] = None,
        array: Optional[Union[SSD, RAID0Array]] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if throttle_bytes_per_s is not None and throttle_bytes_per_s <= 0:
            raise ValueError(f"throttle must be positive: {throttle_bytes_per_s}")
        self.throttle_bytes_per_s = throttle_bytes_per_s
        self.array = array
        self._lock = threading.Lock()
        self._bytes_written = 0
        self._bytes_read = 0
        self._write_count = 0
        self._read_count = 0

    # ------------------------------------------------------------------ stats
    @property
    def bytes_written(self) -> int:
        with self._lock:
            return self._bytes_written

    @property
    def bytes_read(self) -> int:
        with self._lock:
            return self._bytes_read

    @property
    def write_count(self) -> int:
        with self._lock:
            return self._write_count

    @property
    def read_count(self) -> int:
        with self._lock:
            return self._read_count

    def reset_stats(self) -> None:
        with self._lock:
            self._bytes_written = 0
            self._bytes_read = 0
            self._write_count = 0
            self._read_count = 0

    # ------------------------------------------------------------------- I/O
    def path_for(self, tensor_id: str) -> Path:
        return self.root / f"{tensor_id}.bin"

    def _throttle(self, nbytes: int, start: float) -> None:
        if self.throttle_bytes_per_s is None:
            return
        required = nbytes / self.throttle_bytes_per_s
        elapsed = time.monotonic() - start
        if elapsed < required:
            time.sleep(required - elapsed)

    def write(self, tensor_id: str, data: np.ndarray) -> Path:
        """Persist ``data``; returns the file path."""
        start = time.monotonic()
        path = self.path_for(tensor_id)
        contiguous = np.ascontiguousarray(data)
        with open(path, "wb") as f:
            f.write(frame_payload(contiguous.tobytes()))
        nbytes = contiguous.nbytes
        self._throttle(nbytes, start)
        with self._lock:
            self._bytes_written += nbytes
            self._write_count += 1
        if self.array is not None:
            self.array.record_write(nbytes)
        return path

    def read(self, tensor_id: str, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Read a tensor back as a fresh array of ``shape``/``dtype``."""
        start = time.monotonic()
        path = self.path_for(tensor_id)
        if not path.exists():
            raise FileNotFoundError(f"no offloaded tensor at {path}")
        payload = unframe_payload(path.read_bytes(), f"tensor {tensor_id!r} at {path}")
        data = np.frombuffer(payload, dtype=dtype).reshape(shape).copy()
        self._throttle(data.nbytes, start)
        with self._lock:
            self._bytes_read += data.nbytes
            self._read_count += 1
        if self.array is not None:
            self.array.record_read(data.nbytes)
        return data

    def delete(self, tensor_id: str) -> None:
        """Best-effort removal of an offloaded tensor file."""
        try:
            self.path_for(tensor_id).unlink()
        except FileNotFoundError:
            pass

    def clear(self) -> None:
        """Remove every tensor file (used between steps/tests)."""
        for path in self.root.glob("*.bin"):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
