"""File-backed tensor persistence (the functional-mode "SSD").

Writes tensor bytes to files under a directory (one file per tensor
identifier, like the paper's ``/mnt/md1/t1.pt`` in Fig. 4) and reads them
back.  Optional throttling emulates a bandwidth-limited device so tests can
exercise stalls, backpressure, and forwarding races; writes/reads are also
recorded against an optional :class:`~repro.device.ssd.RAID0Array` for wear
accounting.

Every file carries a **checksum frame** so silent corruption surfaces as
a typed :class:`~repro.io.errors.IntegrityError` instead of wrong
numerics::

    ┌───────┬────────────┬───────┬───────────────────┐
    │ magic │ payload len│ crc32 │      payload      │
    │ 4 B   │ 8 B (LE)   │ 4 B   │ raw tensor bytes  │
    └───────┴────────────┴───────┴───────────────────┘

``read`` verifies the magic, the length (catches short/torn writes) and
the crc32 of the payload (catches bit-rot) before any bytes reach the
caller.  An ``IntegrityError`` is classified retryable
(:func:`~repro.io.errors.is_retryable`): a transient read-path flip
heals on re-read; corruption at rest exhausts the retry budget and
surfaces.  All byte accounting (stats, throttle, wear model) stays on
the payload — the 16-byte frame is bookkeeping, not traffic.

**Zero-copy streaming (PR 5):** the store writes the 16-byte header and
then the tensor's contiguous ``memoryview`` as two writes — no
``tobytes()`` temporary, no header+payload ``bytes`` concatenation —
with the crc32 computed directly over the view.  The read path validates
the header (magic, framed length vs the expected tensor size, and the
on-disk file size) *before* touching the payload, then ``readinto``\\ s
the destination array directly: one disk-to-array transfer, zero staging
buffers.  The on-disk format is bit-identical to the legacy writer
(``frame_payload``), which remains for equivalence tests and the
``legacy_copies=True`` A/B baseline; :class:`~repro.io.buffers.CopyCounter`
telemetry (``copy_stats``) makes the eliminated copies a printed number.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.device.ssd import RAID0Array, SSD
from repro.io.buffers import CopyCounter
from repro.io.errors import IntegrityError

#: Checksum-frame header: magic, payload length (LE u64), crc32 (LE u32).
FRAME_MAGIC = b"RPRO"
_FRAME_HEADER = struct.Struct("<4sQI")
FRAME_HEADER_BYTES = _FRAME_HEADER.size


def frame_payload(payload: bytes) -> bytes:
    """Prepend the checksum frame to raw tensor bytes."""
    return _FRAME_HEADER.pack(FRAME_MAGIC, len(payload), zlib.crc32(payload)) + payload


def contiguous_view(data: np.ndarray) -> Tuple[np.ndarray, bool]:
    """C-contiguous form of ``data`` plus whether materializing it copied."""
    contiguous = np.ascontiguousarray(data)
    return contiguous, contiguous is not data


def parse_frame_header(header: bytes, label: str) -> Tuple[int, int]:
    """Validate a frame header prefix; returns ``(payload_len, crc32)``.

    The single source of truth for the fixed 16-byte header — both the
    whole-file :func:`unframe_payload` and the streaming ``readinto``
    reader validate through it, so a frame-format change has one site.
    Raises :class:`IntegrityError` on a short header or bad magic.
    """
    if len(header) < FRAME_HEADER_BYTES:
        raise IntegrityError(
            f"torn write: {label} holds {len(header)} bytes, shorter than the frame header"
        )
    magic, length, crc = _FRAME_HEADER.unpack_from(header)
    if magic != FRAME_MAGIC:
        raise IntegrityError(f"corrupt frame header for {label}: bad magic {magic!r}")
    return length, crc


def unframe_payload(raw: bytes, label: str) -> bytes:
    """Verify and strip the checksum frame; raises :class:`IntegrityError`.

    ``label`` names the tensor/file for the error message.
    """
    length, crc = parse_frame_header(raw, label)
    payload = raw[FRAME_HEADER_BYTES:]
    if len(payload) != length:
        raise IntegrityError(
            f"torn write: {label} frames {length} payload bytes, found {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise IntegrityError(f"checksum mismatch for {label}: bit-rot or torn write")
    return payload


class TensorFileStore:
    """Stores numpy arrays as raw files, one per tensor id.

    Args:
        root: directory for tensor files (created if missing).
        throttle_bytes_per_s: if set, sleep so that transfers do not exceed
            this bandwidth — used to emulate slow SSDs in tests.
        array: optional SSD/RAID0 model charged with the traffic.
        legacy_copies: restore the pre-streaming copy map (``tobytes()``
            + frame concat on write, whole-file slurp + ``frombuffer``
            copy on read) — the A/B baseline for ``bench_dataplane.py``
            and the byte-equivalence tests.
    """

    def __init__(
        self,
        root: Union[str, Path],
        throttle_bytes_per_s: Optional[float] = None,
        array: Optional[Union[SSD, RAID0Array]] = None,
        legacy_copies: bool = False,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if throttle_bytes_per_s is not None and throttle_bytes_per_s <= 0:
            raise ValueError(f"throttle must be positive: {throttle_bytes_per_s}")
        self.throttle_bytes_per_s = throttle_bytes_per_s
        self.array = array
        self.legacy_copies = legacy_copies
        self.copy_stats = CopyCounter()
        self._lock = threading.Lock()
        self._bytes_written = 0
        self._bytes_read = 0
        self._write_count = 0
        self._read_count = 0

    # ------------------------------------------------------------------ stats
    @property
    def bytes_written(self) -> int:
        with self._lock:
            return self._bytes_written

    @property
    def bytes_read(self) -> int:
        with self._lock:
            return self._bytes_read

    @property
    def write_count(self) -> int:
        with self._lock:
            return self._write_count

    @property
    def read_count(self) -> int:
        with self._lock:
            return self._read_count

    def reset_stats(self) -> None:
        with self._lock:
            self._bytes_written = 0
            self._bytes_read = 0
            self._write_count = 0
            self._read_count = 0

    # ------------------------------------------------------------------- I/O
    def path_for(self, tensor_id: str) -> Path:
        return self.root / f"{tensor_id}.bin"

    def _throttle(self, nbytes: int, start: float) -> None:
        if self.throttle_bytes_per_s is None:
            return
        required = nbytes / self.throttle_bytes_per_s
        elapsed = time.monotonic() - start
        if elapsed < required:
            time.sleep(required - elapsed)

    def write(self, tensor_id: str, data: np.ndarray) -> Path:
        """Persist ``data``; returns the file path.

        Streaming path: header and payload land as two writes, the crc32
        is computed over the tensor's contiguous view, and no
        intermediate ``bytes`` object is ever built.  The resulting file
        is bit-identical to ``frame_payload(data.tobytes())``.

        Contract: ``data`` must not mutate during the call.  The zero-copy
        path reads the source twice (crc pass, write pass) — a concurrent
        mutation would frame a checksum that can never match the payload,
        i.e. a file that is unreadable rather than merely stale.  The
        engine honors this by construction: activations are immutable
        once packed, and mutable buffers (weights) never reach a store.
        """
        start = time.monotonic()
        path = self.path_for(tensor_id)
        contiguous, copied = contiguous_view(data)
        nbytes = contiguous.nbytes
        if copied:
            self.copy_stats.count_copy(nbytes)
        if self.legacy_copies:
            # Legacy copy map: tobytes() temporary + header concat.
            with open(path, "wb") as f:
                f.write(frame_payload(contiguous.tobytes()))
            self.copy_stats.count_copy(nbytes, copies=2)
        else:
            view = memoryview(contiguous.reshape(-1)).cast("B")
            with open(path, "wb") as f:
                f.write(_FRAME_HEADER.pack(FRAME_MAGIC, nbytes, zlib.crc32(view)))
                f.write(view)
            self.copy_stats.count_avoided(2)  # tobytes() + frame concat
        self._throttle(nbytes, start)
        with self._lock:
            self._bytes_written += nbytes
            self._write_count += 1
        if self.array is not None:
            self.array.record_write(nbytes)
        return path

    def read(self, tensor_id: str, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Read a tensor back as a fresh array of ``shape``/``dtype``.

        Streaming path: the header is read and validated first (magic,
        framed length against both the expected tensor size and the
        on-disk file size — a torn write is rejected *before* any
        payload bytes are slurped), then the payload is ``readinto`` the
        destination array directly: one disk-to-array transfer, and the
        only allocation is the returned array itself — the ownership
        copy the GPU-reinstate boundary demands.
        """
        start = time.monotonic()
        path = self.path_for(tensor_id)
        if not path.exists():
            raise FileNotFoundError(f"no offloaded tensor at {path}")
        label = f"tensor {tensor_id!r} at {path}"
        if self.legacy_copies:
            payload = unframe_payload(path.read_bytes(), label)
            data = np.frombuffer(payload, dtype=dtype).reshape(shape).copy()
            self.copy_stats.count_copy(data.nbytes, copies=2)
        else:
            dtype = np.dtype(dtype)
            numel = int(np.prod(shape, dtype=np.int64))
            expected = numel * dtype.itemsize
            flat = np.empty(numel, dtype)
            with open(path, "rb") as f:
                length, crc = parse_frame_header(f.read(FRAME_HEADER_BYTES), label)
                file_size = os.fstat(f.fileno()).st_size
                if file_size != FRAME_HEADER_BYTES + length:
                    # Header and file disagree: corruption — retryable.
                    raise IntegrityError(
                        f"torn write: {label} frames {length} payload bytes, "
                        f"found {max(0, file_size - FRAME_HEADER_BYTES)}"
                    )
                if length != expected:
                    # Header and file agree with each other but not with
                    # the caller: a deterministic shape/dtype bug, not
                    # corruption — fail fast (ValueError is
                    # non-retryable), matching the legacy frombuffer/
                    # reshape behaviour.
                    raise ValueError(
                        f"{label} holds {length} payload bytes, "
                        f"caller expected {expected}"
                    )
                view = memoryview(flat)
                got = f.readinto(view)
                if got != length:
                    raise IntegrityError(
                        f"torn write: {label} frames {length} payload bytes, read {got}"
                    )
                if zlib.crc32(view) != crc:
                    raise IntegrityError(
                        f"checksum mismatch for {label}: bit-rot or torn write"
                    )
            data = flat.reshape(shape)
            self.copy_stats.count_copy(data.nbytes)
            self.copy_stats.count_avoided(1)  # the whole-file bytes slurp
        self._throttle(data.nbytes, start)
        with self._lock:
            self._bytes_read += data.nbytes
            self._read_count += 1
        if self.array is not None:
            self.array.record_read(data.nbytes)
        return data

    def delete(self, tensor_id: str) -> None:
        """Best-effort removal of an offloaded tensor file."""
        try:
            self.path_for(tensor_id).unlink()
        except FileNotFoundError:
            pass

    def clear(self) -> None:
        """Remove every tensor file (used between steps/tests)."""
        for path in self.root.glob("*.bin"):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
