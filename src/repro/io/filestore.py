"""File-backed tensor persistence (the functional-mode "SSD").

Writes tensor bytes to files under a directory (one file per tensor
identifier, like the paper's ``/mnt/md1/t1.pt`` in Fig. 4) and reads them
back.  Optional throttling emulates a bandwidth-limited device so tests can
exercise stalls, backpressure, and forwarding races; writes/reads are also
recorded against an optional :class:`~repro.device.ssd.RAID0Array` for wear
accounting.

Every file carries a **checksum frame** so silent corruption surfaces as
a typed :class:`~repro.io.errors.IntegrityError` instead of wrong
numerics::

    ┌───────┬────────────┬───────┬───────────────────┐
    │ magic │ payload len│ crc32 │      payload      │
    │ 4 B   │ 8 B (LE)   │ 4 B   │ raw tensor bytes  │
    └───────┴────────────┴───────┴───────────────────┘

``read`` verifies the magic, the length (catches short/torn writes) and
the crc32 of the payload (catches bit-rot) before any bytes reach the
caller.  An ``IntegrityError`` is classified retryable
(:func:`~repro.io.errors.is_retryable`): a transient read-path flip
heals on re-read; corruption at rest exhausts the retry budget and
surfaces.  All byte accounting (stats, throttle, wear model) stays on
the payload — the 16-byte frame is bookkeeping, not traffic.

**Zero-copy streaming (PR 5):** the store writes the 16-byte header and
then the tensor's contiguous ``memoryview`` as two writes — no
``tobytes()`` temporary, no header+payload ``bytes`` concatenation —
with the crc32 computed directly over the view.  The read path validates
the header (magic, framed length vs the expected tensor size, and the
on-disk file size) *before* touching the payload, then ``readinto``\\ s
the destination array directly: one disk-to-array transfer, zero staging
buffers.  The on-disk format is bit-identical to the legacy writer
(``frame_payload``), which remains for equivalence tests and the
``legacy_copies=True`` A/B baseline; :class:`~repro.io.buffers.CopyCounter`
telemetry (``copy_stats``) makes the eliminated copies a printed number.

**Batched backends (PR 8):** when a lane backend installs an
:class:`~repro.io.uring.IOContext` (``io_backend="uring"`` /
``"gds-sim"``), ``write``/``read`` route through vectored entry points:
one ``pwritev``/``preadv`` over a pre-opened descriptor from the
backend's FD table carries the *same* frame bytes (a one-byte probe in
the read scatter replaces the ``fstat`` torn-write check), with an
optional ``O_DIRECT`` staged-aligned write path and GDS-sim bounce
routing (registered storages skip the host staging copy).  Per-store
``write_syscalls``/``read_syscalls`` counters plus the backend's syscall
tape make the saved kernel round-trips a printed number too.  With no
context installed the classic buffered paths run unchanged —
``io_backend="thread"`` stays byte- and syscall-identical.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.device.ssd import RAID0Array, SSD
from repro.io.aio import count_syscalls, syscall_tape
from repro.io.buffers import DIRECT_ALIGNMENT, CopyCounter
from repro.io.errors import IntegrityError
from repro.io.uring import IOContext, current_io_context, preadv_full, pwritev_full

#: Checksum-frame header: magic, payload length (LE u64), crc32 (LE u32).
FRAME_MAGIC = b"RPRO"
_FRAME_HEADER = struct.Struct("<4sQI")
FRAME_HEADER_BYTES = _FRAME_HEADER.size


def frame_payload(payload: bytes) -> bytes:
    """Prepend the checksum frame to raw tensor bytes."""
    return _FRAME_HEADER.pack(FRAME_MAGIC, len(payload), zlib.crc32(payload)) + payload


def contiguous_view(data: np.ndarray) -> Tuple[np.ndarray, bool]:
    """C-contiguous form of ``data`` plus whether materializing it copied."""
    contiguous = np.ascontiguousarray(data)
    return contiguous, contiguous is not data


def parse_frame_header(header: bytes, label: str) -> Tuple[int, int]:
    """Validate a frame header prefix; returns ``(payload_len, crc32)``.

    The single source of truth for the fixed 16-byte header — both the
    whole-file :func:`unframe_payload` and the streaming ``readinto``
    reader validate through it, so a frame-format change has one site.
    Raises :class:`IntegrityError` on a short header or bad magic.
    """
    if len(header) < FRAME_HEADER_BYTES:
        raise IntegrityError(
            f"torn write: {label} holds {len(header)} bytes, shorter than the frame header"
        )
    magic, length, crc = _FRAME_HEADER.unpack_from(header)
    if magic != FRAME_MAGIC:
        raise IntegrityError(f"corrupt frame header for {label}: bad magic {magic!r}")
    return length, crc


def unframe_payload(raw: bytes, label: str) -> bytes:
    """Verify and strip the checksum frame; raises :class:`IntegrityError`.

    ``label`` names the tensor/file for the error message.
    """
    length, crc = parse_frame_header(raw, label)
    payload = raw[FRAME_HEADER_BYTES:]
    if len(payload) != length:
        raise IntegrityError(
            f"torn write: {label} frames {length} payload bytes, found {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise IntegrityError(f"checksum mismatch for {label}: bit-rot or torn write")
    return payload


class TensorFileStore:
    """Stores numpy arrays as raw files, one per tensor id.

    Args:
        root: directory for tensor files (created if missing).
        throttle_bytes_per_s: if set, sleep so that transfers do not exceed
            this bandwidth — used to emulate slow SSDs in tests.
        array: optional SSD/RAID0 model charged with the traffic.
        legacy_copies: restore the pre-streaming copy map (``tobytes()``
            + frame concat on write, whole-file slurp + ``frombuffer``
            copy on read) — the A/B baseline for ``bench_dataplane.py``
            and the byte-equivalence tests.
    """

    def __init__(
        self,
        root: Union[str, Path],
        throttle_bytes_per_s: Optional[float] = None,
        array: Optional[Union[SSD, RAID0Array]] = None,
        legacy_copies: bool = False,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if throttle_bytes_per_s is not None and throttle_bytes_per_s <= 0:
            raise ValueError(f"throttle must be positive: {throttle_bytes_per_s}")
        self.throttle_bytes_per_s = throttle_bytes_per_s
        self.array = array
        self.legacy_copies = legacy_copies
        self.copy_stats = CopyCounter()
        #: The FD table of the last batched backend that drove this
        #: store (self-attached by the vectored paths) — ``delete``/
        #: ``clear`` invalidate its cached descriptors so a reopened
        #: path never resurrects stale bytes.
        self.fd_table = None
        self._lock = threading.Lock()
        self._bytes_written = 0
        self._bytes_read = 0
        self._write_count = 0
        self._read_count = 0
        self._write_syscalls = 0
        self._read_syscalls = 0

    # ------------------------------------------------------------------ stats
    @property
    def bytes_written(self) -> int:
        with self._lock:
            return self._bytes_written

    @property
    def bytes_read(self) -> int:
        with self._lock:
            return self._bytes_read

    @property
    def write_count(self) -> int:
        with self._lock:
            return self._write_count

    @property
    def read_count(self) -> int:
        with self._lock:
            return self._read_count

    @property
    def write_syscalls(self) -> int:
        """Kernel round-trips spent writing (open/write/close/ftruncate)."""
        with self._lock:
            return self._write_syscalls

    @property
    def read_syscalls(self) -> int:
        """Kernel round-trips spent reading (open/read/fstat/close)."""
        with self._lock:
            return self._read_syscalls

    def reset_stats(self) -> None:
        with self._lock:
            self._bytes_written = 0
            self._bytes_read = 0
            self._write_count = 0
            self._read_count = 0
            self._write_syscalls = 0
            self._read_syscalls = 0

    # ------------------------------------------------------------------- I/O
    def path_for(self, tensor_id: str) -> Path:
        return self.root / f"{tensor_id}.bin"

    def _throttle(self, nbytes: int, start: float) -> None:
        if self.throttle_bytes_per_s is None:
            return
        required = nbytes / self.throttle_bytes_per_s
        elapsed = time.monotonic() - start
        if elapsed < required:
            time.sleep(required - elapsed)

    def write(self, tensor_id: str, data: np.ndarray) -> Path:
        """Persist ``data``; returns the file path.

        Streaming path: header and payload land as two writes, the crc32
        is computed over the tensor's contiguous view, and no
        intermediate ``bytes`` object is ever built.  The resulting file
        is bit-identical to ``frame_payload(data.tobytes())``.

        Contract: ``data`` must not mutate during the call.  The zero-copy
        path reads the source twice (crc pass, write pass) — a concurrent
        mutation would frame a checksum that can never match the payload,
        i.e. a file that is unreadable rather than merely stale.  The
        engine honors this by construction: activations are immutable
        once packed, and mutable buffers (weights) never reach a store.
        """
        start = time.monotonic()
        path = self.path_for(tensor_id)
        contiguous, copied = contiguous_view(data)
        nbytes = contiguous.nbytes
        if copied:
            self.copy_stats.count_copy(nbytes)
        ctx = current_io_context()
        if self.legacy_copies:
            # Legacy copy map: tobytes() temporary + header concat.
            with open(path, "wb") as f:
                f.write(frame_payload(contiguous.tobytes()))
            self.copy_stats.count_copy(nbytes, copies=2)
            syscalls = 3  # open + write + close
            count_syscalls(syscalls)
        elif ctx is not None:
            syscalls = self._write_vectored(path, data, contiguous, nbytes, ctx)
            self.copy_stats.count_avoided(2)  # tobytes() + frame concat
        else:
            view = memoryview(contiguous.reshape(-1)).cast("B")
            with open(path, "wb") as f:
                f.write(_FRAME_HEADER.pack(FRAME_MAGIC, nbytes, zlib.crc32(view)))
                f.write(view)
            self.copy_stats.count_avoided(2)  # tobytes() + frame concat
            syscalls = 4  # open + header write + payload write + close
            count_syscalls(syscalls)
        self._throttle(nbytes, start)
        with self._lock:
            self._bytes_written += nbytes
            self._write_count += 1
            self._write_syscalls += syscalls
        if self.array is not None:
            self.array.record_write(nbytes)
        return path

    def read(self, tensor_id: str, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Read a tensor back as a fresh array of ``shape``/``dtype``.

        Streaming path: the header is read and validated first (magic,
        framed length against both the expected tensor size and the
        on-disk file size — a torn write is rejected *before* any
        payload bytes are slurped), then the payload is ``readinto`` the
        destination array directly: one disk-to-array transfer, and the
        only allocation is the returned array itself — the ownership
        copy the GPU-reinstate boundary demands.
        """
        start = time.monotonic()
        path = self.path_for(tensor_id)
        ctx = current_io_context()
        if ctx is not None and not self.legacy_copies:
            # Batched backend: missing-file detection rides the open
            # (no separate exists() stat).
            data, syscalls = self._read_vectored(tensor_id, path, shape, dtype, ctx)
            self.copy_stats.count_copy(data.nbytes)
            self.copy_stats.count_avoided(1)  # the whole-file bytes slurp
            self._throttle(data.nbytes, start)
            with self._lock:
                self._bytes_read += data.nbytes
                self._read_count += 1
                self._read_syscalls += syscalls
            if self.array is not None:
                self.array.record_read(data.nbytes)
            return data
        if not path.exists():
            raise FileNotFoundError(f"no offloaded tensor at {path}")
        label = f"tensor {tensor_id!r} at {path}"
        if self.legacy_copies:
            payload = unframe_payload(path.read_bytes(), label)
            data = np.frombuffer(payload, dtype=dtype).reshape(shape).copy()
            self.copy_stats.count_copy(data.nbytes, copies=2)
            syscalls = 3  # open + read + close (the whole-file slurp)
        else:
            dtype = np.dtype(dtype)
            numel = int(np.prod(shape, dtype=np.int64))
            expected = numel * dtype.itemsize
            flat = np.empty(numel, dtype)
            with open(path, "rb") as f:
                length, crc = parse_frame_header(f.read(FRAME_HEADER_BYTES), label)
                file_size = os.fstat(f.fileno()).st_size
                if file_size != FRAME_HEADER_BYTES + length:
                    # Header and file disagree: corruption — retryable.
                    raise IntegrityError(
                        f"torn write: {label} frames {length} payload bytes, "
                        f"found {max(0, file_size - FRAME_HEADER_BYTES)}"
                    )
                if length != expected:
                    # Header and file agree with each other but not with
                    # the caller: a deterministic shape/dtype bug, not
                    # corruption — fail fast (ValueError is
                    # non-retryable), matching the legacy frombuffer/
                    # reshape behaviour.
                    raise ValueError(
                        f"{label} holds {length} payload bytes, "
                        f"caller expected {expected}"
                    )
                view = memoryview(flat)
                got = f.readinto(view)
                if got != length:
                    raise IntegrityError(
                        f"torn write: {label} frames {length} payload bytes, read {got}"
                    )
                if zlib.crc32(view) != crc:
                    raise IntegrityError(
                        f"checksum mismatch for {label}: bit-rot or torn write"
                    )
            data = flat.reshape(shape)
            self.copy_stats.count_copy(data.nbytes)
            self.copy_stats.count_avoided(1)  # the whole-file bytes slurp
            syscalls = 5  # open + header read + fstat + readinto + close
        count_syscalls(syscalls)
        self._throttle(data.nbytes, start)
        with self._lock:
            self._bytes_read += data.nbytes
            self._read_count += 1
            self._read_syscalls += syscalls
        if self.array is not None:
            self.array.record_read(data.nbytes)
        return data

    # ------------------------------------------------------- vectored paths
    def _write_vectored(
        self,
        path: Path,
        source: np.ndarray,
        contiguous: np.ndarray,
        nbytes: int,
        ctx: IOContext,
    ) -> int:
        """Batched-backend write over a pre-opened descriptor.

        One ``pwritev`` carries header + payload (bit-identical to the
        streaming frame); a reused descriptor is ``ftruncate``\\ d so no
        stale tail survives.  A GDS-sim context routes by registration:
        registered source arrays go straight to disk (the direct lane),
        unregistered ones are staged through a host bounce lease first.
        Returns the syscalls issued.
        """
        if self.fd_table is not ctx.fds:
            self.fd_table = ctx.fds
        payload = memoryview(contiguous.reshape(-1)).cast("B")
        lease = None
        if ctx.gds is not None:
            if ctx.gds.is_array_registered(source):
                ctx.note_bounce(skipped=True)
            elif ctx.arena is not None:
                lease = ctx.arena.lease(nbytes)
                staged = lease.view((nbytes,), np.uint8)
                staged[:] = np.frombuffer(payload, dtype=np.uint8)
                self.copy_stats.count_copy(nbytes)
                ctx.note_bounce(skipped=False)
                payload = memoryview(staged)
        tape = syscall_tape()
        try:
            with tape:
                header = _FRAME_HEADER.pack(FRAME_MAGIC, nbytes, zlib.crc32(payload))
                total = FRAME_HEADER_BYTES + nbytes
                fd, direct, cached, _ = ctx.fds.acquire_write(str(path))
                if direct and self._pwrite_direct(fd, header, payload, total, ctx):
                    pass
                else:
                    if direct:
                        # O_DIRECT open succeeded but the write path
                        # refused (or no staging arena): demote this
                        # path's descriptor to buffered and carry on.
                        fd = ctx.fds.acquire_read(str(path))
                        cached = True
                    pwritev_full(fd, [header, payload])
                    if cached:
                        # A fresh descriptor opened with O_TRUNC; a
                        # reused one must drop any longer stale frame.
                        os.ftruncate(fd, total)
                        count_syscalls(1)
        finally:
            if lease is not None:
                lease.release()
        return tape.count

    def _pwrite_direct(
        self, fd: int, header: bytes, payload: memoryview, total: int, ctx: IOContext
    ) -> bool:
        """``O_DIRECT`` write: stage the frame into an aligned arena
        lease, zero-pad to the alignment unit, ``pwrite`` the padded
        block, then ``ftruncate`` to the true frame length — the on-disk
        bytes stay bit-identical to the buffered path.  Returns False to
        demote (no staging arena, or the device refused the write).
        """
        if ctx.arena is None:
            return False
        padded = -(-total // DIRECT_ALIGNMENT) * DIRECT_ALIGNMENT
        lease = ctx.arena.lease(padded, aligned=True)
        try:
            buf = lease.view((padded,), np.uint8)
            buf[:FRAME_HEADER_BYTES] = np.frombuffer(header, dtype=np.uint8)
            if total > FRAME_HEADER_BYTES:
                buf[FRAME_HEADER_BYTES:total] = np.frombuffer(payload, dtype=np.uint8)
            buf[total:] = 0
            # The aligned staging copy is the O_DIRECT tax; counted so
            # copy telemetry never under-reports.
            self.copy_stats.count_copy(total - FRAME_HEADER_BYTES)
            mv = memoryview(buf)
            offset = 0
            while offset < padded:
                try:
                    written = os.pwrite(fd, mv[offset:], offset)
                except OSError:
                    if offset:
                        raise  # partial direct write: surface, don't demote
                    ctx.note_direct_fallback()
                    return False
                count_syscalls(1)
                if written <= 0:
                    raise OSError(f"pwrite made no progress at offset {offset}")
                offset += written
            os.ftruncate(fd, total)
            count_syscalls(1)
            return True
        finally:
            lease.release()

    def _read_vectored(
        self,
        tensor_id: str,
        path: Path,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        ctx: IOContext,
    ) -> Tuple[np.ndarray, int]:
        """Batched-backend read: one ``preadv`` scatter fills the header,
        the destination array, and a one-byte probe.

        The probe replaces the classic path's ``fstat``: overshooting
        into it means the file holds more than the frame claims, a
        shortfall means a torn write — both rejected before the payload
        is trusted, with the classic path's error taxonomy.  Returns
        ``(data, syscalls)``.
        """
        if self.fd_table is not ctx.fds:
            self.fd_table = ctx.fds
        dtype = np.dtype(dtype)
        numel = int(np.prod(shape, dtype=np.int64))
        expected = numel * dtype.itemsize
        label = f"tensor {tensor_id!r} at {path}"
        flat = np.empty(numel, dtype)
        header = bytearray(FRAME_HEADER_BYTES)
        probe = bytearray(1)
        tape = syscall_tape()
        with tape:
            try:
                fd = ctx.fds.acquire_read(str(path))
            except FileNotFoundError:
                raise FileNotFoundError(f"no offloaded tensor at {path}") from None
            got = preadv_full(fd, [header, memoryview(flat), probe])
        length, crc = parse_frame_header(
            bytes(header[: min(got, FRAME_HEADER_BYTES)]), label
        )
        payload_got = got - FRAME_HEADER_BYTES
        if length == expected:
            if payload_got != length:
                found = payload_got if payload_got < length else f"over {length}"
                raise IntegrityError(
                    f"torn write: {label} frames {length} payload bytes, found {found}"
                )
        elif (length < expected and payload_got == length) or (
            length > expected and payload_got == expected + 1
        ):
            # Header and file agree with each other but not with the
            # caller: a deterministic shape/dtype bug — fail fast
            # (ValueError is non-retryable), like the classic path.
            raise ValueError(
                f"{label} holds {length} payload bytes, caller expected {expected}"
            )
        else:
            raise IntegrityError(
                f"torn write: {label} frames {length} payload bytes, "
                f"found {max(0, payload_got)}"
            )
        if zlib.crc32(memoryview(flat)) != crc:
            raise IntegrityError(f"checksum mismatch for {label}: bit-rot or torn write")
        return flat.reshape(shape), tape.count

    def delete(self, tensor_id: str) -> None:
        """Best-effort removal of an offloaded tensor file."""
        path = self.path_for(tensor_id)
        table = self.fd_table
        if table is not None:
            table.invalidate(str(path))
        try:
            path.unlink()
        except FileNotFoundError:
            pass

    def clear(self) -> None:
        """Remove every tensor file (used between steps/tests)."""
        table = self.fd_table
        for path in self.root.glob("*.bin"):
            if table is not None:
                table.invalidate(str(path))
            try:
                path.unlink()
            except FileNotFoundError:
                pass
