"""File-backed tensor persistence (the functional-mode "SSD").

Writes raw tensor bytes to files under a directory (one file per tensor
identifier, like the paper's ``/mnt/md1/t1.pt`` in Fig. 4) and reads them
back.  Optional throttling emulates a bandwidth-limited device so tests can
exercise stalls, backpressure, and forwarding races; writes/reads are also
recorded against an optional :class:`~repro.device.ssd.RAID0Array` for wear
accounting.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.device.ssd import RAID0Array, SSD


class TensorFileStore:
    """Stores numpy arrays as raw files, one per tensor id.

    Args:
        root: directory for tensor files (created if missing).
        throttle_bytes_per_s: if set, sleep so that transfers do not exceed
            this bandwidth — used to emulate slow SSDs in tests.
        array: optional SSD/RAID0 model charged with the traffic.
    """

    def __init__(
        self,
        root: Union[str, Path],
        throttle_bytes_per_s: Optional[float] = None,
        array: Optional[Union[SSD, RAID0Array]] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if throttle_bytes_per_s is not None and throttle_bytes_per_s <= 0:
            raise ValueError(f"throttle must be positive: {throttle_bytes_per_s}")
        self.throttle_bytes_per_s = throttle_bytes_per_s
        self.array = array
        self._lock = threading.Lock()
        self._bytes_written = 0
        self._bytes_read = 0
        self._write_count = 0
        self._read_count = 0

    # ------------------------------------------------------------------ stats
    @property
    def bytes_written(self) -> int:
        with self._lock:
            return self._bytes_written

    @property
    def bytes_read(self) -> int:
        with self._lock:
            return self._bytes_read

    @property
    def write_count(self) -> int:
        with self._lock:
            return self._write_count

    @property
    def read_count(self) -> int:
        with self._lock:
            return self._read_count

    def reset_stats(self) -> None:
        with self._lock:
            self._bytes_written = 0
            self._bytes_read = 0
            self._write_count = 0
            self._read_count = 0

    # ------------------------------------------------------------------- I/O
    def path_for(self, tensor_id: str) -> Path:
        return self.root / f"{tensor_id}.bin"

    def _throttle(self, nbytes: int, start: float) -> None:
        if self.throttle_bytes_per_s is None:
            return
        required = nbytes / self.throttle_bytes_per_s
        elapsed = time.monotonic() - start
        if elapsed < required:
            time.sleep(required - elapsed)

    def write(self, tensor_id: str, data: np.ndarray) -> Path:
        """Persist ``data``; returns the file path."""
        start = time.monotonic()
        path = self.path_for(tensor_id)
        contiguous = np.ascontiguousarray(data)
        with open(path, "wb") as f:
            f.write(contiguous.tobytes())
        nbytes = contiguous.nbytes
        self._throttle(nbytes, start)
        with self._lock:
            self._bytes_written += nbytes
            self._write_count += 1
        if self.array is not None:
            self.array.record_write(nbytes)
        return path

    def read(self, tensor_id: str, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Read a tensor back as a fresh array of ``shape``/``dtype``."""
        start = time.monotonic()
        path = self.path_for(tensor_id)
        if not path.exists():
            raise FileNotFoundError(f"no offloaded tensor at {path}")
        raw = path.read_bytes()
        data = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
        self._throttle(data.nbytes, start)
        with self._lock:
            self._bytes_read += data.nbytes
            self._read_count += 1
        if self.array is not None:
            self.array.record_read(data.nbytes)
        return data

    def delete(self, tensor_id: str) -> None:
        """Best-effort removal of an offloaded tensor file."""
        try:
            self.path_for(tensor_id).unlink()
        except FileNotFoundError:
            pass

    def clear(self) -> None:
        """Remove every tensor file (used between steps/tests)."""
        for path in self.root.glob("*.bin"):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
