"""Pooled reusable host buffers: the zero-copy data plane's allocator.

The offload engine's job is moving activation bytes at hardware speed,
yet a naive data plane pays for every tensor twice — once in the
unavoidable transfer itself and again in per-tensor heap allocations
(fresh ``np.ndarray`` per CPU store, ``tobytes()`` temporaries per SSD
write, ``bytes`` slurps per read).  PatrickStar-style chunk-based memory
managers (arXiv:2108.05818) showed that reusing fixed arenas instead of
allocating per tensor removes both the allocator cost and the page-fault
storm of first-touch on cold pages.

:class:`BufferArena` brings that to this stack:

- **size-class bins** — buffers are pooled by power-of-two size class
  (floor :data:`MIN_SIZE_CLASS`), so a released 96 KiB buffer serves the
  next 100 KiB lease without fragmentation bookkeeping;
- **explicit lease/release** — :meth:`BufferArena.lease` hands out a
  :class:`BufferLease` whose lifetime the caller owns; ``release()`` is
  idempotent, so lifecycle code (scheduler terminal states, tier
  evictions, failure recovery) can be defensive without double-free
  hazards;
- **exact accounting** — :class:`ArenaStats` tracks leases, releases,
  hits (a pooled buffer reused: one allocation avoided), misses (a fresh
  allocation), outstanding leases and their high-water mark.  The
  invariant the property tests pin down: after a drain,
  ``leases == releases + outstanding`` and every outstanding lease is
  attributable to a live resident buffer;
- **bounded retention** — free buffers are retained up to
  ``capacity_bytes`` (or, when constructed with ``pool=``, the tied
  :class:`~repro.core.offloader.PinnedMemoryPool`'s capacity, tracked
  live so ``fit_to_high_watermark`` shrinks the arena too).  Beyond the
  cap a released buffer is dropped, not pooled — the arena trades hit
  rate for a hard memory bound.

:class:`CopyCounter` is the shared copy-count telemetry: every component
of the data plane (file store, chunk store, CPU offloader) counts the
memcpys it performs and the allocations the streaming/pooled path avoided
versus the legacy copy map, so "we eliminated the copies" is a printed
number, not a claim.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.io.tenancy import current_tenant

#: Smallest size-class: leases below this share 4 KiB buffers (the page
#: size — also the alignment unit the SSD path cares about).
MIN_SIZE_CLASS = 4096

#: ``O_DIRECT`` buffer/offset/length alignment unit.  Every size class
#: is a multiple of this by construction (power-of-two, floor 4 KiB) —
#: only the buffer's *address* needs extra care, which ``aligned=True``
#: leases provide.
DIRECT_ALIGNMENT = 4096


def size_class(nbytes: int) -> int:
    """Round a request up to its power-of-two bin (floor 4 KiB)."""
    if nbytes < 0:
        raise ValueError(f"negative lease size: {nbytes}")
    if nbytes <= MIN_SIZE_CLASS:
        return MIN_SIZE_CLASS
    return 1 << (nbytes - 1).bit_length()


@dataclass
class ArenaStats:
    """Exact lease accounting (the property-test surface)."""

    leases: int = 0            #: lease() calls served
    releases: int = 0          #: leases returned (dropped or pooled)
    hits: int = 0              #: leases served from the free list
    misses: int = 0            #: leases that allocated a fresh buffer
    requested_bytes: int = 0   #: cumulative bytes requested
    outstanding: int = 0       #: live leases right now
    outstanding_bytes: int = 0  #: size-class bytes currently leased
    high_water_bytes: int = 0  #: peak of outstanding_bytes
    retained_bytes: int = 0    #: free-list bytes currently pooled
    trimmed_buffers: int = 0   #: free buffers dropped to respect the cap
    aligned_leases: int = 0    #: leases served from the O_DIRECT-aligned bins
    #: Live leases per owning tenant (emptied keys are dropped, so after
    #: a clean drain this is exactly ``{}`` — the per-tenant no-leak
    #: invariant the isolation chaos tests reconcile).
    outstanding_by_tenant: Dict[str, int] = field(default_factory=dict)

    @property
    def allocs_avoided(self) -> int:
        """Allocations the pool absorbed (each hit is one ``np.empty``
        plus its first-touch page faults that never happened)."""
        return self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.leases if self.leases else 0.0

    @property
    def leaked(self) -> int:
        """Leases never returned (must be 0 after a drained shutdown)."""
        return self.leases - self.releases - self.outstanding


@dataclass
class CopySnapshot:
    """Frozen view of one :class:`CopyCounter`."""

    copies: int = 0
    bytes_copied: int = 0
    allocs_avoided: int = 0


class CopyCounter:
    """Thread-safe memcpy/allocation telemetry for one data-plane stage."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._copies = 0
        self._bytes_copied = 0
        self._allocs_avoided = 0

    def count_copy(self, nbytes: int, copies: int = 1) -> None:
        with self._lock:
            self._copies += copies
            self._bytes_copied += nbytes * copies

    def count_avoided(self, allocs: int = 1) -> None:
        with self._lock:
            self._allocs_avoided += allocs

    def snapshot(self) -> CopySnapshot:
        with self._lock:
            return CopySnapshot(self._copies, self._bytes_copied, self._allocs_avoided)


def owned_copy(
    view: np.ndarray, dtype: np.dtype, counter: Optional[CopyCounter] = None
) -> np.ndarray:
    """The single ownership copy at a reinstate boundary.

    Exactly one copy is performed: a plain ``copy()`` when the dtype
    already matches (the old ``astype(dtype, copy=True)`` call sites
    forced the conversion machinery even for the identity conversion), a
    conversion copy otherwise — never a convert *and* a copy.
    """
    dtype = np.dtype(dtype)
    out = view.copy() if view.dtype == dtype else view.astype(dtype)
    if counter is not None:
        counter.count_copy(out.nbytes)
    return out


class BufferLease:
    """One leased buffer; the holder owns it until :meth:`release`.

    ``array`` is the raw uint8 size-class buffer; :meth:`view` carves the
    exactly-sized typed window the caller copies into.  Release is
    idempotent — terminal-state hooks and explicit lifecycle code can
    both call it without coordinating.
    """

    __slots__ = ("arena", "array", "nbytes", "tenant", "aligned", "_released")

    def __init__(
        self,
        arena: "BufferArena",
        array: np.ndarray,
        nbytes: int,
        tenant: Optional[str] = None,
        aligned: bool = False,
    ) -> None:
        self.arena = arena
        self.array = array
        self.nbytes = nbytes
        #: Whether the buffer's address is DIRECT_ALIGNMENT-aligned (the
        #: lease came from — and returns to — the aligned bins).
        self.aligned = aligned
        #: Owning tenant (stamped at lease time from the leasing
        #: thread's scope) — the key the per-tenant arena accounting
        #: credits the release back to, however many hands the lease
        #: passes through in between.
        self.tenant = tenant if tenant is not None else current_tenant()
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def view(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A ``shape``/``dtype`` window over the leased bytes (no copy)."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes > self.array.nbytes:
            raise ValueError(
                f"view of {nbytes} bytes exceeds the {self.array.nbytes}-byte lease"
            )
        return self.array[:nbytes].view(dtype).reshape(shape)

    def release(self) -> None:
        """Return the buffer to the arena (idempotent and atomic: the
        released flag flips under the arena lock, so concurrent releases
        of the same lease cannot double-return the buffer)."""
        self.arena._release(self)


class BufferArena:
    """Thread-safe, size-class-binned pool of reusable host buffers.

    Args:
        capacity_bytes: cap on *retained free* bytes.  ``None`` defers to
            ``pool`` (below) or means unbounded retention.  Leasing is
            never refused — the cap bounds what the arena keeps warm, not
            what callers may hold; leased bytes are accounted by their
            owner (e.g. the pinned pool), not double-counted here.
        pool: a :class:`~repro.core.offloader.PinnedMemoryPool` whose
            *current* capacity caps retention.  Read live on every
            release, so re-sizing the pool (``fit_to_high_watermark``)
            re-sizes the arena with it.
    """

    def __init__(self, capacity_bytes: Optional[int] = None, pool=None) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise ValueError(f"capacity_bytes must be >= 0: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.pool = pool
        self._lock = threading.Lock()
        self._free: Dict[int, List[np.ndarray]] = {}
        #: O_DIRECT-aligned buffers pool separately: a plain ``np.empty``
        #: has no address guarantee, so the two populations must never
        #: mix (an aligned lease served an unaligned buffer would EINVAL
        #: at ``pwrite`` time).
        self._free_aligned: Dict[int, List[np.ndarray]] = {}
        self._stats = ArenaStats()

    # ------------------------------------------------------------------ stats
    def stats(self) -> ArenaStats:
        """A consistent copy of the arena's accounting."""
        with self._lock:
            snap = ArenaStats(**vars(self._stats))
            # vars() shallow-copies: the per-tenant dict must be copied
            # explicitly or the snapshot would alias live state.
            snap.outstanding_by_tenant = dict(self._stats.outstanding_by_tenant)
        return snap

    def outstanding_for(self, tenant: str) -> int:
        """Live leases currently held by one tenant."""
        with self._lock:
            return self._stats.outstanding_by_tenant.get(tenant, 0)

    @property
    def retention_cap_bytes(self) -> Optional[int]:
        """The live retention bound (explicit cap, else the tied pool's)."""
        if self.capacity_bytes is not None:
            return self.capacity_bytes
        if self.pool is not None:
            return self.pool.capacity_bytes
        return None

    # ------------------------------------------------------------------ lease
    def lease(
        self, nbytes: int, tenant: Optional[str] = None, aligned: bool = False
    ) -> BufferLease:
        """Lease a buffer of at least ``nbytes`` (size-class rounded).

        The lease is attributed to ``tenant`` (default: the calling
        thread's :func:`~repro.io.tenancy.current_tenant` scope) for
        the per-tenant outstanding books.

        ``aligned=True`` guarantees the buffer's address is
        :data:`DIRECT_ALIGNMENT`-aligned (the ``O_DIRECT`` requirement;
        length and offset are already multiples by size-class
        construction).  Aligned buffers pool in their own bins; the
        over-allocation slack (one alignment unit per fresh buffer) is
        not charged to the retention books.
        """
        cls = size_class(nbytes)
        owner = tenant if tenant is not None else current_tenant()
        with self._lock:
            bin_ = (self._free_aligned if aligned else self._free).get(cls)
            if bin_:
                array = bin_.pop()
                self._stats.hits += 1
                self._stats.retained_bytes -= cls
            else:
                array = None
                self._stats.misses += 1
            if aligned:
                self._stats.aligned_leases += 1
            self._stats.leases += 1
            self._stats.requested_bytes += nbytes
            self._stats.outstanding += 1
            self._stats.outstanding_bytes += cls
            by_tenant = self._stats.outstanding_by_tenant
            by_tenant[owner] = by_tenant.get(owner, 0) + 1
            self._stats.high_water_bytes = max(
                self._stats.high_water_bytes, self._stats.outstanding_bytes
            )
        if array is None:
            # Allocate outside the lock: np.empty of a large class can
            # fault pages, and concurrent leases must not serialize on it.
            try:
                if aligned:
                    # Over-allocate one alignment unit and slice to the
                    # first aligned address; the slice view keeps the
                    # base allocation alive for the buffer's lifetime.
                    raw = np.empty(cls + DIRECT_ALIGNMENT, dtype=np.uint8)
                    offset = (-raw.ctypes.data) % DIRECT_ALIGNMENT
                    array = raw[offset : offset + cls]
                else:
                    array = np.empty(cls, dtype=np.uint8)
            except BaseException:
                # Roll the optimistic accounting back — a failed
                # allocation must leave the books exact (no phantom
                # outstanding lease that nothing can ever release).
                with self._lock:
                    self._stats.leases -= 1
                    self._stats.misses -= 1
                    self._stats.requested_bytes -= nbytes
                    self._stats.outstanding -= 1
                    self._stats.outstanding_bytes -= cls
                    if aligned:
                        self._stats.aligned_leases -= 1
                    self._drop_tenant_outstanding_locked(owner)
                raise
        return BufferLease(self, array, nbytes, tenant=owner, aligned=aligned)

    def _drop_tenant_outstanding_locked(self, tenant: str) -> None:
        by_tenant = self._stats.outstanding_by_tenant
        remaining = by_tenant.get(tenant, 0) - 1
        if remaining > 0:
            by_tenant[tenant] = remaining
        else:
            # Zeroed keys are removed so "fully reconciled" reads as an
            # empty dict, tenant by tenant.
            by_tenant.pop(tenant, None)

    def _release(self, lease: BufferLease) -> None:
        cls = lease.array.nbytes
        with self._lock:
            if lease._released:  # atomic check-then-act under the lock
                return
            lease._released = True
            self._stats.releases += 1
            self._stats.outstanding -= 1
            self._stats.outstanding_bytes -= cls
            self._drop_tenant_outstanding_locked(lease.tenant)
            cap = self.retention_cap_bytes
            if cap is None or self._stats.retained_bytes + cls <= cap:
                free = self._free_aligned if lease.aligned else self._free
                free.setdefault(cls, []).append(lease.array)
                self._stats.retained_bytes += cls
            else:
                self._stats.trimmed_buffers += 1

    def trim(self, target_bytes: int = 0) -> int:
        """Drop free buffers until retention <= ``target_bytes``.

        Returns the number of buffers dropped.  Leased buffers are
        untouched — only the warm free list shrinks.
        """
        if target_bytes < 0:
            raise ValueError(f"target_bytes must be >= 0: {target_bytes}")
        dropped = 0
        with self._lock:
            for free in (self._free, self._free_aligned):
                # Largest classes first: fewest drops to reach the target.
                for cls in sorted(free, reverse=True):
                    bin_ = free[cls]
                    while bin_ and self._stats.retained_bytes > target_bytes:
                        bin_.pop()
                        self._stats.retained_bytes -= cls
                        self._stats.trimmed_buffers += 1
                        dropped += 1
                    if not bin_:
                        del free[cls]
        return dropped


@dataclass
class DataPlaneStats:
    """Aggregated copy-map telemetry across a backend's components.

    ``bytes_copied``/``copies`` count the memcpys actually performed,
    ``allocs_avoided`` the allocations the pooled/streaming paths skipped
    versus the legacy copy map (``tobytes()`` temporaries, header+payload
    concats, whole-file slurps, per-store fresh arrays).  The arena
    fields surface the pool's reuse quality — ``arena_hit_rate`` is the
    fraction of leases served without allocating.
    """

    copies: int = 0
    bytes_copied: int = 0
    allocs_avoided: int = 0
    arena_leases: int = 0
    arena_hits: int = 0
    arena_misses: int = 0
    arena_outstanding: int = 0
    arena_high_water_bytes: int = 0
    arena_retained_bytes: int = 0
    #: GDS-sim routing books: host bounce-staging copies actually made
    #: for unregistered storages, and the ones elided because the
    #: storage was GDS-registered (the direct lane).  Zero under the
    #: thread/uring backends, which never stage.
    bounce_copies: int = 0
    bounce_copies_skipped: int = 0

    @property
    def arena_hit_rate(self) -> float:
        return self.arena_hits / self.arena_leases if self.arena_leases else 0.0

    def add_counter(self, snap: CopySnapshot) -> None:
        self.copies += snap.copies
        self.bytes_copied += snap.bytes_copied
        self.allocs_avoided += snap.allocs_avoided

    def add_arena(self, stats: ArenaStats) -> None:
        self.arena_leases += stats.leases
        self.arena_hits += stats.hits
        self.arena_misses += stats.misses
        self.arena_outstanding += stats.outstanding
        self.arena_high_water_bytes += stats.high_water_bytes
        self.arena_retained_bytes += stats.retained_bytes
        # Every arena hit is a fresh allocation (and its page faults)
        # that never happened.
        self.allocs_avoided += stats.hits

    def merge(self, other: "DataPlaneStats") -> "DataPlaneStats":
        self.copies += other.copies
        self.bytes_copied += other.bytes_copied
        self.allocs_avoided += other.allocs_avoided
        self.arena_leases += other.arena_leases
        self.arena_hits += other.arena_hits
        self.arena_misses += other.arena_misses
        self.arena_outstanding += other.arena_outstanding
        self.arena_high_water_bytes += other.arena_high_water_bytes
        self.arena_retained_bytes += other.arena_retained_bytes
        self.bounce_copies += other.bounce_copies
        self.bounce_copies_skipped += other.bounce_copies_skipped
        return self
