"""Seeded, deterministic fault injection for the offload I/O path.

The chaos harness that proves the recovery semantics: a
:class:`FaultInjector` wraps any tensor store
(:class:`~repro.io.filestore.TensorFileStore` or
:class:`~repro.io.chunkstore.ChunkedTensorStore` — anything with the
``write``/``read``/``delete``/``clear``/``path_for`` surface) and
injects the failure modes a production NVMe path actually exhibits,
according to a :class:`FaultPlan`:

- **transient errors** — :class:`~repro.io.errors.TransientIOError`
  raised before the backing operation; heals on retry (each op the plan
  selects faults its first ``transient_repeats`` attempts, then the
  retry goes through — so a plan with ``transient_repeats`` <= the
  request retry budget is *survivable by construction* and the run's
  results must be bit-exact vs a fault-free run);
- **permanent lane death** — after ``dead_after_ops`` operations (or a
  programmatic :meth:`FaultInjector.kill`) every operation raises
  :class:`~repro.io.errors.PermanentIOError` forever: the bricked
  device.  Recovery is routing around it (tier failover), not retrying;
- **latency spikes** — a seeded fraction of operations sleep an extra
  ``latency_spike_s`` before proceeding: the slow-device mode that must
  surface as stall/telemetry, never as an error;
- **short/torn writes** — the write "succeeds" but the on-disk file is
  truncated to a prefix, so the checksum frame catches it on the next
  read (:class:`~repro.io.errors.IntegrityError`);
- **bit-rot** — the write lands fully, then one byte of the backing
  file is flipped at rest; again surfaced by the checksum frame at read
  time.

Determinism: every draw comes from one ``random.Random(seed)`` consumed
under the injector's lock in operation order.  With single-worker lanes
the op order — and hence the exact fault sequence — is reproducible;
with concurrent workers the *set* of outcomes the suite asserts
(bit-exact results, failover completion, liveness) is order-independent
by design, which is what makes the chaos suite deterministic where it
counts.

The injector deliberately sits *below* the retry layer and *below* the
checksum verification consumers (it corrupts real bytes on the real
filesystem), so the tests exercise the production detection path, not a
mock of it.
"""

from __future__ import annotations

import errno
import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.io.errors import PermanentIOError, TransientIOError

#: Operation kinds the plan can target.
FAULT_OPS = ("write", "read")


@dataclass(frozen=True)
class FaultPlan:
    """One seeded schedule of faults for a wrapped store.

    All rates are per-operation probabilities in ``[0, 1]``; a rate of 0
    disables that mode.  ``dead_after_ops=None`` disables permanent
    death; ``0`` means dead on arrival (every op fails — the from-birth
    bricked device the failover acceptance test uses).
    """

    seed: int = 0
    #: Probability a write / read raises a transient error (first
    #: ``transient_repeats`` attempts of that op, then it heals).
    transient_write_rate: float = 0.0
    transient_read_rate: float = 0.0
    transient_repeats: int = 1
    #: Probability an op sleeps ``latency_spike_s`` extra.
    latency_rate: float = 0.0
    latency_spike_s: float = 0.01
    #: Probability a completed write is truncated / bit-flipped at rest.
    torn_write_rate: float = 0.0
    bit_rot_rate: float = 0.0
    #: Op count after which the device is permanently dead (None = never).
    dead_after_ops: Optional[int] = None
    #: Hung I/O: 1-based op indices that sleep ``hang_s`` (deterministic),
    #: plus a probabilistic ``hang_rate`` drawn per op.  A hang is the
    #: wedged-``pwrite`` mode the scheduler watchdog's deadlines exist
    #: for: the op *does* eventually complete, long after any sane
    #: deadline.
    hang_ops: Optional[Tuple[int, ...]] = None
    hang_rate: float = 0.0
    hang_s: float = 0.25
    #: Brownout: after ``brownout_after_ops`` operations every op sleeps
    #: an extra ``brownout_latency_s`` — the sustained latency ramp that
    #: must trip the *slow* lane verdict (distinct from *dead*) until
    #: :meth:`FaultInjector.heal`.
    brownout_after_ops: Optional[int] = None
    brownout_latency_s: float = 0.02
    #: Cumulative write-byte budget after which writes raise ``ENOSPC``
    #: (resource exhaustion, not device death) until ``heal()``.
    enospc_after_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        for name in (
            "transient_write_rate",
            "transient_read_rate",
            "latency_rate",
            "torn_write_rate",
            "bit_rot_rate",
            "hang_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {rate}")
        if self.transient_repeats < 1:
            raise ValueError(f"transient_repeats must be >= 1: {self.transient_repeats}")
        if self.latency_spike_s < 0:
            raise ValueError(f"latency_spike_s must be >= 0: {self.latency_spike_s}")
        if self.dead_after_ops is not None and self.dead_after_ops < 0:
            raise ValueError(f"dead_after_ops must be >= 0: {self.dead_after_ops}")
        if self.hang_s < 0:
            raise ValueError(f"hang_s must be >= 0: {self.hang_s}")
        if self.hang_ops is not None and any(op < 1 for op in self.hang_ops):
            raise ValueError(f"hang_ops indices are 1-based: {self.hang_ops}")
        if self.brownout_after_ops is not None and self.brownout_after_ops < 0:
            raise ValueError(
                f"brownout_after_ops must be >= 0: {self.brownout_after_ops}"
            )
        if self.brownout_latency_s < 0:
            raise ValueError(
                f"brownout_latency_s must be >= 0: {self.brownout_latency_s}"
            )
        if self.enospc_after_bytes is not None and self.enospc_after_bytes < 0:
            raise ValueError(
                f"enospc_after_bytes must be >= 0: {self.enospc_after_bytes}"
            )

    # ------------------------------------------------------------ constructors
    @classmethod
    def transient(cls, rate: float, seed: int = 0, repeats: int = 1) -> "FaultPlan":
        """Retryable hiccups on both channels at ``rate``."""
        return cls(
            seed=seed,
            transient_write_rate=rate,
            transient_read_rate=rate,
            transient_repeats=repeats,
        )

    @classmethod
    def dead(cls, after_ops: int = 0, seed: int = 0) -> "FaultPlan":
        """Permanent device death after ``after_ops`` operations."""
        return cls(seed=seed, dead_after_ops=after_ops)

    @classmethod
    def flaky_latency(cls, rate: float, spike_s: float, seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, latency_rate=rate, latency_spike_s=spike_s)

    @classmethod
    def hung(cls, ops: Tuple[int, ...], hang_s: float, seed: int = 0) -> "FaultPlan":
        """Deterministic hung I/O on the given 1-based op indices."""
        return cls(seed=seed, hang_ops=tuple(ops), hang_s=hang_s)

    @classmethod
    def brownout(
        cls, after_ops: int, latency_s: float, seed: int = 0
    ) -> "FaultPlan":
        """Sustained latency on every op past ``after_ops``."""
        return cls(
            seed=seed, brownout_after_ops=after_ops, brownout_latency_s=latency_s
        )

    @classmethod
    def enospc(cls, after_bytes: int, seed: int = 0) -> "FaultPlan":
        """Writes fail with ``ENOSPC`` once ``after_bytes`` have landed."""
        return cls(seed=seed, enospc_after_bytes=after_bytes)


@dataclass
class FaultStats:
    """What the injector actually did (the chaos suite's assertions)."""

    ops: int = 0
    injected_transient: int = 0
    injected_latency: int = 0
    injected_torn_writes: int = 0
    injected_bit_rot: int = 0
    permanent_failures: int = 0
    injected_hangs: int = 0
    injected_brownouts: int = 0
    injected_enospc: int = 0
    #: Corruptions skipped because the backing file did not exist yet
    #: (e.g. a chunk store's open, unflushed chunk).
    skipped_corruptions: int = 0


class FaultInjector:
    """Store wrapper injecting a :class:`FaultPlan`'s failures.

    Mirrors the wrapped store's ``write``/``read`` and forwards every
    other attribute (stats, ``flush``, ``path_for``, ...) untouched, so
    it drops into any ``file_store`` slot —
    ``offloader.file_store = FaultInjector(offloader.file_store, plan)``
    — without the offloader noticing.
    """

    def __init__(self, store, plan: Optional[FaultPlan] = None) -> None:
        self._store = store
        self.plan = plan if plan is not None else FaultPlan()
        self.fault_stats = FaultStats()
        self._rng = random.Random(self.plan.seed)
        self._lock = threading.Lock()
        self._dead = False
        #: True once heal() ran: death/brownout/ENOSPC modes stop firing
        #: (the replaced-cable / freed-space / cooled-down device).
        self._healed = False
        #: Cumulative bytes accepted by write() (the ENOSPC budget's meter).
        self._bytes_written = 0
        #: Remaining forced-transient attempts per (op, tensor_id): once
        #: the RNG selects an op to fault, its first ``transient_repeats``
        #: attempts raise and the retry after that goes through.
        self._pending_transients: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------- fault core
    def kill(self) -> None:
        """Programmatic permanent death (the mid-run bricked device)."""
        with self._lock:
            self._dead = True
            self._healed = False

    def heal(self) -> None:
        """The device comes back: clears death and stops the sustained
        modes (``dead_after_ops``, brownout, ENOSPC) from firing again.

        The half of the die→heal→resurrect cycle the circuit breaker's
        canary probes exist to detect — healing the injector does *not*
        resurrect the tier by itself; the breaker has to notice.
        Probabilistic per-op faults (transients, latency, hangs) keep
        following the plan.
        """
        with self._lock:
            self._dead = False
            self._healed = True
            self._bytes_written = 0

    @property
    def dead(self) -> bool:
        with self._lock:
            return self._dead

    def _roll(self, op: str, tensor_id: str) -> float:
        """One op's bookkeeping + RNG draw; returns a sleep to perform
        (outside the lock).  Raises the injected error directly."""
        plan = self.plan
        spike = 0.0
        with self._lock:
            self.fault_stats.ops += 1
            if (
                plan.dead_after_ops is not None
                and not self._healed
                and self.fault_stats.ops > plan.dead_after_ops
            ):
                self._dead = True
            if self._dead:
                self.fault_stats.permanent_failures += 1
                raise PermanentIOError(
                    f"injected permanent device death ({op} {tensor_id!r})"
                )
            key = (op, tensor_id)
            remaining = self._pending_transients.get(key)
            if remaining is not None:
                # This call is a retry of an op the plan already faulted:
                # fault it again while forced repeats remain, then heal.
                # (Transience is a property of the *op*, so the retry
                # must not re-roll the dice — a fresh draw per attempt
                # could fault past any bounded retry budget.)
                if remaining > 0:
                    self._pending_transients[key] = remaining - 1
                    self.fault_stats.injected_transient += 1
                    raise TransientIOError(
                        f"injected transient fault ({op} {tensor_id!r}, retry will heal)"
                    )
                del self._pending_transients[key]
            else:
                rate = (
                    plan.transient_write_rate
                    if op == "write"
                    else plan.transient_read_rate
                )
                if rate > 0 and self._rng.random() < rate:
                    self._pending_transients[key] = plan.transient_repeats - 1
                    self.fault_stats.injected_transient += 1
                    raise TransientIOError(
                        f"injected transient fault ({op} {tensor_id!r}, retry will heal)"
                    )
            if plan.latency_rate > 0 and self._rng.random() < plan.latency_rate:
                self.fault_stats.injected_latency += 1
                spike = plan.latency_spike_s
            if plan.hang_s > 0 and (
                (plan.hang_ops is not None and self.fault_stats.ops in plan.hang_ops)
                or (plan.hang_rate > 0 and self._rng.random() < plan.hang_rate)
            ):
                self.fault_stats.injected_hangs += 1
                spike = max(spike, plan.hang_s)
            if (
                plan.brownout_after_ops is not None
                and not self._healed
                and self.fault_stats.ops > plan.brownout_after_ops
            ):
                self.fault_stats.injected_brownouts += 1
                spike += plan.brownout_latency_s
        return spike

    def _corrupt_at_rest(self, tensor_id: str) -> None:
        """Post-write corruption: truncate (torn write) or flip a byte
        (bit-rot) in the backing file, per the plan's rates."""
        plan = self.plan
        with self._lock:
            torn = plan.torn_write_rate > 0 and self._rng.random() < plan.torn_write_rate
            rot = (
                not torn
                and plan.bit_rot_rate > 0
                and self._rng.random() < plan.bit_rot_rate
            )
            offset_draw = self._rng.random()
        if not torn and not rot:
            return
        path = self._store.path_for(tensor_id)
        if not path.exists():
            # Open-chunk writes have no backing file yet; nothing to rot.
            with self._lock:
                self.fault_stats.skipped_corruptions += 1
            return
        raw = path.read_bytes()
        if not raw:
            with self._lock:
                self.fault_stats.skipped_corruptions += 1
            return
        if torn:
            path.write_bytes(raw[: len(raw) // 2])
            with self._lock:
                self.fault_stats.injected_torn_writes += 1
        else:
            index = int(offset_draw * len(raw)) % len(raw)
            flipped = bytes([raw[index] ^ 0xFF])
            path.write_bytes(raw[:index] + flipped + raw[index + 1 :])
            with self._lock:
                self.fault_stats.injected_bit_rot += 1

    def _charge_enospc(self, nbytes: int) -> None:
        """Meter the write-byte budget; raise ``ENOSPC`` once exhausted.

        A plain ``OSError`` with ``errno.ENOSPC`` — not a
        :class:`~repro.io.errors.PermanentIOError` — because a full
        filesystem is resource exhaustion, not device death: the
        taxonomy (:func:`~repro.io.errors.is_enospc`) routes it to
        compaction/degrade handling instead of lane-health verdicts.
        """
        plan = self.plan
        if plan.enospc_after_bytes is None:
            return
        with self._lock:
            if self._healed:
                return
            if self._bytes_written + nbytes > plan.enospc_after_bytes:
                self.fault_stats.injected_enospc += 1
                raise OSError(
                    errno.ENOSPC,
                    f"injected ENOSPC ({self._bytes_written} + {nbytes} bytes "
                    f"over the {plan.enospc_after_bytes}-byte budget)",
                )
            self._bytes_written += nbytes

    # -------------------------------------------------------------- store API
    def write(self, tensor_id: str, data):
        spike = self._roll("write", tensor_id)
        if spike > 0:
            time.sleep(spike)
        self._charge_enospc(int(getattr(data, "nbytes", len(data))))
        path = self._store.write(tensor_id, data)
        self._corrupt_at_rest(tensor_id)
        return path

    def read(self, tensor_id: str, shape, dtype):
        spike = self._roll("read", tensor_id)
        if spike > 0:
            time.sleep(spike)
        return self._store.read(tensor_id, shape, dtype)

    def __getattr__(self, name: str):
        # delete/clear/flush/path_for/stats all pass straight through.
        return getattr(self._store, name)


def inject_faults(offloader, plan: FaultPlan) -> FaultInjector:
    """Wrap ``offloader.file_store`` (in place) with a fault injector.

    Works on anything exposing a ``file_store`` — :class:`SSDOffloader`
    directly, or a :class:`~repro.core.tiered.TieredOffloader`, where it
    wraps the SSD tier (the CPU pool is host DRAM; the failure model
    targets the device path).  Returns the injector for stats/``kill``.
    """
    target = getattr(offloader, "ssd", offloader)
    store = getattr(target, "file_store", None)
    if store is None:
        raise TypeError(f"{type(offloader).__name__} exposes no file_store to wrap")
    injector = FaultInjector(store, plan)
    target.file_store = injector
    return injector
