"""Circuit breaker with half-open probing for tier resurrection.

PRs 4 and 8 gave the stack one-way failure handling: the first
``PermanentIOError`` latched ``TieredOffloader._ssd_dead`` and the SSD
tier stayed bricked for the rest of the run, even when the device was
only transiently gone (a controller reset, a loose cable, a chaos plan
that heals).  This module replaces the latch with the classic breaker
state machine:

- **CLOSED** — the tier is healthy; traffic flows.
- **OPEN** — a failure verdict tripped the breaker; all traffic routes
  around the tier.  A backoff clock starts.
- **HALF_OPEN** — the backoff elapsed; exactly one caller at a time is
  allowed to send a cheap canary probe at the device.  Probe success
  (``probe_budget`` consecutive) re-closes the breaker and the owner
  resurrects the tier; probe failure re-opens it with a doubled backoff.

The breaker itself is policy-free: it does not know what a "probe" is
or what resurrection entails.  :class:`~repro.core.tiered
.TieredOffloader` owns the canary write/read and the resurrection side
effects (placement re-enabled, overflow exited, demotions resumed);
:class:`~repro.service.service.EngineService` publishes the transition
events this class reports to its listeners.

Thread-safety: all transitions happen under one lock; listeners fire
*outside* the lock (a listener publishing to the control bus must not
deadlock against a probe running on another thread).  The clock is
injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = ["BreakerState", "BreakerStats", "CircuitBreaker"]


class BreakerState:
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class BreakerStats:
    """Cumulative transition counters (snapshot by copy)."""

    trips: int = 0
    probes_allowed: int = 0
    probe_successes: int = 0
    probe_failures: int = 0
    resurrections: int = 0


#: ``listener(name, old_state, new_state, reason)``
Listener = Callable[[str, str, str, str], None]


class CircuitBreaker:
    """CLOSED -> OPEN -> HALF_OPEN -> (CLOSED | OPEN) state machine.

    Args:
        name: identity carried into listener events (e.g. ``"ssd"`` or
            ``"ssd/tenant-a"``).
        backoff_s: seconds the breaker stays OPEN before the first probe
            is allowed; doubles after every failed probe round, capped
            at ``backoff_max_s``.
        probe_budget: consecutive probe successes required to re-close.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        name: str = "ssd",
        backoff_s: float = 0.05,
        backoff_max_s: float = 5.0,
        probe_budget: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if backoff_s <= 0:
            raise ValueError(f"backoff_s must be positive: {backoff_s}")
        if probe_budget < 1:
            raise ValueError(f"probe_budget must be >= 1: {probe_budget}")
        self.name = name
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.probe_budget = probe_budget
        self.stats = BreakerStats()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._opened_at = 0.0
        self._current_backoff_s = backoff_s
        self._probe_successes = 0
        self._probing = False
        self._listeners: List[Listener] = []

    # ----------------------------------------------------------- views
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def is_open(self) -> bool:
        """True while traffic must route around the tier (OPEN or
        probing in HALF_OPEN — only the canary goes through)."""
        with self._lock:
            return self._state != BreakerState.CLOSED

    def add_listener(self, listener: Listener) -> None:
        with self._lock:
            self._listeners.append(listener)

    # ----------------------------------------------------- transitions
    def trip(self, reason: str = "failure") -> bool:
        """Open the breaker (CLOSED/HALF_OPEN -> OPEN).

        Idempotent while already OPEN.  Returns True when this call
        performed the transition.
        """
        with self._lock:
            if self._state == BreakerState.OPEN:
                return False
            old = self._state
            self._state = BreakerState.OPEN
            self._opened_at = self._clock()
            self._probe_successes = 0
            self._probing = False
            self.stats.trips += 1
            listeners = list(self._listeners)
        self._notify(listeners, old, BreakerState.OPEN, reason)
        return True

    def allow_probe(self) -> bool:
        """Whether the caller may send one canary probe right now.

        OPEN + backoff elapsed moves the breaker to HALF_OPEN and grants
        the probe; while a probe is outstanding other callers are
        refused (single-flight), so a storm of blocked stores cannot
        hammer a struggling device with canaries.
        """
        with self._lock:
            if self._state == BreakerState.CLOSED or self._probing:
                return False
            if self._state == BreakerState.OPEN:
                if self._clock() - self._opened_at < self._current_backoff_s:
                    return False
                old = self._state
                self._state = BreakerState.HALF_OPEN
                listeners = list(self._listeners)
            else:  # already HALF_OPEN (mid probe round)
                old = None
                listeners = []
            self._probing = True
            self.stats.probes_allowed += 1
        if old is not None:
            self._notify(listeners, old, BreakerState.HALF_OPEN, "backoff elapsed")
        return True

    def record_probe_success(self) -> bool:
        """Book one canary success; re-close on the ``probe_budget``-th.

        Returns True when this success closed the breaker (the caller
        then performs resurrection side effects exactly once).
        """
        with self._lock:
            if self._state != BreakerState.HALF_OPEN:
                return False
            self._probing = False
            self._probe_successes += 1
            self.stats.probe_successes += 1
            if self._probe_successes < self.probe_budget:
                return False
            old = self._state
            self._state = BreakerState.CLOSED
            self._probe_successes = 0
            self._current_backoff_s = self.backoff_s
            self.stats.resurrections += 1
            listeners = list(self._listeners)
        self._notify(listeners, old, BreakerState.CLOSED, "probe budget met")
        return True

    def record_probe_failure(self, reason: str = "probe failed") -> None:
        """A canary failed: back to OPEN with a doubled backoff."""
        with self._lock:
            if self._state != BreakerState.HALF_OPEN:
                return
            old = self._state
            self._state = BreakerState.OPEN
            self._opened_at = self._clock()
            self._probing = False
            self._probe_successes = 0
            self.stats.probe_failures += 1
            self._current_backoff_s = min(
                self._current_backoff_s * 2.0, self.backoff_max_s
            )
            listeners = list(self._listeners)
        self._notify(listeners, old, BreakerState.OPEN, reason)

    def reset(self, reason: str = "manual reset") -> None:
        """Force-close (administrative override / test hook)."""
        with self._lock:
            if self._state == BreakerState.CLOSED:
                return
            old = self._state
            self._state = BreakerState.CLOSED
            self._probe_successes = 0
            self._probing = False
            self._current_backoff_s = self.backoff_s
            listeners = list(self._listeners)
        self._notify(listeners, old, BreakerState.CLOSED, reason)

    # -------------------------------------------------------- internal
    def _notify(
        self, listeners: List[Listener], old: str, new: str, reason: str
    ) -> None:
        for listener in listeners:
            try:
                listener(self.name, old, new, reason)
            except Exception:  # listener bugs must not poison transitions
                pass
