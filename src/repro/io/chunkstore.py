"""Chunk-coalescing tensor persistence: batched SSD I/O.

The per-tensor :class:`~repro.io.filestore.TensorFileStore` issues one
file write per activation.  At quickstart scale that is dozens of tiny
writes per step; on a real NVMe array the small-write penalty (FTL
write-amplification, per-request latency) dominates long before the
sequential bandwidth ceiling is reached.  PatrickStar-style chunk-based
memory managers solve this by packing tensors into fixed-size chunks and
moving whole chunks between tiers.

:class:`ChunkedTensorStore` applies the same idea to the SSD path:

- ``write`` appends the tensor's bytes to the current *open chunk* (an
  in-memory buffer); nothing touches the filesystem until the chunk
  reaches ``chunk_bytes``, at which point the whole chunk is flushed as
  **one** sequential file write;
- ``read`` serves tensors still in the open chunk straight from memory
  (the chunk-level analogue of data forwarding) and otherwise does one
  ranged read (seek + read) into the flushed chunk file;
- every chunk keeps a **refcount** of the live tensors inside it;
  ``delete`` decrements it, and when a chunk's refcount hits zero its
  file is unlinked — space is reclaimed at chunk granularity, like the
  paper's per-step file deletion but amortized.

The store intentionally mirrors the :class:`TensorFileStore` API
(``write`` / ``read`` / ``delete`` / ``clear`` / ``path_for`` + stats)
so :class:`~repro.core.offloader.SSDOffloader` can swap it in behind an
unchanged :class:`~repro.core.tensor_cache.TensorCache`.

**Zero-copy streaming (PR 5):** ``write`` appends the tensor's
contiguous ``memoryview`` straight into the open-chunk staging buffer
(no ``tobytes()`` temporary) with the index crc32 computed over the same
view; the flush hands the ``bytearray`` to the kernel directly instead
of materializing a ``bytes`` payload first; ranged reads ``readinto``
the destination array (one disk-to-array transfer), and open-chunk reads
copy once out of a ``memoryview`` window over the staging buffer.
``legacy_copies=True`` restores the old copy map for A/B benchmarks, and
``copy_stats`` (:class:`~repro.io.buffers.CopyCounter`) counts both
sides.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.device.ssd import RAID0Array, SSD
from repro.io.aio import count_syscalls, syscall_tape
from repro.io.buffers import CopyCounter
from repro.io.errors import IntegrityError
from repro.io.filestore import contiguous_view
from repro.io.uring import current_io_context, preadv_full, pwritev_full

#: Default chunk size: 4 MiB — large enough that a P5800X-class SSD sees
#: near-sequential bandwidth, small enough to bound the open-chunk buffer.
DEFAULT_CHUNK_BYTES = 4 * 2**20


@dataclass
class _ChunkMeta:
    """Bookkeeping for one flushed chunk file."""

    chunk_id: int
    total_bytes: int
    refcount: int
    live_bytes: int


@dataclass
class _TensorLoc:
    """Where one tensor's bytes live: (chunk, byte offset, length), plus
    the crc32 of those bytes at write time.  The checksum lives in the
    index rather than on disk so ranged reads stay exactly payload-sized
    (framing every tensor inside a chunk would shift offsets and tax the
    4-KiB-alignment story); every ``read`` verifies length and crc32
    before returning and raises :class:`IntegrityError` on mismatch."""

    chunk_id: int
    offset: int
    nbytes: int
    crc32: int = 0


class ChunkedTensorStore:
    """Packs tensors into fixed-size chunk files written in one I/O each.

    Args:
        root: directory for chunk files (created if missing).
        chunk_bytes: flush threshold for the open chunk.  A tensor larger
            than this triggers an immediate flush: the open chunk —
            including that tensor and any smaller ones buffered before
            it — is written as one oversized file in a single I/O.
        throttle_bytes_per_s: optional bandwidth cap, matching
            :class:`TensorFileStore` semantics (applied to chunk flushes
            and ranged reads).
        array: optional SSD/RAID0 wear model charged with the traffic.
        legacy_copies: restore the pre-streaming copy map (``tobytes()``
            staging, ``bytes`` flush payloads, slice+copy reads) — the
            A/B baseline for ``bench_dataplane.py``.
    """

    def __init__(
        self,
        root: Union[str, Path],
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        throttle_bytes_per_s: Optional[float] = None,
        array: Optional[Union[SSD, RAID0Array]] = None,
        legacy_copies: bool = False,
    ) -> None:
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive: {chunk_bytes}")
        if throttle_bytes_per_s is not None and throttle_bytes_per_s <= 0:
            raise ValueError(f"throttle must be positive: {throttle_bytes_per_s}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.chunk_bytes = chunk_bytes
        self.throttle_bytes_per_s = throttle_bytes_per_s
        self.array = array
        self.legacy_copies = legacy_copies
        self.copy_stats = CopyCounter()
        #: FD table of the last batched backend that drove this store
        #: (self-attached by the vectored paths); chunk reclaim
        #: invalidates its cached descriptors.
        self.fd_table = None

        self._lock = threading.Lock()
        self._open_id = 0
        self._open_buf = bytearray()
        self._open_entries: Dict[str, _TensorLoc] = {}
        self._chunks: Dict[int, _ChunkMeta] = {}
        self._index: Dict[str, _TensorLoc] = {}

        self._bytes_written = 0
        self._bytes_read = 0
        self._write_count = 0
        self._read_count = 0
        self._write_syscalls = 0
        self._read_syscalls = 0
        self._reclaimed_bytes = 0
        self._open_dead_bytes = 0

    # ------------------------------------------------------------------ stats
    @property
    def bytes_written(self) -> int:
        with self._lock:
            return self._bytes_written

    @property
    def bytes_read(self) -> int:
        with self._lock:
            return self._bytes_read

    @property
    def write_count(self) -> int:
        """Physical chunk-file writes — the number tests compare against
        the per-tensor store's one-write-per-tensor count."""
        with self._lock:
            return self._write_count

    @property
    def read_count(self) -> int:
        with self._lock:
            return self._read_count

    @property
    def write_syscalls(self) -> int:
        """Kernel round-trips spent flushing chunks."""
        with self._lock:
            return self._write_syscalls

    @property
    def read_syscalls(self) -> int:
        """Kernel round-trips spent on ranged chunk reads."""
        with self._lock:
            return self._read_syscalls

    @property
    def reclaimed_bytes(self) -> int:
        """Bytes of chunk files unlinked after their refcount hit zero."""
        with self._lock:
            return self._reclaimed_bytes

    @property
    def dead_bytes(self) -> int:
        """Bytes still occupying storage whose tensors were deleted —
        holes inside live chunk files plus holes in the open buffer.
        Chunk-granularity reclaim trades this garbage for the write
        batching; a whole chunk's worth is recovered at refcount zero."""
        with self._lock:
            flushed_holes = sum(
                meta.total_bytes - meta.live_bytes for meta in self._chunks.values()
            )
            return flushed_holes + self._open_dead_bytes

    @property
    def num_chunks(self) -> int:
        """Flushed chunks currently on disk."""
        with self._lock:
            return len(self._chunks)

    @property
    def open_chunk_bytes(self) -> int:
        with self._lock:
            return len(self._open_buf)

    def refcount(self, chunk_id: int) -> int:
        """Live-tensor refcount of a flushed chunk (0 if reclaimed)."""
        with self._lock:
            meta = self._chunks.get(chunk_id)
            return meta.refcount if meta is not None else 0

    def reset_stats(self) -> None:
        with self._lock:
            self._bytes_written = 0
            self._bytes_read = 0
            self._write_count = 0
            self._read_count = 0
            self._write_syscalls = 0
            self._read_syscalls = 0
            self._reclaimed_bytes = 0

    # ------------------------------------------------------------------- I/O
    def _chunk_path(self, chunk_id: int) -> Path:
        return self.root / f"chunk{chunk_id}.bin"

    def path_for(self, tensor_id: str) -> Path:
        """Chunk file holding (or destined to hold) ``tensor_id``."""
        with self._lock:
            loc = self._index.get(tensor_id) or self._open_entries.get(tensor_id)
            chunk_id = loc.chunk_id if loc is not None else self._open_id
        return self._chunk_path(chunk_id)

    def _throttle(self, nbytes: int, start: float) -> None:
        if self.throttle_bytes_per_s is None:
            return
        required = nbytes / self.throttle_bytes_per_s
        elapsed = time.monotonic() - start
        if elapsed < required:
            time.sleep(required - elapsed)

    def _flush_locked(self) -> None:
        """Write the open chunk as one file; caller holds the lock.

        The staging ``bytearray`` is handed to the kernel directly — the
        legacy ``bytes(buf)`` payload temporary is skipped — and then
        dropped, so the chunk-sized allocation is paid once per chunk,
        not once per flush plus once per payload copy.
        """
        if not self._open_entries:
            self._open_buf = bytearray()
            return
        chunk_id = self._open_id
        nbytes = len(self._open_buf)
        start = time.monotonic()
        ctx = current_io_context()
        if ctx is not None and not self.legacy_copies:
            # Batched backend: one pwritev over a pre-opened descriptor.
            # The chunk staging buffer is ordinary (unaligned) host
            # memory, so a direct descriptor is demoted to buffered —
            # chunk flushes are already large sequential writes and the
            # staging buffer *is* the host bounce by design.
            if self.fd_table is not ctx.fds:
                self.fd_table = ctx.fds
            path = str(self._chunk_path(chunk_id))
            tape = syscall_tape()
            with tape:
                fd, direct, cached, _ = ctx.fds.acquire_write(path)
                if direct:
                    fd = ctx.fds.acquire_read(path)
                    cached = True
                pwritev_full(fd, [self._open_buf])
                if cached:
                    os.ftruncate(fd, nbytes)
                    count_syscalls(1)
            syscalls = tape.count
            self.copy_stats.count_avoided(1)  # the bytes() payload temp
        else:
            with open(self._chunk_path(chunk_id), "wb") as f:
                if self.legacy_copies:
                    f.write(bytes(self._open_buf))
                    self.copy_stats.count_copy(nbytes)
                else:
                    f.write(self._open_buf)
                    self.copy_stats.count_avoided(1)  # the bytes() payload temp
            syscalls = 3  # open + write + close
            count_syscalls(syscalls)
        self._write_syscalls += syscalls
        self._chunks[chunk_id] = _ChunkMeta(
            chunk_id=chunk_id,
            total_bytes=nbytes,
            refcount=len(self._open_entries),
            live_bytes=sum(loc.nbytes for loc in self._open_entries.values()),
        )
        self._index.update(self._open_entries)
        self._open_entries = {}
        self._open_buf = bytearray()
        self._open_dead_bytes = 0  # holes now accounted via chunk metadata
        self._open_id += 1
        self._bytes_written += nbytes
        self._write_count += 1
        if self.array is not None:
            self.array.record_write(nbytes)
        self._throttle(nbytes, start)

    def write(self, tensor_id: str, data: np.ndarray) -> Path:
        """Append ``data`` to the open chunk; flush it when full.

        Returns the path of the chunk the tensor lands in.  The tensor's
        bytes move exactly once — from its contiguous ``memoryview``
        into the staging buffer — with the index crc32 computed over the
        same view (no ``tobytes()`` temporary).  As with
        :meth:`TensorFileStore.write`, ``data`` must not mutate during
        the call: crc and staging append are two passes over the source.
        """
        contiguous, copied = contiguous_view(data)
        nbytes = contiguous.nbytes
        if copied:
            self.copy_stats.count_copy(nbytes)
        if self.legacy_copies:
            raw = contiguous.tobytes()
            self.copy_stats.count_copy(nbytes, copies=2)  # tobytes + extend
        else:
            raw = memoryview(contiguous.reshape(-1)).cast("B")
            self.copy_stats.count_copy(nbytes)  # the one staging append
            self.copy_stats.count_avoided(1)  # the tobytes() temporary
        crc = zlib.crc32(raw)
        with self._lock:
            self._delete_locked(tensor_id)  # overwrite drops the old copy
            loc = _TensorLoc(
                chunk_id=self._open_id,
                offset=len(self._open_buf),
                nbytes=nbytes,
                crc32=crc,
            )
            self._open_buf.extend(raw)
            self._open_entries[tensor_id] = loc
            path = self._chunk_path(loc.chunk_id)
            if len(self._open_buf) >= self.chunk_bytes:
                self._flush_locked()
        return path

    def flush(self) -> None:
        """Force the partially-filled open chunk to disk (one write)."""
        with self._lock:
            self._flush_locked()

    def read(self, tensor_id: str, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Read a tensor back as a fresh array of ``shape``/``dtype``.

        Tensors still in the open chunk are served from memory without
        any file I/O — one copy out of a ``memoryview`` window over the
        staging buffer; flushed tensors cost one ranged ``readinto`` the
        destination array.  Both paths validate the index-held length
        before touching payload bytes.
        """
        start = time.monotonic()
        dtype = np.dtype(dtype)
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        with self._lock:
            open_loc = self._open_entries.get(tensor_id)
            if open_loc is not None:
                self._check_length(tensor_id, open_loc, expected)
                if self.legacy_copies:
                    raw = bytes(
                        self._open_buf[
                            open_loc.offset : open_loc.offset + open_loc.nbytes
                        ]
                    )
                    self._verify(tensor_id, open_loc, raw)
                    self.copy_stats.count_copy(open_loc.nbytes, copies=2)
                    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
                # The staging buffer mutates under this lock only; copy
                # out through a released-before-return window so the
                # bytearray is never left with a live buffer export (a
                # later extend() would raise BufferError on resize).
                with memoryview(self._open_buf) as staging:
                    window = staging[
                        open_loc.offset : open_loc.offset + open_loc.nbytes
                    ]
                    try:
                        self._verify(tensor_id, open_loc, window)
                        data = np.frombuffer(window, dtype=dtype).reshape(shape).copy()
                    finally:
                        window.release()
                self.copy_stats.count_copy(open_loc.nbytes)
                self.copy_stats.count_avoided(1)  # the bytes() slice temp
                return data
            loc = self._index.get(tensor_id)
            if loc is None:
                raise FileNotFoundError(f"no offloaded tensor {tensor_id!r} in chunk store")
            path = self._chunk_path(loc.chunk_id)
        self._check_length(tensor_id, loc, expected)
        ctx = current_io_context()
        if self.legacy_copies:
            with open(path, "rb") as f:
                f.seek(loc.offset)
                raw = f.read(loc.nbytes)
            self._verify(tensor_id, loc, raw)
            data = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
            self.copy_stats.count_copy(loc.nbytes, copies=2)
            syscalls = 4  # open + seek + read + close
            count_syscalls(syscalls)
        elif ctx is not None:
            # Batched backend: one preadv at the tensor's chunk offset,
            # straight into the destination array.
            if self.fd_table is not ctx.fds:
                self.fd_table = ctx.fds
            flat = np.empty(expected // dtype.itemsize, dtype)
            view = memoryview(flat)
            tape = syscall_tape()
            with tape:
                try:
                    fd = ctx.fds.acquire_read(str(path))
                except FileNotFoundError:
                    raise FileNotFoundError(
                        f"no offloaded tensor {tensor_id!r} in chunk store"
                    ) from None
                got = preadv_full(fd, [view], offset=loc.offset)
            syscalls = tape.count
            if got != loc.nbytes:
                raise IntegrityError(
                    f"torn write: tensor {tensor_id!r} expected {loc.nbytes} bytes "
                    f"in chunk {loc.chunk_id}, read {got}"
                )
            self._verify(tensor_id, loc, view)
            data = flat.reshape(shape)
            self.copy_stats.count_copy(loc.nbytes)
            self.copy_stats.count_avoided(1)  # the ranged-read bytes temp
        else:
            flat = np.empty(expected // dtype.itemsize, dtype)
            view = memoryview(flat)
            with open(path, "rb") as f:
                f.seek(loc.offset)
                got = f.readinto(view)
            if got != loc.nbytes:
                # readinto always fills the full-size destination view,
                # so the short-read case needs its own length check; the
                # crc (and its message) stays centralized in _verify.
                raise IntegrityError(
                    f"torn write: tensor {tensor_id!r} expected {loc.nbytes} bytes "
                    f"in chunk {loc.chunk_id}, read {got}"
                )
            self._verify(tensor_id, loc, view)
            data = flat.reshape(shape)
            self.copy_stats.count_copy(loc.nbytes)
            self.copy_stats.count_avoided(1)  # the ranged-read bytes temp
            syscalls = 4  # open + seek + readinto + close
            count_syscalls(syscalls)
        self._throttle(loc.nbytes, start)
        with self._lock:
            self._bytes_read += loc.nbytes
            self._read_count += 1
            self._read_syscalls += syscalls
        if self.array is not None:
            self.array.record_read(loc.nbytes)
        return data

    @staticmethod
    def _check_length(tensor_id: str, loc: _TensorLoc, expected: int) -> None:
        """Reject a size mismatch *before* any payload bytes move.

        The index is internally consistent here, so a mismatch is a
        deterministic caller shape/dtype bug — ``ValueError`` (fail
        fast, non-retryable), matching the legacy ``frombuffer`` /
        ``reshape`` behaviour; corruption keeps raising the retryable
        :class:`IntegrityError` from the crc/short-read checks.
        """
        if loc.nbytes != expected:
            raise ValueError(
                f"tensor {tensor_id!r} indexes {loc.nbytes} bytes "
                f"in chunk {loc.chunk_id}, caller expects {expected}"
            )

    @staticmethod
    def _verify(tensor_id: str, loc: _TensorLoc, raw) -> None:
        """Length + crc32 check of one tensor's bytes against its index
        entry; raises :class:`IntegrityError` on torn writes / bit-rot.
        ``raw`` is any C-contiguous buffer (bytes or memoryview)."""
        nbytes = raw.nbytes if isinstance(raw, memoryview) else len(raw)
        if nbytes != loc.nbytes:
            raise IntegrityError(
                f"torn write: tensor {tensor_id!r} expected {loc.nbytes} bytes "
                f"in chunk {loc.chunk_id}, read {nbytes}"
            )
        if zlib.crc32(raw) != loc.crc32:
            raise IntegrityError(
                f"checksum mismatch for tensor {tensor_id!r} in chunk "
                f"{loc.chunk_id}: bit-rot or torn write"
            )

    # --------------------------------------------------------------- reclaim
    def _delete_locked(self, tensor_id: str) -> None:
        open_loc = self._open_entries.pop(tensor_id, None)
        if open_loc is not None:
            self._open_dead_bytes += open_loc.nbytes
            if not self._open_entries:
                # Every tensor in the open chunk died before the flush:
                # drop the buffer, no write ever happens.
                self._open_buf = bytearray()
                self._open_dead_bytes = 0
            return
        loc = self._index.pop(tensor_id, None)
        if loc is None:
            return
        meta = self._chunks.get(loc.chunk_id)
        if meta is None:
            return
        meta.refcount -= 1
        meta.live_bytes -= loc.nbytes
        if meta.refcount <= 0:
            path = self._chunk_path(meta.chunk_id)
            if self.fd_table is not None:
                self.fd_table.invalidate(str(path))
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            self._reclaimed_bytes += meta.total_bytes
            del self._chunks[meta.chunk_id]

    def delete(self, tensor_id: str) -> None:
        """Drop one tensor; unlink its chunk once no live tensor remains."""
        with self._lock:
            self._delete_locked(tensor_id)

    def clear(self) -> None:
        """Remove every chunk file and reset the in-memory state."""
        with self._lock:
            self._open_buf = bytearray()
            self._open_entries = {}
            self._open_dead_bytes = 0
            self._index = {}
            chunk_ids = list(self._chunks)
            self._chunks = {}
        table = self.fd_table
        for chunk_id in chunk_ids:
            path = self._chunk_path(chunk_id)
            if table is not None:
                table.invalidate(str(path))
            try:
                path.unlink()
            except FileNotFoundError:
                pass
