"""Chunk-coalescing tensor persistence: batched SSD I/O.

The per-tensor :class:`~repro.io.filestore.TensorFileStore` issues one
file write per activation.  At quickstart scale that is dozens of tiny
writes per step; on a real NVMe array the small-write penalty (FTL
write-amplification, per-request latency) dominates long before the
sequential bandwidth ceiling is reached.  PatrickStar-style chunk-based
memory managers solve this by packing tensors into fixed-size chunks and
moving whole chunks between tiers.

:class:`ChunkedTensorStore` applies the same idea to the SSD path:

- ``write`` appends the tensor's bytes to the current *open chunk* (an
  in-memory buffer); nothing touches the filesystem until the chunk
  reaches ``chunk_bytes``, at which point the whole chunk is flushed as
  **one** sequential file write;
- ``read`` serves tensors still in the open chunk straight from memory
  (the chunk-level analogue of data forwarding) and otherwise does one
  ranged read (seek + read) into the flushed chunk file;
- every chunk keeps a **refcount** of the live tensors inside it;
  ``delete`` decrements it, and when a chunk's refcount hits zero its
  file is unlinked — space is reclaimed at chunk granularity, like the
  paper's per-step file deletion but amortized.

The store intentionally mirrors the :class:`TensorFileStore` API
(``write`` / ``read`` / ``delete`` / ``clear`` / ``path_for`` + stats)
so :class:`~repro.core.offloader.SSDOffloader` can swap it in behind an
unchanged :class:`~repro.core.tensor_cache.TensorCache`.

**Zero-copy streaming (PR 5):** ``write`` appends the tensor's
contiguous ``memoryview`` straight into the open-chunk staging buffer
(no ``tobytes()`` temporary) with the index crc32 computed over the same
view; the flush hands the ``bytearray`` to the kernel directly instead
of materializing a ``bytes`` payload first; ranged reads ``readinto``
the destination array (one disk-to-array transfer), and open-chunk reads
copy once out of a ``memoryview`` window over the staging buffer.
``legacy_copies=True`` restores the old copy map for A/B benchmarks, and
``copy_stats`` (:class:`~repro.io.buffers.CopyCounter`) counts both
sides.

**Durability + endurance (service mode):** ``durable=True`` journals
every index mutation — chunk flushes, deletes, clears, compactions —
through a crc-framed append-only manifest
(:mod:`repro.io.manifest`), and a fresh store constructed on the same
root **replays** it: every live tensor reads back bit-exact, the
``bytes_written`` / ``reclaimed_bytes`` / ``dead_bytes`` books are
restored exactly, chunk ids continue monotonically (no path reuse, so a
cached descriptor can never alias a new chunk), and a torn final
journal record — the crash signature — is skipped, not fatal.  On top
of the journal sit the week-long-run endurance features:
:meth:`compact` rewrites chunks whose dead-byte ratio crossed a
threshold (live tensors migrate to a fresh chunk, the hole-ridden file
is unlinked, every attached FD table is invalidated), and ``roots``
spreads chunk placement across several store directories by cumulative
bytes written (write-leveling).
"""

from __future__ import annotations

import os
import re
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.device.ssd import RAID0Array, SSD
from repro.io.aio import count_syscalls, syscall_tape
from repro.io.buffers import CopyCounter
from repro.io.errors import IntegrityError, is_enospc
from repro.io.filestore import contiguous_view
from repro.io.manifest import JournalWriter, read_journal
from repro.io.uring import current_io_context, preadv_full, pwritev_full

#: Default chunk size: 4 MiB — large enough that a P5800X-class SSD sees
#: near-sequential bandwidth, small enough to bound the open-chunk buffer.
DEFAULT_CHUNK_BYTES = 4 * 2**20

#: Manifest file name inside the primary root (``durable=True``).
MANIFEST_NAME = "manifest.log"

#: Default dead-byte ratio at which :meth:`ChunkedTensorStore.compact`
#: rewrites a chunk.  Half-dead is the classic LFS cleaning point:
#: rewriting earlier amplifies writes for little space, later lets
#: garbage pile up against the free-space (and SSD-endurance) budget.
DEFAULT_COMPACT_DEAD_RATIO = 0.5

_CHUNK_FILE_RE = re.compile(r"chunk(\d+)\.bin$")


@dataclass
class _ChunkMeta:
    """Bookkeeping for one flushed chunk file."""

    chunk_id: int
    total_bytes: int
    refcount: int
    live_bytes: int


@dataclass
class _TensorLoc:
    """Where one tensor's bytes live: (chunk, byte offset, length), plus
    the crc32 of those bytes at write time.  The checksum lives in the
    index rather than on disk so ranged reads stay exactly payload-sized
    (framing every tensor inside a chunk would shift offsets and tax the
    4-KiB-alignment story); every ``read`` verifies length and crc32
    before returning and raises :class:`IntegrityError` on mismatch."""

    chunk_id: int
    offset: int
    nbytes: int
    crc32: int = 0


class ChunkedTensorStore:
    """Packs tensors into fixed-size chunk files written in one I/O each.

    Args:
        root: directory for chunk files (created if missing).
        chunk_bytes: flush threshold for the open chunk.  A tensor larger
            than this triggers an immediate flush: the open chunk —
            including that tensor and any smaller ones buffered before
            it — is written as one oversized file in a single I/O.
        throttle_bytes_per_s: optional bandwidth cap, matching
            :class:`TensorFileStore` semantics (applied to chunk flushes
            and ranged reads).
        array: optional SSD/RAID0 wear model charged with the traffic.
        legacy_copies: restore the pre-streaming copy map (``tobytes()``
            staging, ``bytes`` flush payloads, slice+copy reads) — the
            A/B baseline for ``bench_dataplane.py``.
        durable: journal every index mutation to ``root/manifest.log``
            and replay an existing manifest on construction — the crash
            -recovery substrate of the service mode.  A durable store's
            :meth:`close` keeps the chunk files; only :meth:`clear`
            destroys data.
        roots: additional store directories for write-leveling; each
            flushed chunk lands in the directory with the least
            cumulative bytes written (the primary ``root`` is index 0
            and always holds the manifest).
    """

    def __init__(
        self,
        root: Union[str, Path],
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        throttle_bytes_per_s: Optional[float] = None,
        array: Optional[Union[SSD, RAID0Array]] = None,
        legacy_copies: bool = False,
        durable: bool = False,
        roots: Optional[Sequence[Union[str, Path]]] = None,
    ) -> None:
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive: {chunk_bytes}")
        if throttle_bytes_per_s is not None and throttle_bytes_per_s <= 0:
            raise ValueError(f"throttle must be positive: {throttle_bytes_per_s}")
        self.root = Path(root)
        self.roots: List[Path] = [self.root]
        for extra in roots or ():
            extra = Path(extra)
            if extra not in self.roots:
                self.roots.append(extra)
        for directory in self.roots:
            directory.mkdir(parents=True, exist_ok=True)
        self.chunk_bytes = chunk_bytes
        self.throttle_bytes_per_s = throttle_bytes_per_s
        self.array = array
        self.legacy_copies = legacy_copies
        self.durable = durable
        self.copy_stats = CopyCounter()
        #: FD table of the last batched backend that drove this store
        #: (self-attached by the vectored paths); chunk reclaim
        #: invalidates its cached descriptors.  Every table ever
        #: attached is remembered in ``_fd_tables`` so an unlink
        #: invalidates across backend swaps (service restarts), not just
        #: the most recent driver.
        self.fd_table = None
        self._fd_tables: List[object] = []
        #: Injectable per-root failure seam: ``fault_gate(root_index,
        #: nbytes)`` runs before every physical chunk write and may
        #: raise (the chaos harness injects per-root ``ENOSPC`` here).
        #: ``None`` disables it — zero cost on the production path.
        self.fault_gate = None
        #: Root indices that returned ``ENOSPC``: write-leveling skips
        #: them until compaction/clear frees space.  Guarded by _lock.
        self._full_roots: set = set()
        self._enospc_root_skips = 0
        #: Set when an ``ENOSPC`` was absorbed — the engine's GC tick
        #: consumes it to schedule an immediate compaction.
        self._compaction_hint = False

        self._lock = threading.Lock()
        self._next_chunk_id = 0
        self._open_buf = bytearray()
        self._open_entries: Dict[str, _TensorLoc] = {}
        self._chunks: Dict[int, _ChunkMeta] = {}
        self._index: Dict[str, _TensorLoc] = {}
        #: chunk_id -> index into ``roots`` (write-leveling placement).
        self._chunk_root: Dict[int, int] = {}
        #: Cumulative bytes ever written per root — the write-leveling
        #: criterion; survives replay so wear stays balanced for life.
        self._root_bytes: List[int] = [0] * len(self.roots)

        self._bytes_written = 0
        self._bytes_read = 0
        self._write_count = 0
        self._read_count = 0
        self._write_syscalls = 0
        self._read_syscalls = 0
        self._reclaimed_bytes = 0
        self._open_dead_bytes = 0
        self._gc_runs = 0
        self._gc_bytes_rewritten = 0
        self._gc_reclaimed_dead_bytes = 0
        self._closed = False
        self._manifest_records_replayed = 0
        self._replay_was_torn = False

        self._journal: Optional[JournalWriter] = None
        if durable:
            self._replay_manifest()
            self._journal = JournalWriter(self.manifest_path)
        self._open_id = self._alloc_chunk_id_locked()
        # The open chunk's write-leveling placement is decided when the
        # chunk opens (so path_for is stable), not when it flushes.
        self._chunk_root[self._open_id] = self._pick_root_locked()

    # ------------------------------------------------------------- durability
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def persistent(self) -> bool:
        """Whether this store's contents outlive the object (durable)."""
        return self.durable

    def _alloc_chunk_id_locked(self) -> int:
        chunk_id = self._next_chunk_id
        self._next_chunk_id += 1
        return chunk_id

    def _journal_append(self, record: Dict[str, object]) -> None:
        # Skipped once closed: the only post-close mutation is a cleanup
        # clear(), whose file unlinks the next replay re-derives anyway.
        if self._journal is not None and not self._journal.closed:
            self._journal.append(record)

    def _replay_manifest(self) -> None:
        """Rebuild the index, chunk metadata and books from the journal.

        Applied record by record, so the in-memory state lands exactly
        where the crashed instance's flushed state was: deletes
        decrement replayed refcounts, refcount-zero chunks are reclaimed
        (their files unlinked if the crash beat the original unlink),
        and ``clear``/``compact`` records replay their book movements.
        Orphan chunk files — written by a flush whose journal record
        never landed — are swept, so a restarted id can never read a
        ghost's bytes.  A torn final record is skipped (``
        replay_was_torn``), never fatal.
        """
        records, torn = read_journal(self.manifest_path)
        self._replay_was_torn = torn
        self._manifest_records_replayed = len(records)
        max_id = -1
        for record in records:
            op = record.get("op")
            if op == "flush" or op == "compact":
                chunk_id = int(record["chunk"])
                root = int(record.get("root", 0))
                if root >= len(self.roots):
                    root = 0  # a leveling root was dropped; fall back
                entries = record["entries"]
                total = int(record["total"])
                max_id = max(max_id, chunk_id)
                live = 0
                for tid, offset, nbytes, crc in entries:
                    self._delete_replayed(tid)  # overwrite drops the old copy
                    self._index[tid] = _TensorLoc(
                        chunk_id=chunk_id,
                        offset=int(offset),
                        nbytes=int(nbytes),
                        crc32=int(crc),
                    )
                    live += int(nbytes)
                if entries:
                    # A compact whose live set emptied writes no chunk.
                    self._chunk_root[chunk_id] = root
                    self._chunks[chunk_id] = _ChunkMeta(
                        chunk_id=chunk_id,
                        total_bytes=total,
                        refcount=len(entries),
                        live_bytes=live,
                    )
                    self._bytes_written += total if op == "flush" else live
                    self._write_count += 1
                    self._root_bytes[root] += total
                if op == "compact":
                    victim = int(record["victim"])
                    max_id = max(max_id, victim)
                    self._reclaim_replayed(victim)
                    self._gc_runs += 1
                    self._gc_bytes_rewritten += live
                    self._gc_reclaimed_dead_bytes += int(record["dead"])
            elif op == "delete":
                self._delete_replayed(str(record["tid"]))
            elif op == "clear":
                for chunk_id in list(self._chunks):
                    self._reclaim_replayed(chunk_id)
                self._index = {}
            # Unknown ops from a newer writer are skipped, not fatal.
        for chunk_id in self._chunks:
            max_id = max(max_id, chunk_id)
        self._next_chunk_id = max_id + 1
        self._sweep_orphans()

    def _delete_replayed(self, tensor_id: str) -> None:
        loc = self._index.pop(tensor_id, None)
        if loc is None:
            return
        meta = self._chunks.get(loc.chunk_id)
        if meta is None:
            return
        meta.refcount -= 1
        meta.live_bytes -= loc.nbytes
        if meta.refcount <= 0:
            self._reclaim_replayed(meta.chunk_id)

    def _reclaim_replayed(self, chunk_id: int) -> None:
        meta = self._chunks.pop(chunk_id, None)
        if meta is None:
            return
        # The crashed instance may have died between journaling the
        # delete and unlinking the file: finish the job here.
        try:
            self._chunk_path(chunk_id).unlink()
        except FileNotFoundError:
            pass
        self._reclaimed_bytes += meta.total_bytes

    def _sweep_orphans(self) -> None:
        """Unlink chunk files the manifest never acknowledged.

        A crash between a chunk-file write and its journal append leaves
        a file with no record; its id will be reissued (the allocator
        only counts journaled ids), so the stale bytes must go before a
        new chunk — or a cached descriptor — can alias them.
        """
        for directory in self.roots:
            try:
                names = os.listdir(directory)
            except FileNotFoundError:  # pragma: no cover - root vanished
                continue
            for name in names:
                match = _CHUNK_FILE_RE.fullmatch(name)
                if match is None:
                    continue
                if int(match.group(1)) not in self._chunks:
                    try:
                        (directory / name).unlink()
                    except FileNotFoundError:  # pragma: no cover - race
                        pass

    # ------------------------------------------------------------------ stats
    @property
    def bytes_written(self) -> int:
        with self._lock:
            return self._bytes_written

    @property
    def bytes_read(self) -> int:
        with self._lock:
            return self._bytes_read

    @property
    def write_count(self) -> int:
        """Physical chunk-file writes — the number tests compare against
        the per-tensor store's one-write-per-tensor count."""
        with self._lock:
            return self._write_count

    @property
    def read_count(self) -> int:
        with self._lock:
            return self._read_count

    @property
    def write_syscalls(self) -> int:
        """Kernel round-trips spent flushing chunks."""
        with self._lock:
            return self._write_syscalls

    @property
    def read_syscalls(self) -> int:
        """Kernel round-trips spent on ranged chunk reads."""
        with self._lock:
            return self._read_syscalls

    @property
    def reclaimed_bytes(self) -> int:
        """Bytes of chunk files unlinked after their refcount hit zero."""
        with self._lock:
            return self._reclaimed_bytes

    @property
    def dead_bytes(self) -> int:
        """Bytes still occupying storage whose tensors were deleted —
        holes inside live chunk files plus holes in the open buffer.
        Chunk-granularity reclaim trades this garbage for the write
        batching; a whole chunk's worth is recovered at refcount zero."""
        with self._lock:
            flushed_holes = sum(
                meta.total_bytes - meta.live_bytes for meta in self._chunks.values()
            )
            return flushed_holes + self._open_dead_bytes

    @property
    def gc_runs(self) -> int:
        """Chunks rewritten by :meth:`compact` over this store's life."""
        with self._lock:
            return self._gc_runs

    @property
    def gc_bytes_rewritten(self) -> int:
        """Live bytes :meth:`compact` migrated into fresh chunks — the
        write-amplification cost of garbage collection."""
        with self._lock:
            return self._gc_bytes_rewritten

    @property
    def gc_reclaimed_dead_bytes(self) -> int:
        """Dead (hole) bytes compaction freed, net of the rewrite."""
        with self._lock:
            return self._gc_reclaimed_dead_bytes

    @property
    def root_bytes_written(self) -> Tuple[int, ...]:
        """Cumulative bytes written per store root (write-leveling books)."""
        with self._lock:
            return tuple(self._root_bytes)

    @property
    def enospc_root_skips(self) -> int:
        """ENOSPC write failures absorbed by re-routing to another root."""
        with self._lock:
            return self._enospc_root_skips

    @property
    def full_roots(self) -> Tuple[int, ...]:
        """Root indices currently excluded from placement (device full)."""
        with self._lock:
            return tuple(sorted(self._full_roots))

    def consume_compaction_hint(self) -> bool:
        """Return (and clear) the "a root filled up, compact me" flag.

        The housekeeping loop polls this so an ENOSPC event triggers a
        GC pass promptly instead of waiting for the cadence timer.
        """
        with self._lock:
            hint = self._compaction_hint
            self._compaction_hint = False
            return hint

    @property
    def manifest_records_replayed(self) -> int:
        """Journal records applied when this instance was constructed."""
        return self._manifest_records_replayed

    @property
    def replay_was_torn(self) -> bool:
        """Whether replay hit (and skipped) a torn final journal record."""
        return self._replay_was_torn

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def num_chunks(self) -> int:
        """Flushed chunks currently on disk."""
        with self._lock:
            return len(self._chunks)

    def tensor_ids(self) -> Tuple[str, ...]:
        """Every live tensor id (flushed + open chunk) — the surface a
        restarted tiered engine rehydrates its tier map from."""
        with self._lock:
            return tuple(self._index) + tuple(self._open_entries)

    @property
    def open_chunk_bytes(self) -> int:
        with self._lock:
            return len(self._open_buf)

    def refcount(self, chunk_id: int) -> int:
        """Live-tensor refcount of a flushed chunk (0 if reclaimed)."""
        with self._lock:
            meta = self._chunks.get(chunk_id)
            return meta.refcount if meta is not None else 0

    def reset_stats(self) -> None:
        with self._lock:
            self._bytes_written = 0
            self._bytes_read = 0
            self._write_count = 0
            self._read_count = 0
            self._write_syscalls = 0
            self._read_syscalls = 0
            self._reclaimed_bytes = 0

    # ------------------------------------------------------------------- I/O
    def _chunk_path(self, chunk_id: int) -> Path:
        root = self.roots[self._chunk_root.get(chunk_id, 0)]
        return root / f"chunk{chunk_id}.bin"

    def _pick_root_locked(self) -> int:
        """Write-leveling placement: the root with the least lifetime
        bytes written takes the next chunk (ties break to the lowest
        index, keeping the single-root case byte-identical).  Roots that
        returned ``ENOSPC`` are skipped while any other root remains —
        degraded-capacity leveling — and reconsidered only when every
        root is full (the caller's write then surfaces the error)."""
        candidates = [
            i for i in range(len(self.roots)) if i not in self._full_roots
        ]
        if not candidates:
            candidates = list(range(len(self.roots)))
        return min(candidates, key=lambda i: (self._root_bytes[i], i))

    def path_for(self, tensor_id: str) -> Path:
        """Chunk file holding (or destined to hold) ``tensor_id``."""
        with self._lock:
            loc = self._index.get(tensor_id) or self._open_entries.get(tensor_id)
            chunk_id = loc.chunk_id if loc is not None else self._open_id
        return self._chunk_path(chunk_id)

    def _attach_fd_table(self, table: object) -> None:
        """Remember a batched backend's FD table for unlink invalidation."""
        if self.fd_table is not table:
            self.fd_table = table
        if table not in self._fd_tables:
            self._fd_tables.append(table)

    def _invalidate_tables(self, path: Path) -> None:
        """Drop ``path``'s cached descriptor from every attached table.

        Called on **every** chunk unlink path — refcount-zero reclaim,
        :meth:`clear`, :meth:`compact` — so an open LRU entry can never
        outlive the unlink and serve (or worse, write through to) a
        deleted file's inode.
        """
        for table in self._fd_tables:
            table.invalidate(str(path))

    def _throttle(self, nbytes: int, start: float) -> None:
        if self.throttle_bytes_per_s is None:
            return
        required = nbytes / self.throttle_bytes_per_s
        elapsed = time.monotonic() - start
        if elapsed < required:
            time.sleep(required - elapsed)

    def _flush_locked(self) -> None:
        """Write the open chunk as one file; caller holds the lock.

        The staging ``bytearray`` is handed to the kernel directly — the
        legacy ``bytes(buf)`` payload temporary is skipped — and then
        dropped, so the chunk-sized allocation is paid once per chunk,
        not once per flush plus once per payload copy.
        """
        if not self._open_entries:
            self._open_buf = bytearray()
            return
        chunk_id = self._open_id
        nbytes = len(self._open_buf)
        start = time.monotonic()
        while True:
            root_index = self._chunk_root.get(chunk_id, 0)
            try:
                syscalls = self._write_chunk_locked(chunk_id, nbytes)
                break
            except OSError as exc:
                if not is_enospc(exc):
                    raise
                # This root is full: remember it, steer write-leveling
                # to the remaining roots, and retry the same chunk on
                # the next-least-worn one.  Only when *every* root is
                # full does the error surface to the caller (who then
                # compacts / degrades to the CPU tier).
                self._full_roots.add(root_index)
                self._enospc_root_skips += 1
                self._compaction_hint = True
                if len(self._full_roots) >= len(self.roots):
                    raise
                self._chunk_root[chunk_id] = self._pick_root_locked()
        self._write_syscalls += syscalls
        self._chunks[chunk_id] = _ChunkMeta(
            chunk_id=chunk_id,
            total_bytes=nbytes,
            refcount=len(self._open_entries),
            live_bytes=sum(loc.nbytes for loc in self._open_entries.values()),
        )
        # Journal AFTER the file write: a record always names a real
        # file; a crash in between leaves an orphan the replay sweeps.
        self._journal_append(
            {
                "op": "flush",
                "chunk": chunk_id,
                "root": self._chunk_root.get(chunk_id, 0),
                "total": nbytes,
                "entries": [
                    [tid, loc.offset, loc.nbytes, loc.crc32]
                    for tid, loc in self._open_entries.items()
                ],
            }
        )
        self._index.update(self._open_entries)
        self._open_entries = {}
        self._open_buf = bytearray()
        self._open_dead_bytes = 0  # holes now accounted via chunk metadata
        self._root_bytes[self._chunk_root.get(chunk_id, 0)] += nbytes
        self._open_id = self._alloc_chunk_id_locked()
        self._chunk_root[self._open_id] = self._pick_root_locked()
        self._bytes_written += nbytes
        self._write_count += 1
        if self.array is not None:
            self.array.record_write(nbytes)
        self._throttle(nbytes, start)

    def _write_chunk_locked(self, chunk_id: int, nbytes: int) -> int:
        """One physical chunk-file write (the flush loop's retryable
        unit); returns the syscalls it cost.  The ``fault_gate`` seam
        fires first, so injected per-root failures surface exactly where
        a real full filesystem would."""
        if self.fault_gate is not None:
            self.fault_gate(self._chunk_root.get(chunk_id, 0), nbytes)
        ctx = current_io_context()
        if ctx is not None and not self.legacy_copies:
            # Batched backend: one pwritev over a pre-opened descriptor.
            # The chunk staging buffer is ordinary (unaligned) host
            # memory, so a direct descriptor is demoted to buffered —
            # chunk flushes are already large sequential writes and the
            # staging buffer *is* the host bounce by design.
            self._attach_fd_table(ctx.fds)
            path = str(self._chunk_path(chunk_id))
            tape = syscall_tape()
            with tape:
                fd, direct, cached, _ = ctx.fds.acquire_write(path)
                if direct:
                    fd = ctx.fds.acquire_read(path)
                    cached = True
                pwritev_full(fd, [self._open_buf])
                if cached:
                    os.ftruncate(fd, nbytes)
                    count_syscalls(1)
            syscalls = tape.count
            self.copy_stats.count_avoided(1)  # the bytes() payload temp
        else:
            with open(self._chunk_path(chunk_id), "wb") as f:
                if self.legacy_copies:
                    f.write(bytes(self._open_buf))
                    self.copy_stats.count_copy(nbytes)
                else:
                    f.write(self._open_buf)
                    self.copy_stats.count_avoided(1)  # the bytes() payload temp
            syscalls = 3  # open + write + close
            count_syscalls(syscalls)
        return syscalls

    def write(self, tensor_id: str, data: np.ndarray) -> Path:
        """Append ``data`` to the open chunk; flush it when full.

        Returns the path of the chunk the tensor lands in.  The tensor's
        bytes move exactly once — from its contiguous ``memoryview``
        into the staging buffer — with the index crc32 computed over the
        same view (no ``tobytes()`` temporary).  As with
        :meth:`TensorFileStore.write`, ``data`` must not mutate during
        the call: crc and staging append are two passes over the source.
        """
        contiguous, copied = contiguous_view(data)
        nbytes = contiguous.nbytes
        if copied:
            self.copy_stats.count_copy(nbytes)
        if self.legacy_copies:
            raw = contiguous.tobytes()
            self.copy_stats.count_copy(nbytes, copies=2)  # tobytes + extend
        else:
            raw = memoryview(contiguous.reshape(-1)).cast("B")
            self.copy_stats.count_copy(nbytes)  # the one staging append
            self.copy_stats.count_avoided(1)  # the tobytes() temporary
        crc = zlib.crc32(raw)
        with self._lock:
            self._delete_locked(tensor_id)  # overwrite drops the old copy
            loc = _TensorLoc(
                chunk_id=self._open_id,
                offset=len(self._open_buf),
                nbytes=nbytes,
                crc32=crc,
            )
            self._open_buf.extend(raw)
            self._open_entries[tensor_id] = loc
            if len(self._open_buf) >= self.chunk_bytes:
                self._flush_locked()
            # After the (possible) flush: an ENOSPC retry may have moved
            # the chunk to another root, so resolve the path last.
            path = self._chunk_path(loc.chunk_id)
        return path

    def flush(self) -> None:
        """Force the partially-filled open chunk to disk (one write)."""
        with self._lock:
            self._flush_locked()

    def read(self, tensor_id: str, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Read a tensor back as a fresh array of ``shape``/``dtype``.

        Tensors still in the open chunk are served from memory without
        any file I/O — one copy out of a ``memoryview`` window over the
        staging buffer; flushed tensors cost one ranged ``readinto`` the
        destination array.  Both paths validate the index-held length
        before touching payload bytes.
        """
        start = time.monotonic()
        dtype = np.dtype(dtype)
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        with self._lock:
            open_loc = self._open_entries.get(tensor_id)
            if open_loc is not None:
                self._check_length(tensor_id, open_loc, expected)
                if self.legacy_copies:
                    raw = bytes(
                        self._open_buf[
                            open_loc.offset : open_loc.offset + open_loc.nbytes
                        ]
                    )
                    self._verify(tensor_id, open_loc, raw)
                    self.copy_stats.count_copy(open_loc.nbytes, copies=2)
                    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
                # The staging buffer mutates under this lock only; copy
                # out through a released-before-return window so the
                # bytearray is never left with a live buffer export (a
                # later extend() would raise BufferError on resize).
                with memoryview(self._open_buf) as staging:
                    window = staging[
                        open_loc.offset : open_loc.offset + open_loc.nbytes
                    ]
                    try:
                        self._verify(tensor_id, open_loc, window)
                        data = np.frombuffer(window, dtype=dtype).reshape(shape).copy()
                    finally:
                        window.release()
                self.copy_stats.count_copy(open_loc.nbytes)
                self.copy_stats.count_avoided(1)  # the bytes() slice temp
                return data
            loc = self._index.get(tensor_id)
            if loc is None:
                raise FileNotFoundError(f"no offloaded tensor {tensor_id!r} in chunk store")
            path = self._chunk_path(loc.chunk_id)
        self._check_length(tensor_id, loc, expected)
        ctx = current_io_context()
        if self.legacy_copies:
            with open(path, "rb") as f:
                f.seek(loc.offset)
                raw = f.read(loc.nbytes)
            self._verify(tensor_id, loc, raw)
            data = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
            self.copy_stats.count_copy(loc.nbytes, copies=2)
            syscalls = 4  # open + seek + read + close
            count_syscalls(syscalls)
        elif ctx is not None:
            # Batched backend: one preadv at the tensor's chunk offset,
            # straight into the destination array.
            self._attach_fd_table(ctx.fds)
            flat = np.empty(expected // dtype.itemsize, dtype)
            view = memoryview(flat)
            tape = syscall_tape()
            with tape:
                try:
                    fd = ctx.fds.acquire_read(str(path))
                except FileNotFoundError:
                    raise FileNotFoundError(
                        f"no offloaded tensor {tensor_id!r} in chunk store"
                    ) from None
                got = preadv_full(fd, [view], offset=loc.offset)
            syscalls = tape.count
            if got != loc.nbytes:
                raise IntegrityError(
                    f"torn write: tensor {tensor_id!r} expected {loc.nbytes} bytes "
                    f"in chunk {loc.chunk_id}, read {got}"
                )
            self._verify(tensor_id, loc, view)
            data = flat.reshape(shape)
            self.copy_stats.count_copy(loc.nbytes)
            self.copy_stats.count_avoided(1)  # the ranged-read bytes temp
        else:
            flat = np.empty(expected // dtype.itemsize, dtype)
            view = memoryview(flat)
            with open(path, "rb") as f:
                f.seek(loc.offset)
                got = f.readinto(view)
            if got != loc.nbytes:
                # readinto always fills the full-size destination view,
                # so the short-read case needs its own length check; the
                # crc (and its message) stays centralized in _verify.
                raise IntegrityError(
                    f"torn write: tensor {tensor_id!r} expected {loc.nbytes} bytes "
                    f"in chunk {loc.chunk_id}, read {got}"
                )
            self._verify(tensor_id, loc, view)
            data = flat.reshape(shape)
            self.copy_stats.count_copy(loc.nbytes)
            self.copy_stats.count_avoided(1)  # the ranged-read bytes temp
            syscalls = 4  # open + seek + readinto + close
            count_syscalls(syscalls)
        self._throttle(loc.nbytes, start)
        with self._lock:
            self._bytes_read += loc.nbytes
            self._read_count += 1
            self._read_syscalls += syscalls
        if self.array is not None:
            self.array.record_read(loc.nbytes)
        return data

    @staticmethod
    def _check_length(tensor_id: str, loc: _TensorLoc, expected: int) -> None:
        """Reject a size mismatch *before* any payload bytes move.

        The index is internally consistent here, so a mismatch is a
        deterministic caller shape/dtype bug — ``ValueError`` (fail
        fast, non-retryable), matching the legacy ``frombuffer`` /
        ``reshape`` behaviour; corruption keeps raising the retryable
        :class:`IntegrityError` from the crc/short-read checks.
        """
        if loc.nbytes != expected:
            raise ValueError(
                f"tensor {tensor_id!r} indexes {loc.nbytes} bytes "
                f"in chunk {loc.chunk_id}, caller expects {expected}"
            )

    @staticmethod
    def _verify(tensor_id: str, loc: _TensorLoc, raw) -> None:
        """Length + crc32 check of one tensor's bytes against its index
        entry; raises :class:`IntegrityError` on torn writes / bit-rot.
        ``raw`` is any C-contiguous buffer (bytes or memoryview)."""
        nbytes = raw.nbytes if isinstance(raw, memoryview) else len(raw)
        if nbytes != loc.nbytes:
            raise IntegrityError(
                f"torn write: tensor {tensor_id!r} expected {loc.nbytes} bytes "
                f"in chunk {loc.chunk_id}, read {nbytes}"
            )
        if zlib.crc32(raw) != loc.crc32:
            raise IntegrityError(
                f"checksum mismatch for tensor {tensor_id!r} in chunk "
                f"{loc.chunk_id}: bit-rot or torn write"
            )

    # --------------------------------------------------------------- reclaim
    def _delete_locked(self, tensor_id: str) -> None:
        open_loc = self._open_entries.pop(tensor_id, None)
        if open_loc is not None:
            self._open_dead_bytes += open_loc.nbytes
            if not self._open_entries:
                # Every tensor in the open chunk died before the flush:
                # drop the buffer, no write ever happens.  (No journal
                # record either — the open chunk never hit disk.)
                self._open_buf = bytearray()
                self._open_dead_bytes = 0
            return
        loc = self._index.pop(tensor_id, None)
        if loc is None:
            return
        self._journal_append({"op": "delete", "tid": tensor_id})
        meta = self._chunks.get(loc.chunk_id)
        if meta is None:
            return
        meta.refcount -= 1
        meta.live_bytes -= loc.nbytes
        if meta.refcount <= 0:
            path = self._chunk_path(meta.chunk_id)
            self._invalidate_tables(path)
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            self._reclaimed_bytes += meta.total_bytes
            del self._chunks[meta.chunk_id]
            self._chunk_root.pop(meta.chunk_id, None)

    def delete(self, tensor_id: str) -> None:
        """Drop one tensor; unlink its chunk once no live tensor remains."""
        with self._lock:
            self._delete_locked(tensor_id)

    def compact(
        self,
        max_dead_ratio: float = DEFAULT_COMPACT_DEAD_RATIO,
        max_chunks: Optional[int] = None,
    ) -> int:
        """Rewrite chunks whose dead-byte ratio crossed ``max_dead_ratio``.

        For each victim the live tensors are read back (crc-verified —
        GC doubles as a scrub), packed into a fresh chunk written in one
        I/O on the least-worn root, the index is repointed, the old file
        is unlinked with every attached FD table invalidated, and a
        ``compact`` journal record makes the move durable.  Returns the
        dead bytes reclaimed (0 when nothing crossed the threshold).

        Runs entirely under the store lock: reads and writes briefly
        queue behind it, which is the deliberate trade — the background
        GC must never race a ranged read against its own unlink.  The
        rewrite is charged to ``bytes_written`` (and the wear model):
        that is GC write amplification, surfaced via
        :attr:`gc_bytes_rewritten` so the endurance budget sees it.
        """
        if not 0.0 < max_dead_ratio <= 1.0:
            raise ValueError(f"max_dead_ratio must be in (0, 1]: {max_dead_ratio}")
        reclaimed_dead = 0
        with self._lock:
            victims = [
                meta
                for meta in self._chunks.values()
                if meta.total_bytes > 0
                and meta.live_bytes < meta.total_bytes
                and (meta.total_bytes - meta.live_bytes) / meta.total_bytes
                >= max_dead_ratio
            ]
            victims.sort(
                key=lambda m: (m.total_bytes - m.live_bytes), reverse=True
            )
            if max_chunks is not None:
                victims = victims[:max_chunks]
            for meta in victims:
                reclaimed_dead += self._compact_one_locked(meta)
            if reclaimed_dead > 0:
                # Space was reclaimed: give previously-full roots another
                # chance.  The next ENOSPC simply re-marks them.
                self._full_roots.clear()
        return reclaimed_dead

    def _compact_one_locked(self, meta: _ChunkMeta) -> int:
        """Migrate one chunk's live tensors to a fresh chunk; unlink it."""
        old_path = self._chunk_path(meta.chunk_id)
        live = [
            (tid, loc)
            for tid, loc in self._index.items()
            if loc.chunk_id == meta.chunk_id
        ]
        live.sort(key=lambda item: item[1].offset)
        try:
            raw = old_path.read_bytes()
        except FileNotFoundError:
            raw = b""
        count_syscalls(3)  # open + read + close
        buf = bytearray()
        new_id = self._alloc_chunk_id_locked()
        moved: List[Tuple[str, _TensorLoc]] = []
        for tid, loc in live:
            window = raw[loc.offset : loc.offset + loc.nbytes]
            self._verify(tid, loc, window)  # GC doubles as a scrub
            moved.append(
                (
                    tid,
                    _TensorLoc(
                        chunk_id=new_id,
                        offset=len(buf),
                        nbytes=loc.nbytes,
                        crc32=loc.crc32,
                    ),
                )
            )
            buf.extend(window)
        nbytes = len(buf)
        root = self._pick_root_locked()
        self._chunk_root[new_id] = root
        if moved:
            new_path = self._chunk_path(new_id)
            with open(new_path, "wb") as f:
                f.write(buf)
            count_syscalls(3)  # open + write + close
            self._write_syscalls += 3
            self._chunks[new_id] = _ChunkMeta(
                chunk_id=new_id,
                total_bytes=nbytes,
                refcount=len(moved),
                live_bytes=nbytes,
            )
            self._bytes_written += nbytes
            self._write_count += 1
            self._root_bytes[root] += nbytes
            if self.array is not None:
                self.array.record_write(nbytes)
            for tid, loc in moved:
                self._index[tid] = loc
        dead = meta.total_bytes - nbytes
        self._journal_append(
            {
                "op": "compact",
                "victim": meta.chunk_id,
                "chunk": new_id,
                "root": root,
                "total": nbytes,
                "dead": dead,
                "entries": [
                    [tid, loc.offset, loc.nbytes, loc.crc32] for tid, loc in moved
                ],
            }
        )
        self._invalidate_tables(old_path)
        try:
            old_path.unlink()
        except FileNotFoundError:
            pass
        del self._chunks[meta.chunk_id]
        self._chunk_root.pop(meta.chunk_id, None)
        self._reclaimed_bytes += meta.total_bytes
        self._gc_runs += 1
        self._gc_bytes_rewritten += nbytes
        self._gc_reclaimed_dead_bytes += dead
        return dead

    def close(self) -> None:
        """Flush the open chunk and release the journal — keep the data.

        The durable counterpart of :meth:`clear`: every chunk file (and
        the manifest) stays on disk so a fresh store on the same root
        replays back to this exact state.  Idempotent; a non-durable
        store's close just flushes.
        """
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            self._closed = True
            if self._journal is not None:
                self._journal.sync()
                self._journal.close()

    def clear(self) -> None:
        """Remove every chunk file and reset the in-memory state.

        The destroyed chunks' bytes are booked as ``reclaimed_bytes``
        and the dead-byte holes they carried are zeroed — the explicit
        stats contract: after ``clear`` (and across a durable
        close/reopen) ``dead_bytes == 0`` and ``reclaimed_bytes`` equals
        every chunk byte ever unlinked, exactly.
        """
        with self._lock:
            self._open_buf = bytearray()
            self._open_entries = {}
            self._open_dead_bytes = 0
            self._index = {}
            chunk_ids = list(self._chunks)
            self._reclaimed_bytes += sum(
                meta.total_bytes for meta in self._chunks.values()
            )
            self._chunks = {}
            self._full_roots.clear()
            self._journal_append({"op": "clear"})
            paths = [self._chunk_path(chunk_id) for chunk_id in chunk_ids]
            for chunk_id in chunk_ids:
                self._chunk_root.pop(chunk_id, None)
        for path in paths:
            self._invalidate_tables(path)
            try:
                path.unlink()
            except FileNotFoundError:
                pass
