"""I/O trace recorder for the functional tensor cache.

Records store/load/forward events with wall-clock timestamps so a *real*
offloaded run can be rendered as a Fig. 2-style timeline and checked for
overlap — the functional-mode counterpart of the simulator's
:class:`~repro.sim.timeline.Timeline`.

Attach a tracer to a cache via :func:`attach_tracer`; it wraps the
offloader's ``store``/``load`` methods (they execute on the cache's
scheduler lanes, so events carry the actual concurrency) and subscribes
to the cache's :class:`~repro.io.scheduler.IOScheduler`, so the trace
also shows the scheduler *working*: ``cancel`` point-events mark stores
reclaimed before they hit the SSD, ``promote`` point-events mark
prefetch loads re-queued as blocking, and each carries the request's
priority class.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

#: Interval kinds (real I/O) and point kinds (scheduler decisions).
_INTERVAL_KINDS = ("store", "load")
_POINT_KINDS = ("cancel", "promote")


@dataclass(frozen=True)
class IOTraceEvent:
    """One completed I/O operation or scheduler decision."""

    kind: str          # "store" | "load" | "cancel" | "promote"
    tensor_id: str
    nbytes: int
    start_s: float     # relative to the tracer epoch
    end_s: float       # == start_s for point events
    priority: Optional[str] = None  # scheduler class name, when known

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class OverlapStats:
    """Summary of how I/O time relates to the traced wall-clock window."""

    window_s: float
    store_busy_s: float
    load_busy_s: float
    store_bytes: int
    load_bytes: int
    #: Scheduler decisions observed in the window.
    cancelled_stores: int = 0
    cancelled_bytes: int = 0
    promoted_loads: int = 0

    @property
    def store_bandwidth(self) -> float:
        return self.store_bytes / self.store_busy_s if self.store_busy_s else 0.0

    @property
    def load_bandwidth(self) -> float:
        return self.load_bytes / self.load_busy_s if self.load_busy_s else 0.0


class IOTracer:
    """Thread-safe collector of I/O events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = time.monotonic()
        self.events: List[IOTraceEvent] = []

    def now(self) -> float:
        return time.monotonic() - self._epoch

    def record(
        self,
        kind: str,
        tensor_id: str,
        nbytes: int,
        start_s: float,
        end_s: float,
        priority: Optional[str] = None,
    ) -> None:
        if kind not in _INTERVAL_KINDS + _POINT_KINDS:
            raise ValueError(f"unknown I/O kind: {kind}")
        with self._lock:
            self.events.append(
                IOTraceEvent(kind, tensor_id, nbytes, start_s, end_s, priority)
            )

    def mark(self, kind: str, tensor_id: str, nbytes: int, priority: Optional[str] = None) -> None:
        """Record a point event (cancellation / promotion) at ``now``."""
        t = self.now()
        self.record(kind, tensor_id, nbytes, t, t, priority)

    def reset(self) -> None:
        with self._lock:
            self.events.clear()
            self._epoch = time.monotonic()

    # ------------------------------------------------------------------ query
    def _busy_time(self, kind: str) -> float:
        """Union length of the intervals of one kind (overlaps merged)."""
        with self._lock:
            intervals = sorted(
                (e.start_s, e.end_s) for e in self.events if e.kind == kind
            )
        busy = 0.0
        cursor = float("-inf")
        for start, end in intervals:
            if start > cursor:
                busy += end - start
                cursor = end
            elif end > cursor:
                busy += end - cursor
                cursor = end
        return busy

    def stats(self, window_s: Optional[float] = None) -> OverlapStats:
        with self._lock:
            events = list(self.events)
        if window_s is None:
            window_s = max((e.end_s for e in events), default=0.0)
        return OverlapStats(
            window_s=window_s,
            store_busy_s=self._busy_time("store"),
            load_busy_s=self._busy_time("load"),
            store_bytes=sum(e.nbytes for e in events if e.kind == "store"),
            load_bytes=sum(e.nbytes for e in events if e.kind == "load"),
            cancelled_stores=sum(1 for e in events if e.kind == "cancel"),
            cancelled_bytes=sum(e.nbytes for e in events if e.kind == "cancel"),
            promoted_loads=sum(1 for e in events if e.kind == "promote"),
        )

    def render_ascii(self, width: int = 80) -> str:
        """A timeline of the traced run: store/load busy lanes, plus an
        ``sched`` lane marking cancellations (``x``) and promotions
        (``^``) when the scheduler produced any."""
        with self._lock:
            events = list(self.events)
        if not events:
            return "(no I/O events traced)"
        total = max(e.end_s for e in events) or 1e-9
        rows = []
        for kind, mark in (("store", "s"), ("load", "l")):
            row = [" "] * width
            for e in events:
                if e.kind != kind:
                    continue
                lo = min(width - 1, int(e.start_s / total * width))
                hi = min(width, max(lo + 1, int(e.end_s / total * width)))
                for i in range(lo, hi):
                    row[i] = mark
            rows.append(f"{kind:>6} |{''.join(row)}|")
        points = [e for e in events if e.kind in _POINT_KINDS]
        if points:
            row = [" "] * width
            for e in points:
                i = min(width - 1, int(e.start_s / total * width))
                row[i] = "x" if e.kind == "cancel" else "^"
            rows.append(f"{'sched':>6} |{''.join(row)}|")
        return "\n".join(rows)


def attach_tracer(cache: Any, tracer: Optional[IOTracer] = None) -> IOTracer:
    """Wrap ``cache.offloader``'s store/load with trace recording and
    subscribe to the cache's scheduler events (when it has a scheduler).

    Returns the tracer (a fresh one when not supplied).  Wrapping is
    idempotent per offloader instance.
    """
    tracer = tracer if tracer is not None else IOTracer()
    offloader = cache.offloader
    if getattr(offloader, "_ssdtrain_tracer", None) is tracer:
        return tracer

    original_store: Callable = offloader.store
    original_load: Callable = offloader.load

    def traced_store(tid, data):
        start = tracer.now()
        result = original_store(tid, data)
        tracer.record("store", str(tid), int(data.nbytes), start, tracer.now())
        return result

    def traced_load(tid, shape, dtype):
        start = tracer.now()
        data = original_load(tid, shape, dtype)
        tracer.record("load", str(tid), int(data.nbytes), start, tracer.now())
        return data

    offloader.store = traced_store
    offloader.load = traced_load
    offloader._ssdtrain_tracer = tracer

    scheduler = getattr(cache, "scheduler", None)
    if scheduler is not None:

        def on_scheduler_event(event: str, request: Any) -> None:
            if event in _POINT_KINDS:
                tracer.mark(
                    event, request.tensor_id, request.nbytes, request.priority.name
                )

        scheduler.add_listener(on_scheduler_event)
    return tracer
