"""Durable append-only journal for the chunk store's tensor→chunk index.

The :class:`~repro.io.chunkstore.ChunkedTensorStore` keeps its index —
which chunk holds which tensor at which offset, with which crc — purely
in memory.  That is fine for one training run that dies with the
process, but the long-running service mode
(:mod:`repro.service`) restarts a crashed engine *in place*: the chunk
files survive on disk, so the index must survive too, or every byte the
SSD holds becomes unreadable garbage on restart.

This module is the journal layer underneath that durability:

- :class:`JournalWriter` appends **crc-framed** records — a fixed
  12-byte header (magic, payload length, payload crc32) followed by a
  compact JSON payload — to one append-only file, flushing each record
  into the page cache so an engine crash (the supervised-restart case)
  loses nothing, and an OS crash loses at most the unsynced tail;
- :func:`read_journal` replays the file sequentially and is
  **torn-tail-tolerant**: a final record cut short by a crash — a
  partial header, a short payload, or a crc mismatch — ends the replay
  cleanly instead of raising.  Everything before the torn record is
  trusted (each frame is individually checksummed); everything at and
  after it is ignored, exactly like a write-ahead log recovery.

Record payloads are dicts; the chunk store defines the schema
(``flush`` / ``delete`` / ``clear`` / ``compact`` ops — see
docs/architecture.md §11).  The framing is schema-agnostic so other
subsystems can journal through the same code.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

#: Frame header: magic(4s) + payload length (u32 LE) + payload crc32 (u32 LE).
_HEADER = struct.Struct("<4sII")

#: Frame magic — bumped if the header layout ever changes.
JOURNAL_MAGIC = b"RMJ1"

#: Refuse absurd lengths so a corrupt header cannot trigger a huge read.
MAX_RECORD_BYTES = 64 * 2**20


def frame_record(record: Dict[str, Any]) -> bytes:
    """Serialize one record into its crc-framed on-disk form."""
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode()
    return _HEADER.pack(JOURNAL_MAGIC, len(payload), zlib.crc32(payload)) + payload


class JournalWriter:
    """Append-only writer of crc-framed records (thread-safe).

    Each :meth:`append` lands the full frame in the page cache before
    returning (``flush``) — durable against the process dying, which is
    the supervised-service crash model.  :meth:`sync` adds an
    ``fsync`` for callers that need durability against the OS dying
    (checkpoint boundaries); journaling every record through ``fsync``
    would serialize the store on device flush latency.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = open(self.path, "ab")
        self.records_appended = 0

    def append(self, record: Dict[str, Any]) -> None:
        frame = frame_record(record)
        with self._lock:
            if self._fh.closed:
                raise ValueError(f"journal {self.path} is closed")
            self._fh.write(frame)
            self._fh.flush()
            self.records_appended += 1

    def sync(self) -> None:
        """``fsync`` the journal file (durability against an OS crash)."""
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_journal(path: Union[str, Path]) -> Tuple[List[Dict[str, Any]], bool]:
    """Replay every intact record of the journal at ``path``.

    Returns ``(records, torn_tail)``.  A missing file is an empty
    journal.  The first frame that fails validation — truncated header,
    bad magic, oversized or short payload, crc mismatch — ends the
    replay and sets ``torn_tail``; a torn final record is the expected
    crash signature, never an error.  Records *behind* a bad frame are
    unreachable by design (frame lengths chain), so nothing after the
    tear is trusted.
    """
    path = Path(path)
    records: List[Dict[str, Any]] = []
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return records, False
    pos = 0
    size = len(raw)
    while pos < size:
        if pos + _HEADER.size > size:
            return records, True  # torn header
        magic, length, crc = _HEADER.unpack_from(raw, pos)
        if magic != JOURNAL_MAGIC or length > MAX_RECORD_BYTES:
            return records, True  # corrupt header
        start = pos + _HEADER.size
        end = start + length
        if end > size:
            return records, True  # torn payload
        payload = raw[start:end]
        if zlib.crc32(payload) != crc:
            return records, True  # bit-rot / torn write inside the frame
        try:
            record = json.loads(payload)
        except ValueError:
            return records, True  # crc passed but payload is not a record
        records.append(record)
        pos = end
    return records, False
