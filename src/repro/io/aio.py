"""FIFO worker pools and the IOJob state machine.

The paper's tensor cache owns two pools — "one for storing tensors and
the other for loading tensors.  Submitted jobs are executed in
first-in-first-out (FIFO) order." (Sec. III-C2.)  The cache now runs on
the priority-aware :class:`~repro.io.scheduler.IOScheduler` instead;
:class:`AsyncIOPool` remains as the paper-faithful baseline and for
standalone use.  :class:`IOJob` is the shared unit of work: observable
state (pending/running/done/failed/cancelled), a completion event, done
callbacks, and a ``cancel``/``run`` handshake that lets exactly one side
win the PENDING race.
"""

from __future__ import annotations

import enum
import queue
import threading
from typing import Any, Callable, List, Optional


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class IOJob:
    """A unit of I/O work with an observable state and completion event."""

    def __init__(self, fn: Callable[[], Any], label: str = "") -> None:
        self.fn = fn
        self.label = label
        self.state = JobState.PENDING
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.done_event = threading.Event()
        self._callbacks: List[Callable[["IOJob"], None]] = []
        self._lock = threading.Lock()

    def add_done_callback(self, cb: Callable[["IOJob"], None]) -> None:
        """Run ``cb(job)`` on completion (immediately if already done)."""
        run_now = False
        with self._lock:
            if self.done_event.is_set():
                run_now = True
            else:
                self._callbacks.append(cb)
        if run_now:
            cb(self)

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self.done_event.wait(timeout)

    def cancel(self) -> bool:
        """Cancel the job if (and only if) it has not started running.

        The PENDING -> CANCELLED and PENDING -> RUNNING transitions take
        the same lock, so exactly one of ``cancel()`` and ``run()`` wins:
        a job observed CANCELLED never touched the backing store, and a
        job that is already RUNNING (or finished) cannot be cancelled.
        Returns True when this call performed the cancellation.  Done
        callbacks fire for cancelled jobs too (with ``state`` CANCELLED).
        """
        with self._lock:
            if self.state is not JobState.PENDING:
                return False
            self.state = JobState.CANCELLED
            self.fn = None  # drop closure refs, as a completed run would
            callbacks = list(self._callbacks)
            self._callbacks.clear()
            self.done_event.set()
        for cb in callbacks:
            cb(self)
        return True

    def _finish(self, state: JobState) -> None:
        with self._lock:
            self.state = state
            callbacks = list(self._callbacks)
            self._callbacks.clear()
            self.done_event.set()
        for cb in callbacks:
            cb(self)

    def claim(self) -> bool:
        """Atomically take the PENDING -> RUNNING transition.

        Exactly one caller wins against :meth:`cancel` and against other
        claimers (a promoted request briefly has two queue entries, so
        two workers can race to execute it).  The loser must not run the
        job — nor report start/done events for it.
        """
        with self._lock:
            if self.state is not JobState.PENDING:
                return False
            self.state = JobState.RUNNING
            return True

    def execute(self) -> None:
        """Run the claimed job body; caller must have won :meth:`claim`."""
        try:
            self.result = self.fn()
        except BaseException as exc:  # surfaced via .error, re-raised on wait
            self.error = exc
            self.fn = None  # drop closure refs (e.g. the tensor being stored)
            self._finish(JobState.FAILED)
            return
        self.fn = None  # drop closure refs so GPU buffers can be reclaimed
        self._finish(JobState.DONE)

    def run(self) -> None:
        if self.claim():
            self.execute()


class AsyncIOPool:
    """A FIFO pool of worker threads.

    Args:
        num_workers: worker thread count (1 preserves strict FIFO
            completion order, matching a single SSD queue; more workers
            model deeper NVMe queues).
        name: thread-name prefix for debugging.
    """

    def __init__(self, num_workers: int = 1, name: str = "io") -> None:
        if num_workers < 1:
            raise ValueError(f"need at least one worker: {num_workers}")
        self.name = name
        self._queue: "queue.Queue[Optional[IOJob]]" = queue.Queue()
        self._shutdown = False
        self._lock = threading.Lock()
        self._pending = 0
        self._idle = threading.Event()
        self._idle.set()
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"{name}-{i}", daemon=True)
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            job.run()
            with self._lock:
                self._pending -= 1
                if self._pending == 0:
                    self._idle.set()

    def submit(self, fn: Callable[[], Any], label: str = "") -> IOJob:
        """Enqueue work; returns the job handle."""
        with self._lock:
            if self._shutdown:
                raise RuntimeError(f"pool {self.name} is shut down")
            self._pending += 1
            self._idle.clear()
        job = IOJob(fn, label=label)
        self._queue.put(job)
        return job

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job has finished."""
        return self._idle.wait(timeout)

    def shutdown(self) -> None:
        """Drain and stop the workers (idempotent)."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        self._idle.wait()
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=5)
