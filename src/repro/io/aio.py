"""FIFO worker pools and the IOJob state machine.

The paper's tensor cache owns two pools — "one for storing tensors and
the other for loading tensors.  Submitted jobs are executed in
first-in-first-out (FIFO) order." (Sec. III-C2.)  The cache now runs on
the priority-aware :class:`~repro.io.scheduler.IOScheduler` instead;
:class:`AsyncIOPool` remains as the paper-faithful baseline and for
standalone use.  :class:`IOJob` is the shared unit of work: observable
state (pending/running/done/failed/cancelled), a completion event, done
callbacks, and a ``cancel``/``run`` handshake that lets exactly one side
win the PENDING race.
"""

from __future__ import annotations

import enum
import logging
import queue
import threading
from typing import Any, Callable, List, Optional

from repro.io.errors import retry_call

logger = logging.getLogger(__name__)


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class IOJob:
    """A unit of I/O work with an observable state and completion event.

    ``max_retries``/``retry_backoff_s`` give the job a bounded
    retry-with-backoff budget: a body raising a *retryable* error
    (:func:`~repro.io.errors.is_retryable` — transient device errors,
    checksum mismatches) is re-run up to ``max_retries`` more times with
    exponential backoff before the job goes FAILED.  Non-retryable
    errors (permanent lane death, missing files) fail fast.  The default
    budget is 0 — plain jobs keep the original one-shot semantics; the
    scheduler stamps its default onto typed requests at submit time.
    """

    def __init__(
        self,
        fn: Callable[[], Any],
        label: str = "",
        max_retries: int = 0,
        retry_backoff_s: float = 0.0,
    ) -> None:
        self.fn = fn
        self.label = label
        self.state = JobState.PENDING
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        #: Re-attempts actually performed (0 = first try succeeded/failed).
        self.attempts = 0
        self.done_event = threading.Event()
        self._callbacks: List[Callable[["IOJob"], None]] = []
        self._lock = threading.Lock()

    def add_done_callback(self, cb: Callable[["IOJob"], None]) -> None:
        """Run ``cb(job)`` on completion (immediately if already done)."""
        run_now = False
        with self._lock:
            if self.done_event.is_set():
                run_now = True
            else:
                self._callbacks.append(cb)
        if run_now:
            cb(self)

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self.done_event.wait(timeout)

    def cancel(self) -> bool:
        """Cancel the job if (and only if) it has not started running.

        The PENDING -> CANCELLED and PENDING -> RUNNING transitions take
        the same lock, so exactly one of ``cancel()`` and ``run()`` wins:
        a job observed CANCELLED never touched the backing store, and a
        job that is already RUNNING (or finished) cannot be cancelled.
        Returns True when this call performed the cancellation.  Done
        callbacks fire for cancelled jobs too (with ``state`` CANCELLED).
        """
        with self._lock:
            if self.state is not JobState.PENDING:
                return False
            self.state = JobState.CANCELLED
            self.fn = None  # drop closure refs, as a completed run would
            callbacks = list(self._callbacks)
            self._callbacks.clear()
            self.done_event.set()
        self._dispatch(callbacks)
        return True

    def _dispatch(self, callbacks: List[Callable[["IOJob"], None]]) -> None:
        """Run completion callbacks, containing per-callback failures.

        One raising callback must never starve the ones behind it — the
        scheduler's pending/stats accounting rides on this list, and a
        skipped decrement turns into a drain() hang.
        """
        for cb in callbacks:
            try:
                cb(self)
            except Exception:
                logger.exception("done callback for job %s raised", self.label)

    def _finish(self, state: JobState) -> None:
        with self._lock:
            self.state = state
            callbacks = list(self._callbacks)
            self._callbacks.clear()
            self.done_event.set()
        self._dispatch(callbacks)

    def claim(self) -> bool:
        """Atomically take the PENDING -> RUNNING transition.

        Exactly one caller wins against :meth:`cancel` and against other
        claimers (a promoted request briefly has two queue entries, so
        two workers can race to execute it).  The loser must not run the
        job — nor report start/done events for it.
        """
        with self._lock:
            if self.state is not JobState.PENDING:
                return False
            self.state = JobState.RUNNING
            return True

    def _count_retry(self, exc: BaseException, attempt: int) -> None:
        self.attempts = attempt

    def execute(self) -> None:
        """Run the claimed job body; caller must have won :meth:`claim`.

        Retryable failures are re-attempted within the job's budget via
        the stack's single retry rule (:func:`~repro.io.errors.retry_call`;
        the worker holds the job for the backoff sleeps — the budget
        bounds that occupancy).  The terminal state is DONE, or FAILED
        with the last error surfaced via ``.error``.
        """
        try:
            self.result = retry_call(
                self.fn,
                max_retries=self.max_retries,
                backoff_s=self.retry_backoff_s,
                on_retry=self._count_retry,
            )
        except BaseException as exc:  # surfaced via .error for the waiter
            self.error = exc
            self.fn = None  # drop closure refs (e.g. the tensor being stored)
            self._finish(JobState.FAILED)
            return
        self.fn = None  # drop closure refs so GPU buffers can be reclaimed
        self._finish(JobState.DONE)

    def run(self) -> None:
        if self.claim():
            self.execute()


class AsyncIOPool:
    """A FIFO pool of worker threads.

    Args:
        num_workers: worker thread count (1 preserves strict FIFO
            completion order, matching a single SSD queue; more workers
            model deeper NVMe queues).
        name: thread-name prefix for debugging.
    """

    def __init__(self, num_workers: int = 1, name: str = "io") -> None:
        if num_workers < 1:
            raise ValueError(f"need at least one worker: {num_workers}")
        self.name = name
        self._queue: "queue.Queue[Optional[IOJob]]" = queue.Queue()
        self._shutdown = False
        self._lock = threading.Lock()
        self._pending = 0
        self._idle = threading.Event()
        self._idle.set()
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"{name}-{i}", daemon=True)
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            job.run()
            with self._lock:
                self._pending -= 1
                if self._pending == 0:
                    self._idle.set()

    def submit(self, fn: Callable[[], Any], label: str = "") -> IOJob:
        """Enqueue work; returns the job handle."""
        with self._lock:
            if self._shutdown:
                raise RuntimeError(f"pool {self.name} is shut down")
            self._pending += 1
            self._idle.clear()
        job = IOJob(fn, label=label)
        self._queue.put(job)
        return job

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job has finished."""
        return self._idle.wait(timeout)

    def shutdown(self) -> None:
        """Drain and stop the workers (idempotent)."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        self._idle.wait()
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=5)
