"""The IOJob state machine, the lane-backend interface, and the thread backend.

The paper's tensor cache owns two pools — "one for storing tensors and
the other for loading tensors.  Submitted jobs are executed in
first-in-first-out (FIFO) order." (Sec. III-C2.)  The cache now runs on
the priority-aware :class:`~repro.io.scheduler.IOScheduler` instead;
:class:`AsyncIOPool` remains as the paper-faithful baseline (deprecated
for direct construction).  :class:`IOJob` is the shared unit of work:
observable state (pending/running/done/failed/cancelled), a completion
event, done callbacks, and a ``cancel``/``run`` handshake that lets
exactly one side win the PENDING race.

This module also defines the pluggable **lane execution backend**
(:class:`IOBackend`): the scheduler's worker loop dequeues a batch and
hands it to the installed backend, which decides *how* the member
requests hit the kernel.  :class:`ThreadBackend` is the default and
reproduces the pre-backend worker-loop semantics operation-for-operation
(the ``io_backend="thread"`` escape hatch); the submission/completion
-queue backend lives in :mod:`repro.io.uring`.

Backend contract (docs/architecture.md §10): for every request in the
batch the backend must (1) win :meth:`IOJob.claim` before touching it —
a lost claim means a canceller or a promoted duplicate got there first
and the request must be skipped silently; (2) bracket the body with
:meth:`IOScheduler.begin_request` / :meth:`IOScheduler.finish_request`
so channel telemetry, health, retry books, lease release, and tenant
refunds all fire exactly once; (3) leave every claimed request in a
terminal state (DONE/FAILED) even when the body raises something
unexpected — ``finish_request`` enforces this.  Retries happen inside
the body via :func:`~repro.io.errors.retry_call`; the backend never
re-runs a finished request.
"""

from __future__ import annotations

import enum
import logging
import queue
import threading
import warnings
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.io.errors import retry_call
from repro.io.tenancy import tenant_scope

logger = logging.getLogger(__name__)


# --------------------------------------------------------------------------
# Syscall tape: per-thread attribution of kernel round-trips.
#
# The stores (:mod:`repro.io.filestore` / :mod:`repro.io.chunkstore`)
# call :func:`count_syscalls` next to every ``open``/``read``/``write``
# they issue; a backend wraps each request body in a
# :class:`syscall_tape` so the calls land on the per-lane books no
# matter which closure the request body routed through.  Outside an
# active tape the calls are no-ops (zero overhead on non-lane threads).
# --------------------------------------------------------------------------


class _TapeState(threading.local):
    count = 0
    depth = 0


_TAPE = _TapeState()


def count_syscalls(n: int = 1) -> None:
    """Record ``n`` kernel round-trips on the current thread's tape."""
    if _TAPE.depth:
        _TAPE.count += n


class syscall_tape:
    """Context manager measuring syscalls issued on this thread.

    Re-entrant: nested tapes each see the calls made inside their own
    scope (the inner scope's calls are part of the outer's too).
    """

    def __init__(self) -> None:
        self.count = 0
        self._start = 0

    def __enter__(self) -> "syscall_tape":
        _TAPE.depth += 1
        self._start = _TAPE.count
        return self

    def __exit__(self, *exc: object) -> bool:
        _TAPE.depth -= 1
        self.count = _TAPE.count - self._start
        if _TAPE.depth == 0:
            _TAPE.count = 0
        return False


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class IOJob:
    """A unit of I/O work with an observable state and completion event.

    ``max_retries``/``retry_backoff_s`` give the job a bounded
    retry-with-backoff budget: a body raising a *retryable* error
    (:func:`~repro.io.errors.is_retryable` — transient device errors,
    checksum mismatches) is re-run up to ``max_retries`` more times with
    exponential backoff before the job goes FAILED.  Non-retryable
    errors (permanent lane death, missing files) fail fast.  The default
    budget is 0 — plain jobs keep the original one-shot semantics; the
    scheduler stamps its default onto typed requests at submit time.
    """

    def __init__(
        self,
        fn: Callable[[], Any],
        label: str = "",
        max_retries: int = 0,
        retry_backoff_s: float = 0.0,
    ) -> None:
        self.fn = fn
        self.label = label
        self.state = JobState.PENDING
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        #: Re-attempts actually performed (0 = first try succeeded/failed).
        self.attempts = 0
        self.done_event = threading.Event()
        self._callbacks: List[Callable[["IOJob"], None]] = []
        self._lock = threading.Lock()

    def add_done_callback(self, cb: Callable[["IOJob"], None]) -> None:
        """Run ``cb(job)`` on completion (immediately if already done)."""
        run_now = False
        with self._lock:
            if self.done_event.is_set():
                run_now = True
            else:
                self._callbacks.append(cb)
        if run_now:
            cb(self)

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self.done_event.wait(timeout)

    def cancel(self) -> bool:
        """Cancel the job if (and only if) it has not started running.

        The PENDING -> CANCELLED and PENDING -> RUNNING transitions take
        the same lock, so exactly one of ``cancel()`` and ``run()`` wins:
        a job observed CANCELLED never touched the backing store, and a
        job that is already RUNNING (or finished) cannot be cancelled.
        Returns True when this call performed the cancellation.  Done
        callbacks fire for cancelled jobs too (with ``state`` CANCELLED).
        """
        with self._lock:
            if self.state is not JobState.PENDING:
                return False
            self.state = JobState.CANCELLED
            self.fn = None  # drop closure refs, as a completed run would
            callbacks = list(self._callbacks)
            self._callbacks.clear()
            self.done_event.set()
        self._dispatch(callbacks)
        return True

    def _dispatch(self, callbacks: List[Callable[["IOJob"], None]]) -> None:
        """Run completion callbacks, containing per-callback failures.

        One raising callback must never starve the ones behind it — the
        scheduler's pending/stats accounting rides on this list, and a
        skipped decrement turns into a drain() hang.
        """
        for cb in callbacks:
            try:
                cb(self)
            except Exception:
                logger.exception("done callback for job %s raised", self.label)

    def _finish(self, state: JobState) -> None:
        with self._lock:
            if self.done_event.is_set():  # already terminal; first wins
                return
            self.state = state
            callbacks = list(self._callbacks)
            self._callbacks.clear()
            self.done_event.set()
        self._dispatch(callbacks)

    def claim(self) -> bool:
        """Atomically take the PENDING -> RUNNING transition.

        Exactly one caller wins against :meth:`cancel` and against other
        claimers (a promoted request briefly has two queue entries, so
        two workers can race to execute it).  The loser must not run the
        job — nor report start/done events for it.
        """
        with self._lock:
            if self.state is not JobState.PENDING:
                return False
            self.state = JobState.RUNNING
            return True

    def _count_retry(self, exc: BaseException, attempt: int) -> None:
        self.attempts = attempt

    def run_body(self) -> Tuple[Any, Optional[BaseException]]:
        """Run the claimed body without finishing — the SQ half.

        Retryable failures are re-attempted within the job's budget via
        the stack's single retry rule (:func:`~repro.io.errors.retry_call`;
        the submitting worker holds the job for the backoff sleeps — the
        budget bounds that occupancy).  Returns ``(result, error)``; the
        job stays RUNNING until :meth:`complete` applies the outcome, so
        a completion-queue backend can reap on another thread.
        """
        try:
            result = retry_call(
                self.fn,
                max_retries=self.max_retries,
                backoff_s=self.retry_backoff_s,
                on_retry=self._count_retry,
            )
        except BaseException as exc:  # surfaced via .error for the waiter
            return None, exc
        return result, None

    def abandon(self, error: BaseException) -> bool:
        """Force a RUNNING job to FAILED without waiting for its body.

        The watchdog's half of the deadline contract: the body may be
        wedged in the kernel (a hung ``pwrite``), so nobody can make it
        return — but the waiter must still unblock and failover.  The
        job goes terminal with ``error``; when the wedged body finally
        returns, :meth:`complete` sees the terminal state and discards
        the late outcome.  ``fn`` is deliberately *not* dropped here —
        the body is still executing and owns its closure.  Returns True
        when this call performed the transition.
        """
        with self._lock:
            if self.done_event.is_set() or self.state is not JobState.RUNNING:
                return False
            self.state = JobState.FAILED
            self.error = error
            callbacks = list(self._callbacks)
            self._callbacks.clear()
            self.done_event.set()
        self._dispatch(callbacks)
        return True

    def complete(self, result: Any, error: Optional[BaseException]) -> None:
        """Apply a body outcome and finish — the CQ half.

        Idempotent once terminal: a late body outcome arriving after
        :meth:`abandon` (or after a hedge completed this job) is
        discarded — first completion wins.  The check-and-transition is
        one critical section, so an abandon can never interleave between
        the guard and the terminal write.
        """
        with self._lock:
            if self.done_event.is_set():
                self.fn = None  # the body returned; closure refs can go now
                return
            if error is not None:
                self.error = error
                self.state = JobState.FAILED
            else:
                self.result = result
                self.state = JobState.DONE
            self.fn = None  # drop closure refs so GPU buffers can be reclaimed
            callbacks = list(self._callbacks)
            self._callbacks.clear()
            self.done_event.set()
        self._dispatch(callbacks)

    def execute(self) -> None:
        """Run the claimed job body; caller must have won :meth:`claim`.

        Equivalent to ``complete(*run_body())`` — the synchronous path
        used by the thread backend and by plain pool jobs.  The terminal
        state is DONE, or FAILED with the last error via ``.error``.
        """
        result, error = self.run_body()
        self.complete(result, error)

    def run(self) -> None:
        if self.claim():
            self.execute()


# --------------------------------------------------------------------------
# Lane execution backends
# --------------------------------------------------------------------------


@dataclass
class IOLaneStats:
    """Per-lane backend telemetry (cumulative; snapshot via copies).

    ``syscalls`` counts kernel round-trips attributed to this lane's
    request bodies via the syscall tape; ``batched_requests`` counts the
    members of multi-request submissions (batches of >= 2);
    ``bounce_copies`` / ``bounce_copies_skipped`` book the GDS-sim
    routing decisions (host staging copy made vs. elided);
    ``direct_fallbacks`` counts files the filesystem refused to open
    with ``O_DIRECT``; ``reap_lag_s`` accumulates the delay between a
    request's I/O finishing and its completion being reaped (zero on the
    thread backend, where the two coincide).
    """

    syscalls: int = 0
    batches: int = 0
    batched_requests: int = 0
    reaped: int = 0
    reap_lag_s: float = 0.0
    bounce_copies: int = 0
    bounce_copies_skipped: int = 0
    direct_fallbacks: int = 0

    def merge(self, other: "IOLaneStats") -> "IOLaneStats":
        """Fold ``other`` into self (returns self for chaining)."""
        self.syscalls += other.syscalls
        self.batches += other.batches
        self.batched_requests += other.batched_requests
        self.reaped += other.reaped
        self.reap_lag_s += other.reap_lag_s
        self.bounce_copies += other.bounce_copies
        self.bounce_copies_skipped += other.bounce_copies_skipped
        self.direct_fallbacks += other.direct_fallbacks
        return self


class IOBackend:
    """How a lane batch reaches the kernel (see the module docstring).

    Subclasses implement :meth:`run_batch`.  The scheduler calls
    :meth:`bind` once at construction and :meth:`shutdown` after its
    workers have been joined (so no batch is in flight when the backend
    tears down its reaper/FD state).
    """

    name = "backend"

    def __init__(self) -> None:
        self.scheduler = None  # bound by IOScheduler.__init__
        self._stats_lock = threading.Lock()
        self._lanes: Dict[str, IOLaneStats] = {}

    def bind(self, scheduler) -> None:
        self.scheduler = scheduler

    def run_batch(self, lane: str, batch: List["IOJob"]) -> None:
        """Execute one dequeued batch for ``lane``; must not raise."""
        raise NotImplementedError

    def lane_stats(self) -> Dict[str, IOLaneStats]:
        """Non-destructive snapshot of the per-lane telemetry."""
        with self._stats_lock:
            return {lane: replace(stats) for lane, stats in self._lanes.items()}

    def _lane(self, lane: str) -> IOLaneStats:
        """The live per-lane record; caller must hold ``_stats_lock``."""
        stats = self._lanes.get(lane)
        if stats is None:
            stats = self._lanes[lane] = IOLaneStats()
        return stats

    def shutdown(self) -> None:  # pragma: no cover - default is a no-op
        pass


class ThreadBackend(IOBackend):
    """The default backend: blocking I/O on the dequeuing worker thread.

    This is the pre-backend worker loop, operation for operation — the
    ``io_backend="thread"`` A/B escape hatch.  The only additions are
    observational: the syscall tape around each body and the per-lane
    batch books, neither of which touches request semantics.
    """

    name = "thread"

    def run_batch(self, lane: str, batch: List["IOJob"]) -> None:
        sched = self.scheduler
        claimed = 0
        done_members = 0
        trailing_done_bytes = 0
        batch_syscalls = 0
        for request in batch:
            if not request.claim():
                # Lost to cancel() or a competing claim on a promoted
                # duplicate; the winner owns all bookkeeping.
                continue
            claimed += 1
            if claimed > 1:
                request.coalesced = True
            sched.begin_request(request)
            tape = syscall_tape()
            try:
                with tape, tenant_scope(request.tenant):
                    request.execute()
            except Exception:
                logger.exception(
                    "request %s raised outside the job body", request.label
                )
            finally:
                batch_syscalls += tape.count
                sched.finish_request(request)
            if request.state is JobState.DONE:
                done_members += 1
                if done_members > 1:
                    trailing_done_bytes += request.nbytes
            sched.notify_done(request)
        sched.book_coalesced(done_members, trailing_done_bytes)
        with self._stats_lock:
            stats = self._lane(lane)
            stats.syscalls += batch_syscalls
            if claimed:
                stats.batches += 1
            if claimed > 1:
                stats.batched_requests += claimed


class AsyncIOPool:
    """A FIFO pool of worker threads (deprecated for direct construction).

    The pools survive as the paper-faithful FIFO baseline, but new code
    should go through :class:`~repro.io.scheduler.IOScheduler` (with
    ``io_backend="thread"`` for the equivalent execution model) — the
    scheduler owns lanes, priorities, retries, and telemetry the pool
    never had.  Direct construction warns the same way PR 7 deprecated
    ``TensorCache.store_pool``/``load_pool``.

    Job-state handling is owned entirely by :class:`IOJob`: the pool's
    pending/idle books ride the job's done callbacks (one firing per
    terminal transition, cancellation included) instead of a duplicate
    bookkeeping path in the worker loop.

    Args:
        num_workers: worker thread count (1 preserves strict FIFO
            completion order, matching a single SSD queue; more workers
            model deeper NVMe queues).
        name: thread-name prefix for debugging.
    """

    def __init__(self, num_workers: int = 1, name: str = "io") -> None:
        if num_workers < 1:
            raise ValueError(f"need at least one worker: {num_workers}")
        warnings.warn(
            "AsyncIOPool is deprecated; submit through IOScheduler "
            "(io_backend='thread' preserves the blocking execution model)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.name = name
        self._queue: "queue.Queue[Optional[IOJob]]" = queue.Queue()
        self._shutdown = False
        self._lock = threading.Lock()
        self._pending = 0
        self._idle = threading.Event()
        self._idle.set()
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"{name}-{i}", daemon=True)
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            job.run()

    def _on_job_done(self, job: IOJob) -> None:
        # The completion callback IOJob already owns fires exactly once
        # per terminal transition (DONE/FAILED/CANCELLED), so the books
        # cannot double-count a job a canceller beat the worker to.
        with self._lock:
            self._pending -= 1
            if self._pending == 0:
                self._idle.set()

    def submit(self, fn: Callable[[], Any], label: str = "") -> IOJob:
        """Enqueue work; returns the job handle."""
        with self._lock:
            if self._shutdown:
                raise RuntimeError(f"pool {self.name} is shut down")
            self._pending += 1
            self._idle.clear()
        job = IOJob(fn, label=label)
        job.add_done_callback(self._on_job_done)
        self._queue.put(job)
        return job

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job has finished."""
        return self._idle.wait(timeout)

    def shutdown(self) -> None:
        """Drain and stop the workers (idempotent)."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        self._idle.wait()
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=5)

    close = shutdown

    def __enter__(self) -> "AsyncIOPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
