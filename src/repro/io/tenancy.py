"""Multi-tenant contexts, quotas and fair-share bookkeeping.

The paper's engine assumes one trainer owns the SSD.  The ROADMAP's
"many jobs, one engine" item needs the opposite: N concurrent jobs
sharing one :class:`~repro.io.scheduler.IOScheduler` and one tiered
store without starving each other.  This module is the identity and
policy layer for that:

- :class:`TenantContext` — one tenant's weight (fair-share ratio),
  byte quota (cumulative admission budget), bandwidth quota (token
  bucket) and admission state;
- :class:`TenantRegistry` — the thread-safe registry the scheduler
  consults on every submit: quota-aware admission (``"ok"`` /
  ``"park"`` / ``"reject"``), per-tenant counters with the same exact
  reconciliation bar as the scheduler's global books
  (``submitted == executed + failed + cancelled`` per tenant), and the
  deficit-round-robin quantum the fair queue deals in;
- :func:`current_tenant` / :func:`tenant_scope` — thread-local tenant
  propagation, so the offloader/pool/arena call surfaces stay unchanged
  (a trainer wraps its step in ``tenant_scope("job-a")`` and every
  store/load it issues is attributed automatically).  Scheduler workers
  re-enter the submitting tenant's scope around each request body, so
  attribution survives the thread hop.

Quota semantics: a **byte quota** is a cumulative admission budget —
bytes are charged when a request is admitted and refunded only when the
request is cancelled or fails (the data never landed).  An over-budget
submission is rejected (:class:`TenantQuotaError`) or parked until a
refund frees headroom, per the tenant's ``over_quota`` policy.  A
**bandwidth quota** is soft pacing: the fair queue deprioritises a
tenant whose token bucket is dry as long as other tenants have work,
but never idles the device for it (work-conserving; the bucket goes
into debt instead).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple, Union

#: The implicit tenant of every un-scoped caller.  The single-tenant
#: path — nobody ever constructs a registry or enters a scope — runs
#: entirely as this tenant and behaves exactly like the pre-tenancy
#: engine.
DEFAULT_TENANT = "default"

#: Default deficit-round-robin quantum: bytes of credit a tenant earns
#: per ring visit (scaled by its weight).
DEFAULT_DRR_QUANTUM_BYTES = 64 << 10

#: What to do with a submission that exceeds the tenant's byte quota.
OVER_QUOTA_POLICIES = ("reject", "park")

_tls = threading.local()


def current_tenant() -> str:
    """The tenant attributed to work submitted from this thread."""
    return getattr(_tls, "tenant", DEFAULT_TENANT)


@contextmanager
def tenant_scope(name: str) -> Iterator[str]:
    """Attribute all I/O submitted from this thread to ``name``.

    Scopes nest; the previous tenant is restored on exit.  The
    scheduler's worker loop uses this to re-enter the request's tenant
    around its body, so placement decisions and pool/arena accounting
    made *inside* a store/load body land on the right tenant even
    though the body runs on a worker thread.
    """
    if not name:
        raise ValueError("tenant name must be non-empty")
    previous = getattr(_tls, "tenant", None)
    _tls.tenant = name
    try:
        yield name
    finally:
        if previous is None:
            del _tls.tenant
        else:
            _tls.tenant = previous


class TenantQuotaError(RuntimeError):
    """A submission was rejected by the tenant's quota/admission state."""


@dataclass
class TenantContext:
    """One tenant's QoS contract (weight, quotas, admission state)."""

    name: str
    #: Fair-share weight: a weight-2 tenant earns twice the DRR credit
    #: per ring visit, i.e. ~2x the bandwidth under contention.
    weight: float = 1.0
    #: Cumulative byte budget (None = unlimited).  Charged on admission,
    #: refunded when a request cancels or fails.
    byte_quota: Optional[int] = None
    #: Token-bucket rate in bytes/s (None = unpaced).  Soft: shapes the
    #: fair queue's dequeue order, never idles the device.
    bandwidth_quota_bytes_per_s: Optional[float] = None
    #: ``"reject"`` (raise :class:`TenantQuotaError`) or ``"park"``
    #: (hold the request until a refund frees headroom).
    over_quota: str = "reject"
    #: Admission gate: a suspended tenant's submissions park/reject
    #: until :meth:`TenantRegistry.resume`.
    admitted: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not self.weight > 0:
            raise ValueError(f"tenant weight must be > 0: {self.weight}")
        if self.byte_quota is not None and self.byte_quota < 0:
            raise ValueError(f"byte_quota must be >= 0: {self.byte_quota}")
        if (
            self.bandwidth_quota_bytes_per_s is not None
            and not self.bandwidth_quota_bytes_per_s > 0
        ):
            raise ValueError(
                f"bandwidth_quota_bytes_per_s must be > 0: "
                f"{self.bandwidth_quota_bytes_per_s}"
            )
        if self.over_quota not in OVER_QUOTA_POLICIES:
            raise ValueError(
                f"over_quota must be one of {OVER_QUOTA_POLICIES}: {self.over_quota!r}"
            )


@dataclass
class TenantStats:
    """Per-tenant request books, same reconciliation bar as the global
    scheduler stats: once drained,
    ``submitted == executed + failed + cancelled`` and
    ``parked == unparked + parked_cancelled``.  ``submitted`` counts
    requests actually enqueued on a lane (a parked request is counted
    when it unparks; a rejected one never is)."""

    submitted: int = 0
    executed: int = 0
    failed: int = 0
    cancelled: int = 0
    submitted_bytes: int = 0
    executed_bytes: int = 0
    failed_bytes: int = 0
    cancelled_bytes: int = 0
    retries: int = 0
    rejected: int = 0
    rejected_bytes: int = 0
    parked: int = 0
    unparked: int = 0
    parked_cancelled: int = 0
    quota_charged_bytes: int = 0
    quota_refunded_bytes: int = 0

    @property
    def quota_in_use_bytes(self) -> int:
        return self.quota_charged_bytes - self.quota_refunded_bytes


class _TokenBucket:
    """Bandwidth pacing bucket; may go into debt (work-conserving)."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, now: float) -> None:
        self.rate = rate
        self.burst = rate  # one second of headroom
        self.tokens = self.burst
        self.stamp = now

    def admit(self, nbytes: int, now: float, force: bool) -> bool:
        elapsed = max(0.0, now - self.stamp)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.stamp = now
        if force or self.tokens >= nbytes:
            self.tokens -= nbytes
            return True
        return False


class TenantRegistry:
    """Thread-safe tenant registry + admission control + per-tenant books.

    Unknown tenants auto-register with default QoS (weight 1, no
    quotas) on first sight, so the registry never gates *who* may
    submit — only how much and how fast.
    """

    def __init__(
        self,
        quantum_bytes: int = DEFAULT_DRR_QUANTUM_BYTES,
        clock=time.monotonic,
    ) -> None:
        if quantum_bytes < 1:
            raise ValueError(f"quantum_bytes must be >= 1: {quantum_bytes}")
        self.quantum_bytes = quantum_bytes
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantContext] = {}
        self._stats: Dict[str, TenantStats] = {}
        self._buckets: Dict[str, _TokenBucket] = {}

    # ------------------------------------------------------------- registration
    def register(
        self, tenant: Union[str, TenantContext], **kwargs
    ) -> TenantContext:
        """Register (or replace) a tenant's QoS contract."""
        ctx = tenant if isinstance(tenant, TenantContext) else TenantContext(tenant, **kwargs)
        with self._lock:
            self._tenants[ctx.name] = ctx
            self._stats.setdefault(ctx.name, TenantStats())
            if ctx.bandwidth_quota_bytes_per_s is not None:
                self._buckets[ctx.name] = _TokenBucket(
                    ctx.bandwidth_quota_bytes_per_s, self._clock()
                )
            else:
                self._buckets.pop(ctx.name, None)
        return ctx

    def _ensure_locked(self, name: str) -> TenantContext:
        ctx = self._tenants.get(name)
        if ctx is None:
            ctx = self._tenants[name] = TenantContext(name)
        if name not in self._stats:
            self._stats[name] = TenantStats()
        return ctx

    def get(self, name: str) -> TenantContext:
        with self._lock:
            return self._ensure_locked(name)

    def tenants(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._tenants)

    def weight(self, name: str) -> float:
        with self._lock:
            ctx = self._tenants.get(name)
            return ctx.weight if ctx is not None else 1.0

    # ---------------------------------------------------------------- admission
    def admit(self, name: str, nbytes: int) -> str:
        """Admission verdict for one submission: ``"ok"`` (charged and
        counted as submitted), ``"park"`` or ``"reject"``."""
        with self._lock:
            ctx = self._ensure_locked(name)
            stats = self._stats[name]
            over = (
                not ctx.admitted
                or (
                    ctx.byte_quota is not None
                    and stats.quota_in_use_bytes + nbytes > ctx.byte_quota
                )
            )
            if not over:
                if ctx.byte_quota is not None:
                    stats.quota_charged_bytes += nbytes
                stats.submitted += 1
                stats.submitted_bytes += nbytes
                return "ok"
            if ctx.over_quota == "park":
                stats.parked += 1
                return "park"
            stats.rejected += 1
            stats.rejected_bytes += nbytes
            return "reject"

    def try_charge(self, name: str, nbytes: int) -> bool:
        """Re-admission attempt for a parked request (no verdict
        counters; books it as submitted + unparked on success)."""
        with self._lock:
            ctx = self._ensure_locked(name)
            stats = self._stats[name]
            if not ctx.admitted:
                return False
            if ctx.byte_quota is not None:
                if stats.quota_in_use_bytes + nbytes > ctx.byte_quota:
                    return False
                stats.quota_charged_bytes += nbytes
            stats.submitted += 1
            stats.submitted_bytes += nbytes
            stats.unparked += 1
            return True

    def rollback_submitted(self, name: str, nbytes: int) -> None:
        """Undo one admitted-but-never-enqueued submission (the
        scheduler refused it at the lane, e.g. shutdown raced)."""
        with self._lock:
            ctx = self._ensure_locked(name)
            stats = self._stats[name]
            stats.submitted -= 1
            stats.submitted_bytes -= nbytes
            if ctx.byte_quota is not None:
                stats.quota_refunded_bytes += nbytes

    def refund(self, name: str, nbytes: int) -> None:
        """Return quota headroom for a request that never landed its
        bytes (cancelled or failed)."""
        with self._lock:
            ctx = self._ensure_locked(name)
            if ctx.byte_quota is not None:
                self._stats[name].quota_refunded_bytes += nbytes

    def bw_admit(self, name: str, nbytes: int, force: bool = False) -> bool:
        """Token-bucket verdict (always True for unpaced tenants).
        ``force`` serves anyway and lets the bucket go into debt — the
        fair queue uses it to stay work-conserving."""
        with self._lock:
            bucket = self._buckets.get(name)
            if bucket is None:
                return True
            return bucket.admit(nbytes, self._clock(), force)

    def suspend(self, name: str) -> None:
        with self._lock:
            self._ensure_locked(name).admitted = False

    def resume(self, name: str) -> None:
        with self._lock:
            self._ensure_locked(name).admitted = True

    # -------------------------------------------------------------------- books
    def note_finished(self, name: str, outcome: str, nbytes: int, retries: int = 0) -> None:
        """Book one terminal request (outcome: executed/failed/cancelled)."""
        with self._lock:
            stats = self._stats.get(name)
            if stats is None:
                stats = self._stats[name] = TenantStats()
            stats.retries += retries
            if outcome == "executed":
                stats.executed += 1
                stats.executed_bytes += nbytes
            elif outcome == "failed":
                stats.failed += 1
                stats.failed_bytes += nbytes
            elif outcome == "cancelled":
                stats.cancelled += 1
                stats.cancelled_bytes += nbytes
            else:
                raise ValueError(f"unknown outcome {outcome!r}")

    def note_parked_cancelled(self, name: str) -> None:
        with self._lock:
            stats = self._stats.get(name)
            if stats is None:
                stats = self._stats[name] = TenantStats()
            stats.parked_cancelled += 1

    def stats_of(self, name: str) -> TenantStats:
        with self._lock:
            stats = self._stats.get(name, TenantStats())
            return TenantStats(**vars(stats))

    def stats_snapshot(self) -> Dict[str, TenantStats]:
        with self._lock:
            return {name: TenantStats(**vars(s)) for name, s in self._stats.items()}


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index over per-tenant allocations: 1.0 is perfect
    fairness, 1/n is one tenant taking everything."""
    vals = [max(0.0, float(v)) for v in values]
    if not vals:
        return 1.0
    square_of_sum = sum(vals) ** 2
    sum_of_squares = sum(v * v for v in vals)
    if sum_of_squares <= 0.0:
        return 1.0
    return square_of_sum / (len(vals) * sum_of_squares)
