"""Typed I/O failure taxonomy and the retry classification rule.

The offload pipeline originally assumed the storage backends never fail.
A production path cannot: NVMe devices throw transient ``EIO``\\ s under
thermal pressure, a RAID member can brick mid-run, and DRAM-less drives
silently corrupt bits at rest.  Every recovery decision in the stack —
the scheduler's bounded retry (:class:`~repro.io.aio.IOJob`), the tiered
offloader's CPU failover (:meth:`~repro.core.tiered.TieredOffloader`),
the cache's keep-resident fallback — keys off this module's taxonomy:

- :class:`TransientIOError` — a hiccup; retrying the same operation is
  expected to succeed (injected by the chaos harness, raised by real
  backends for timeouts/``EIO``-class errors);
- :class:`PermanentIOError` — the device or lane is gone; retrying is
  pointless, recovery means routing *around* it (tier failover);
- :class:`IntegrityError` — the bytes came back, but the checksum frame
  does not match.  Retryable: a transient bus/DMA flip heals on re-read,
  while genuine at-rest bit-rot exhausts the budget and surfaces.

:func:`is_retryable` is the single classification point; generic
``OSError``\\ s from a real filesystem default to retryable (the
conservative choice for device-level errno soup) except the
structural ones where a retry provably cannot help
(:class:`FileNotFoundError`, :class:`PermissionError`,
:class:`IsADirectoryError`, :class:`NotADirectoryError`).
"""

from __future__ import annotations

import errno
import time
from typing import Callable, Optional, TypeVar

T = TypeVar("T")

#: Default bounded-retry budget for one I/O request (attempts beyond the
#: first), and the base of its exponential backoff.  Deliberately small:
#: a retry holds a lane worker, so the budget bounds worst-case lane
#: occupancy to ``sum(backoff * 2**i) + (budget + 1) * op_time``.
DEFAULT_MAX_RETRIES = 2
DEFAULT_RETRY_BACKOFF_S = 0.002


class TransientIOError(OSError):
    """A retryable device hiccup (timeout, spurious EIO, bus reset)."""


class PermanentIOError(OSError):
    """The device/lane is dead; retries cannot help, failover can."""


class IntegrityError(OSError):
    """Checksum-frame mismatch on load: torn write, bit-rot, or a
    transient read-path flip.  Retryable once — persistent corruption
    exhausts the budget and surfaces to the waiter."""


class DeadlineExceededError(OSError):
    """The request sat past its per-class deadline and was abandoned by
    the scheduler watchdog.  Not retryable — the original body may still
    be wedged in the kernel, and re-running it would double-occupy the
    lane; recovery is failover (and, for blocking loads, a hedge).  It
    *is* a device verdict: a lane that keeps eating deadlines is as dead
    to the placement policy as one that returns ``EIO``."""


#: OSError subclasses where the failure is structural, not device noise:
#: retrying the identical call cannot change the outcome.
_NON_RETRYABLE_OSERRORS = (
    FileNotFoundError,
    PermissionError,
    IsADirectoryError,
    NotADirectoryError,
)


def is_enospc(exc: Optional[BaseException]) -> bool:
    """Whether the failure is the filesystem running out of space.

    ENOSPC gets its own lane through the taxonomy: it is not retryable
    (the bytes will not appear on their own), but it is *not* a device
    verdict either — a full root says nothing about the drive's health,
    and the right response is write-leveling around the root plus
    compaction, not lane death.
    """
    return isinstance(exc, OSError) and exc.errno == errno.ENOSPC


def is_retryable(exc: BaseException) -> bool:
    """Whether one more attempt at the same operation can plausibly help."""
    if isinstance(exc, (PermanentIOError, DeadlineExceededError)):
        return False
    if isinstance(exc, (TransientIOError, IntegrityError, TimeoutError)):
        return True
    if isinstance(exc, _NON_RETRYABLE_OSERRORS) or is_enospc(exc):
        return False
    return isinstance(exc, OSError)


def is_device_error(exc: Optional[BaseException]) -> bool:
    """Whether the failure says something about the *device* (and should
    feed lane health) rather than about the caller.

    Structural OSErrors (missing file, permissions) and non-OS
    exceptions (a MemoryError from a full pool, a plain bug) are caller
    problems: three of them in a row must not declare a healthy lane
    dead and trigger failover.
    """
    if not isinstance(exc, OSError):
        return False
    if is_enospc(exc):
        # Resource exhaustion, not device death: handled by the store's
        # write-leveling/compaction path, must not brick lane health.
        return False
    return not isinstance(exc, _NON_RETRYABLE_OSERRORS)


def retry_call(
    fn: Callable[[], T],
    max_retries: int = DEFAULT_MAX_RETRIES,
    backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    on_retry: Optional[Callable[[BaseException, int], None]] = None,
) -> T:
    """Run ``fn`` with the stack's bounded retry-with-backoff rule.

    Retries only :func:`is_retryable` failures, sleeping
    ``backoff_s * 2**attempt`` between attempts.  ``on_retry(exc, n)``
    fires before each re-attempt (telemetry hook).  Used by callers that
    need retry semantics *outside* an :class:`~repro.io.aio.IOJob` —
    e.g. the tiered offloader's demotion writer, whose job body is
    stateful and therefore opts out of job-level re-execution.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except BaseException as exc:
            if attempt >= max_retries or not is_retryable(exc):
                raise
            if on_retry is not None:
                on_retry(exc, attempt + 1)
            if backoff_s > 0:
                time.sleep(backoff_s * (2**attempt))
            attempt += 1
