"""Batched submission/completion-queue I/O backend (io_uring-style).

ROADMAP item 3: the thread-per-request blocking model in
:class:`~repro.io.aio.ThreadBackend` pays one ``open``/``write``/
``close`` round-trip set per tensor.  Real deployments batch: io_uring
submits many requests per kernel transition over pre-opened
("registered") file descriptors, and a completion queue is reaped
independently of submission.  This module reproduces that *shape* with
portable pure-Python syscalls:

- :class:`FDTable` — pre-opened descriptors keyed by path (io_uring's
  fixed-file table), LRU-bounded, with an optional ``O_DIRECT`` mode
  and a per-file fallback when the filesystem refuses it;
- :class:`UringBackend` — the lane worker is the *submission* side: it
  claims the dequeued batch (the scheduler's coalescing machinery
  already groups compatible requests), runs each body as one vectored
  submission (``os.pwritev``/``os.preadv`` through the stores' vectored
  entry points), and pushes completion-queue entries; a dedicated
  **reaper** thread applies outcomes — terminal job states, done
  callbacks, lease release, health/tenant books — and stamps the
  reap lag the adaptive controller folds into its latency estimate;
- :class:`GDSSimBackend` — the simulated GPUDirect-Storage lane:
  stores whose source array belongs to a :class:`~repro.io.gds
  .GDSRegistry`-registered storage go straight to the SSD store with
  zero host copies booked; unregistered ones are staged through an
  explicit host bounce buffer (an arena lease + one copy), like real
  GDS falling back for unregistered allocations.

The backend never changes *what* is read or written — the stores'
vectored entry points produce bit-identical files and validate the same
checksum frame — only how many kernel round-trips carry it.  The
:class:`IOContext` installed around each request body is how the stores
know a batched backend is driving them: no context means the classic
buffered path (plain ``io_backend="thread"`` stays byte-identical).
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from typing import Deque, Iterator, List, Optional, Sequence, Tuple

from repro.io.aio import IOBackend, IOJob, JobState, count_syscalls, syscall_tape
from repro.io.buffers import BufferArena
from repro.io.gds import GDSRegistry
from repro.io.tenancy import tenant_scope

logger = logging.getLogger(__name__)

__all__ = [
    "FDTable",
    "GDSSimBackend",
    "IOContext",
    "UringBackend",
    "current_io_context",
    "io_context",
    "preadv_full",
    "pwritev_full",
]


# --------------------------------------------------------------------------
# Vectored-syscall helpers
# --------------------------------------------------------------------------


def _flat_views(buffers: Sequence) -> List[memoryview]:
    """Byte-granular views over ``buffers`` (kept writable for reads)."""
    views = []
    for buf in buffers:
        view = buf if isinstance(buf, memoryview) else memoryview(buf)
        if view.ndim != 1 or view.format != "B":
            view = view.cast("B")
        views.append(view)
    return views


def _advance(views: List[memoryview], moved: int) -> None:
    """Drop/trim the leading ``moved`` bytes from the iovec list."""
    while views and moved >= views[0].nbytes:
        moved -= views[0].nbytes
        views.pop(0)
    if views and moved:
        views[0] = views[0][moved:]


def pwritev_full(fd: int, buffers: Sequence, offset: int = 0) -> int:
    """Write every byte of ``buffers`` at ``offset`` via ``os.pwritev``.

    One syscall in the common case; short writes resume from where the
    kernel stopped.  Returns the total bytes written.
    """
    views = _flat_views(buffers)
    total = 0
    while views:
        written = os.pwritev(fd, views, offset)
        count_syscalls(1)
        if written <= 0:
            raise OSError(f"pwritev made no progress at offset {offset}")
        total += written
        offset += written
        _advance(views, written)
    return total


def preadv_full(fd: int, buffers: Sequence, offset: int = 0) -> int:
    """Fill ``buffers`` from ``offset`` via ``os.preadv``; stops at EOF.

    Returns the total bytes read (callers use the shortfall — or the
    overshoot into a probe buffer — to detect torn/oversized files
    without a separate ``fstat``).
    """
    views = _flat_views(buffers)
    total = 0
    while views:
        got = os.preadv(fd, views, offset)
        count_syscalls(1)
        if got == 0:  # EOF
            break
        total += got
        offset += got
        _advance(views, got)
    return total


# --------------------------------------------------------------------------
# FD table
# --------------------------------------------------------------------------


class _FDEntry:
    __slots__ = ("fd", "direct")

    def __init__(self, fd: int, direct: bool) -> None:
        self.fd = fd
        self.direct = direct


class FDTable:
    """Pre-opened file descriptors keyed by path (the fixed-file table).

    A write acquires (and caches) a descriptor so the follow-up read
    skips the ``open``/``close`` pair entirely; the LRU bound
    (``max_open``) keeps the table inside the process's fd budget —
    an evicted path simply reopens on next touch.

    ``direct=True`` opens *write* descriptors with ``O_DIRECT`` where
    the platform and filesystem allow, counting a ``direct_fallback``
    per refused file.  Read acquisitions always demote to a buffered
    descriptor: ``O_DIRECT`` reads would demand alignment from the
    caller-owned destination arrays, which the load path cannot
    guarantee (documented in docs/architecture.md §10).
    """

    def __init__(self, max_open: int = 128, direct: bool = False) -> None:
        if max_open < 1:
            raise ValueError(f"max_open must be >= 1: {max_open}")
        self.direct = direct and hasattr(os, "O_DIRECT")
        self.max_open = max_open
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _FDEntry]" = OrderedDict()
        self.opens = 0
        self.closes = 0
        self.direct_fallbacks = 0

    # ------------------------------------------------------------- internals
    def _open(self, path: str, flags: int) -> int:
        fd = os.open(path, flags, 0o644)
        count_syscalls(1)
        self.opens += 1
        return fd

    def _close(self, entry: _FDEntry) -> None:
        try:
            os.close(entry.fd)
        except OSError:  # pragma: no cover - close failures are benign
            pass
        count_syscalls(1)
        self.closes += 1

    def _evict_locked(self) -> None:
        while len(self._entries) > self.max_open:
            _, entry = self._entries.popitem(last=False)
            self._close(entry)

    # ------------------------------------------------------------- acquire
    def acquire_write(self, path: str) -> Tuple[int, bool, bool, bool]:
        """Descriptor for writing ``path``.

        Returns ``(fd, direct, cached, fell_back)``: ``direct`` is
        whether the descriptor carries ``O_DIRECT``; ``cached`` whether
        it was reused (the caller must ``ftruncate`` after a reused
        write — a fresh descriptor opens with ``O_TRUNC``);
        ``fell_back`` whether this call hit the O_DIRECT fallback.
        """
        with self._lock:
            entry = self._entries.get(path)
            if entry is not None:
                self._entries.move_to_end(path)
                return entry.fd, entry.direct, True, False
            flags = os.O_RDWR | os.O_CREAT | os.O_TRUNC
            fell_back = False
            direct = False
            if self.direct:
                try:
                    fd = self._open(path, flags | os.O_DIRECT)
                    direct = True
                except OSError:
                    # The filesystem refused O_DIRECT (common on tmpfs/
                    # overlayfs): fall back to buffered, per file.
                    self.direct_fallbacks += 1
                    fell_back = True
                    fd = self._open(path, flags)
            else:
                fd = self._open(path, flags)
            self._entries[path] = _FDEntry(fd, direct)
            self._evict_locked()
            return fd, direct, False, fell_back

    def acquire_read(self, path: str) -> int:
        """Descriptor for reading ``path`` (buffered, never O_DIRECT).

        Raises :class:`FileNotFoundError` when the path does not exist
        and no descriptor is cached — the same contract as the stores'
        classic read path.
        """
        with self._lock:
            entry = self._entries.get(path)
            if entry is not None and not entry.direct:
                self._entries.move_to_end(path)
                return entry.fd
            if entry is not None:
                # A direct descriptor cannot serve unaligned destination
                # buffers; replace it with a buffered one.
                del self._entries[path]
                self._close(entry)
            fd = self._open(path, os.O_RDWR)
            self._entries[path] = _FDEntry(fd, False)
            self._evict_locked()
            return fd

    def invalidate(self, path: str) -> None:
        """Close and forget ``path``'s descriptor (file was deleted)."""
        with self._lock:
            entry = self._entries.pop(path, None)
            if entry is not None:
                self._close(entry)

    def close_all(self) -> None:
        with self._lock:
            for entry in self._entries.values():
                self._close(entry)
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# --------------------------------------------------------------------------
# I/O context: how the stores know a batched backend is driving them
# --------------------------------------------------------------------------


class IOContext:
    """Per-batch execution context a backend installs around bodies.

    The stores check :func:`current_io_context` inside ``write``/``read``
    and, when one is active, route through their vectored entry points
    over ``fds``.  ``gds`` (GDS-sim only) carries the registry the SSD
    store consults for bounce-vs-direct routing; ``arena`` provides the
    staging leases for the bounce path and for O_DIRECT-aligned writes.
    """

    __slots__ = ("fds", "lane", "backend", "arena", "gds")

    def __init__(
        self,
        fds: FDTable,
        lane: str,
        backend: Optional["UringBackend"] = None,
        arena: Optional[BufferArena] = None,
        gds: Optional[GDSRegistry] = None,
    ) -> None:
        self.fds = fds
        self.lane = lane
        self.backend = backend
        self.arena = arena
        self.gds = gds

    def note_bounce(self, skipped: bool) -> None:
        """Book one GDS-sim routing decision on the backend's lane books."""
        if self.backend is not None:
            self.backend._note_bounce(self.lane, skipped)

    def note_direct_fallback(self) -> None:
        """Book a write-time O_DIRECT refusal (open-time ones are counted
        by the FD table)."""
        if self.backend is not None:
            self.backend._note_direct_fallback(self.lane)


class _ContextState(threading.local):
    current: Optional[IOContext] = None


_STATE = _ContextState()


def current_io_context() -> Optional[IOContext]:
    """The I/O context installed on this thread, if any."""
    return _STATE.current


@contextmanager
def io_context(ctx: IOContext) -> Iterator[IOContext]:
    """Install ``ctx`` as the thread's I/O context for the scope."""
    previous = _STATE.current
    _STATE.current = ctx
    try:
        yield ctx
    finally:
        _STATE.current = previous


# --------------------------------------------------------------------------
# SQ/CQ backend
# --------------------------------------------------------------------------


class _CQE:
    """One completion-queue entry: a submitted request plus its outcome."""

    __slots__ = ("request", "result", "error")

    def __init__(
        self, request: IOJob, result: object, error: Optional[BaseException]
    ) -> None:
        self.request = request
        self.result = result
        self.error = error


class UringBackend(IOBackend):
    """Submission/completion-queue lane execution over pre-opened FDs.

    The dequeuing lane worker is the submission side: it claims the
    batch, runs each member's body (bounded retries included) with an
    :class:`IOContext` installed — so the stores take their vectored,
    FD-table paths — and pushes the whole batch to the completion
    queue.  The **reaper** thread is the completion side: it applies
    each outcome (terminal state, done callbacks — which release leases,
    decrement lane pending, refund tenant quota — health books) in
    submission order and stamps the reap lag onto the channel windows.

    Splitting the job's ``execute()`` into ``run_body``/``complete``
    preserves its exact semantics; everything the scheduler observes
    (books, health, lease reconciliation) is identical to the thread
    backend by construction — only the syscall pattern and the
    completion thread differ.

    Args:
        direct: open write descriptors with ``O_DIRECT`` where the
            filesystem allows (alignment via ``aligned=True`` arena
            leases; refused files fall back to buffered, counted).
        max_open_fds: LRU bound on the FD table.
        arena: staging-lease arena for O_DIRECT writes (and, in the
            GDS-sim subclass, bounce staging).  Created on demand when
            ``direct`` and omitted.
    """

    name = "uring"

    def __init__(
        self,
        direct: bool = False,
        max_open_fds: int = 128,
        arena: Optional[BufferArena] = None,
    ) -> None:
        super().__init__()
        self.fds = FDTable(max_open=max_open_fds, direct=direct)
        if arena is None and direct:
            arena = BufferArena()
        self.arena = arena
        self._cq: Deque[Tuple[str, List[_CQE]]] = deque()
        self._cq_cond = threading.Condition()
        self._stop = False
        self._reaper: Optional[threading.Thread] = None

    # ---------------------------------------------------------------- wiring
    def bind(self, scheduler) -> None:
        super().bind(scheduler)
        if self._reaper is None:
            self._reaper = threading.Thread(
                target=self._reap_loop, name=f"{self.name}-reaper", daemon=True
            )
            self._reaper.start()

    def _context_for(self, lane: str) -> IOContext:
        return IOContext(fds=self.fds, lane=lane, backend=self, arena=self.arena)

    def _note_bounce(self, lane: str, skipped: bool) -> None:
        with self._stats_lock:
            stats = self._lane(lane)
            if skipped:
                stats.bounce_copies_skipped += 1
            else:
                stats.bounce_copies += 1

    def _note_direct_fallback(self, lane: str) -> None:
        with self._stats_lock:
            self._lane(lane).direct_fallbacks += 1

    # ------------------------------------------------------------ submission
    def run_batch(self, lane: str, batch: List[IOJob]) -> None:
        sched = self.scheduler
        ctx = self._context_for(lane)
        cqes: List[_CQE] = []
        claimed = 0
        batch_syscalls = 0
        for request in batch:
            if not request.claim():
                # Lost to cancel() or a competing claim on a promoted
                # duplicate; the winner owns all bookkeeping.
                continue
            claimed += 1
            if claimed > 1:
                request.coalesced = True
            sched.begin_request(request)
            tape = syscall_tape()
            try:
                with tape, tenant_scope(request.tenant), io_context(ctx):
                    result, error = request.run_body()
            except BaseException as exc:  # belt: run_body must not raise
                result, error = None, exc
            batch_syscalls += tape.count
            # The I/O is done now — finished_at marks device completion,
            # the reaper's stamp on top of it is pure completion-path
            # latency (reap lag).
            request.finished_at = time.monotonic()
            cqes.append(_CQE(request, result, error))
        if cqes:
            with self._cq_cond:
                self._cq.append((lane, cqes))
                self._cq_cond.notify()
        with self._stats_lock:
            stats = self._lane(lane)
            stats.syscalls += batch_syscalls
            if claimed:
                stats.batches += 1
            if claimed > 1:
                stats.batched_requests += claimed

    # ------------------------------------------------------------ completion
    def _reap_loop(self) -> None:
        while True:
            with self._cq_cond:
                while not self._cq and not self._stop:
                    self._cq_cond.wait()
                if not self._cq and self._stop:
                    return
                lane, cqes = self._cq.popleft()
            try:
                self._reap(lane, cqes)
            except Exception:  # pragma: no cover - reaper must survive
                logger.exception("reaper failed on a %s batch", lane)
                for cqe in cqes:
                    if not cqe.request.done_event.is_set():
                        self.scheduler.finish_request(cqe.request)

    def _reap(self, lane: str, cqes: List[_CQE]) -> None:
        sched = self.scheduler
        done_members = 0
        trailing_done_bytes = 0
        lag_total = 0.0
        for cqe in cqes:
            request = cqe.request
            lag = max(0.0, time.monotonic() - request.finished_at)
            lag_total += lag
            try:
                # The done callbacks fire here — inside the request's
                # tenant scope, like the thread backend's execute(), so
                # refunds/arena attribution land on the right tenant.
                with tenant_scope(request.tenant):
                    request.complete(cqe.result, cqe.error)
            except Exception:
                logger.exception(
                    "request %s raised outside its body (callback failure); "
                    "reaper continues",
                    request.label,
                )
            finally:
                sched.note_reap_lag(request, lag)
                sched.finish_request(request)
            if request.state is JobState.DONE:
                done_members += 1
                if done_members > 1:
                    trailing_done_bytes += request.nbytes
            sched.notify_done(request)
        sched.book_coalesced(done_members, trailing_done_bytes)
        with self._stats_lock:
            stats = self._lane(lane)
            stats.reaped += len(cqes)
            stats.reap_lag_s += lag_total

    def shutdown(self) -> None:
        """Stop the reaper and close every cached descriptor (idempotent)."""
        with self._cq_cond:
            already = self._stop
            self._stop = True
            self._cq_cond.notify_all()
        if self._reaper is not None:
            self._reaper.join(timeout=5)
            self._reaper = None
        if not already:
            self.fds.close_all()

    close = shutdown

    def __enter__(self) -> "UringBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()


class GDSSimBackend(UringBackend):
    """The uring backend plus simulated GPUDirect-Storage routing.

    Registered storages (the CUDA-malloc-hook model —
    :meth:`~repro.core.offloader.SSDOffloader.register_tensor` registers
    every offloaded tensor's storage at pack time) are written straight
    from their payload array: zero host copies, booked as
    ``bounce_copies_skipped``.  Unregistered arrays are staged through a
    host bounce buffer first (one arena lease + one copy, booked as
    ``bounce_copies``), like real GDS falling back for buffers the
    driver never registered.  Reads are already direct-to-destination
    either way.  The routing applies wherever a
    :class:`~repro.io.filestore.TensorFileStore` write runs under this
    backend; the chunk store's staging buffer *is* a host bounce by
    design, so chunked configurations route through it unchanged.
    """

    name = "gds-sim"

    def __init__(
        self,
        registry: Optional[GDSRegistry] = None,
        direct: bool = False,
        max_open_fds: int = 128,
        arena: Optional[BufferArena] = None,
    ) -> None:
        super().__init__(direct=direct, max_open_fds=max_open_fds, arena=arena)
        if self.arena is None:
            # Bounce staging for unregistered storages.
            self.arena = BufferArena()
        self.registry = registry if registry is not None else GDSRegistry()

    def _context_for(self, lane: str) -> IOContext:
        ctx = super()._context_for(lane)
        ctx.gds = self.registry
        return ctx
