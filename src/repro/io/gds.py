"""GPUDirect Storage (GDS) path model.

GDS "enables a direct data path between GPU and NVMe SSDs, removing the
need for a CPU bounce buffer" (Sec. II-D).  The paper uses the kvikio
binding plus an ``LD_PRELOAD`` CUDA-malloc hook library so GPU buffers are
registered with GDS at allocation time (Sec. III-A).

This module models both paths analytically for the simulator and provides
the registration bookkeeping for the functional engine:

- :class:`DirectGDSPath` — GPU -> SSD limited by min(GPU PCIe link, SSD
  array bandwidth).
- :class:`BounceBufferPath` — GPU -> host -> SSD: two serialized copies
  plus CPU-memory contention, the inefficiency SSDTrain avoids.
- :class:`GDSRegistry` — which storages are registered (the CUDA malloc
  hook's job); transfers of unregistered buffers fall back to the bounce
  path, like real GDS.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Union

from repro.device.pcie import PCIeLink
from repro.device.ssd import RAID0Array, SSD
from repro.tensor.storage import UntypedStorage


class GDSRegistry:
    """Tracks which storages have been registered for GDS.

    The paper hooks ``cudaMalloc``/``cudaFree`` via ``LD_PRELOAD`` so that
    every allocation is registered "for best GDS performance" without
    replacing the PyTorch allocator.  The functional engine calls
    :meth:`register` from the offloader; membership is by weak reference so
    registration never extends a buffer's lifetime.
    """

    def __init__(self) -> None:
        self._registered: "weakref.WeakSet[UntypedStorage]" = weakref.WeakSet()
        #: Owning storage by payload-array identity (``id(storage.data)``)
        #: — the lookup the GDS-sim lane performs at store time, when it
        #: holds the ndarray being written, not the storage object.  A
        #: WeakValueDictionary so the index, like the membership set,
        #: never extends a buffer's lifetime; the ``.data is array``
        #: re-check below guards against ``id()`` reuse after a collect.
        self._by_array: "weakref.WeakValueDictionary[int, UntypedStorage]" = (
            weakref.WeakValueDictionary()
        )
        self._lock = threading.Lock()
        self.register_count = 0
        self.deregister_count = 0

    def register(self, storage: UntypedStorage) -> None:
        with self._lock:
            if storage not in self._registered:
                self._registered.add(storage)
                self._by_array[id(storage.data)] = storage
                self.register_count += 1

    def deregister(self, storage: UntypedStorage) -> None:
        with self._lock:
            if storage in self._registered:
                self._registered.discard(storage)
                self._by_array.pop(id(storage.data), None)
                self.deregister_count += 1

    def is_registered(self, storage: UntypedStorage) -> bool:
        with self._lock:
            return storage in self._registered

    def owner_of(self, array) -> Union[UntypedStorage, None]:
        """The registered storage whose payload is ``array``, else None."""
        with self._lock:
            storage = self._by_array.get(id(array))
            if storage is None or storage.data is not array:
                return None
            return storage

    def is_array_registered(self, array) -> bool:
        """Whether ``array`` is the payload of a registered storage.

        The functional GDS-sim lane's routing predicate: a store whose
        source array belongs to a registered storage takes the direct
        path (no host bounce staging); anything else — unregistered
        storages, detached copies — falls back to the bounce path, like
        real GDS.
        """
        return self.owner_of(array) is not None


@dataclass(frozen=True)
class DirectGDSPath:
    """Direct GPU <-> SSD DMA: bottlenecked by the slower of the two hops."""

    gpu_link: PCIeLink
    array: Union[SSD, RAID0Array]

    def write_bandwidth(self) -> float:
        return min(self.gpu_link.bandwidth, _write_bw(self.array))

    def read_bandwidth(self) -> float:
        return min(self.gpu_link.bandwidth, _read_bw(self.array))

    def write_time(self, nbytes: int) -> float:
        if nbytes == 0:
            return 0.0
        return self.gpu_link.latency_s + nbytes / self.write_bandwidth()

    def read_time(self, nbytes: int) -> float:
        if nbytes == 0:
            return 0.0
        return self.gpu_link.latency_s + nbytes / self.read_bandwidth()


@dataclass(frozen=True)
class BounceBufferPath:
    """GPU -> host bounce buffer -> SSD (what SSDTrain avoids).

    The two hops serialize unless double-buffered; host-memory bandwidth is
    additionally shared with "training management tasks and offloaded
    computation" (Sec. I), modeled by ``host_contention`` < 1.
    """

    gpu_link: PCIeLink
    array: Union[SSD, RAID0Array]
    host_contention: float = 0.7
    double_buffered: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.host_contention <= 1:
            raise ValueError(f"host_contention must be in (0, 1]: {self.host_contention}")

    def write_bandwidth(self) -> float:
        gpu_hop = self.gpu_link.bandwidth * self.host_contention
        ssd_hop = _write_bw(self.array)
        if self.double_buffered:
            return min(gpu_hop, ssd_hop)
        # Serialized hops: effective rate is the harmonic combination.
        return 1.0 / (1.0 / gpu_hop + 1.0 / ssd_hop)

    def read_bandwidth(self) -> float:
        gpu_hop = self.gpu_link.bandwidth * self.host_contention
        ssd_hop = _read_bw(self.array)
        if self.double_buffered:
            return min(gpu_hop, ssd_hop)
        return 1.0 / (1.0 / gpu_hop + 1.0 / ssd_hop)

    def write_time(self, nbytes: int) -> float:
        if nbytes == 0:
            return 0.0
        return 2 * self.gpu_link.latency_s + nbytes / self.write_bandwidth()

    def read_time(self, nbytes: int) -> float:
        if nbytes == 0:
            return 0.0
        return 2 * self.gpu_link.latency_s + nbytes / self.read_bandwidth()


def _write_bw(array: Union[SSD, RAID0Array]) -> float:
    if isinstance(array, RAID0Array):
        return array.write_bw
    return array.spec.write_bw


def _read_bw(array: Union[SSD, RAID0Array]) -> float:
    if isinstance(array, RAID0Array):
        return array.read_bw
    return array.spec.read_bw
