"""Scheduler hints (Sec. III-A).

"Hints are added to Megatron's and DeepSpeed's schedulers ... before and
after the execution of each command, e.g., computing the micro-batch i,
communication, so that the tensor cache gets notified about the upcoming
stage and the completion of an action."

:class:`SchedulerHints` is the notification surface; :func:`patch_schedule`
monkey-patches a schedule object's command methods the way SSDTrain's
integration script patches Megatron/DeepSpeed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.core.tensor_cache import TensorCache


class Stage(enum.Enum):
    """Scheduler commands the cache is notified about."""

    FORWARD_MICROBATCH = "forward_microbatch"
    BACKWARD_MICROBATCH = "backward_microbatch"
    COMMUNICATE = "communicate"
    OPTIMIZER_STEP = "optimizer_step"


@dataclass
class HintEvent:
    stage: Stage
    microbatch: Optional[int]
    phase: str  # "before" | "after"


class SchedulerHints:
    """Routes scheduler command notifications into a tensor cache.

    Also keeps an event log so tests/benchmarks can assert the exact
    notification sequence (the Fig. 2 markers).
    """

    def __init__(self, cache: TensorCache) -> None:
        self.cache = cache
        self.events: List[HintEvent] = []

    # ------------------------------------------------------------- commands
    def before(self, stage: Stage, microbatch: Optional[int] = None, *, backward_follows: bool = False) -> None:
        """Notify the cache that ``stage`` is about to run.

        Args:
            backward_follows: True when this forward's backward begins
                immediately after (the Fig. 2 marker-4 keep case).
        """
        self.events.append(HintEvent(stage, microbatch, "before"))
        if stage is Stage.FORWARD_MICROBATCH:
            if microbatch is not None:
                self.cache.set_microbatch(microbatch)
            if backward_follows:
                self.cache.hint_keep_remaining(True)
        elif stage is Stage.BACKWARD_MICROBATCH:
            if microbatch is not None:
                self.cache.set_microbatch(microbatch)
            self.cache.on_backward_begin()

    def after(self, stage: Stage, microbatch: Optional[int] = None) -> None:
        """Notify the cache that ``stage`` completed."""
        self.events.append(HintEvent(stage, microbatch, "after"))
        if stage is Stage.FORWARD_MICROBATCH:
            self.cache.hint_keep_remaining(False)
        elif stage is Stage.BACKWARD_MICROBATCH:
            self.cache.on_backward_end()
        elif stage is Stage.OPTIMIZER_STEP:
            self.cache.on_step_end()


def patch_schedule(schedule: Any, hints: SchedulerHints) -> Any:
    """Monkey-patch a schedule object so its command methods emit hints.

    The schedule must expose ``forward_microbatch(i)``,
    ``backward_microbatch(i)`` and ``optimizer_step()`` methods (as
    :class:`repro.train.schedule.MicrobatchSchedule` does).  Returns the
    patched object.
    """
    for method_name, stage in (
        ("forward_microbatch", Stage.FORWARD_MICROBATCH),
        ("backward_microbatch", Stage.BACKWARD_MICROBATCH),
        ("optimizer_step", Stage.OPTIMIZER_STEP),
    ):
        original = getattr(schedule, method_name, None)
        if original is None:
            raise AttributeError(f"schedule lacks {method_name}()")

        def wrapped(*args, _orig=original, _stage=stage, **kwargs):
            microbatch = args[0] if args and isinstance(args[0], int) else None
            hints.before(_stage, microbatch, backward_follows=kwargs.pop("backward_follows", False))
            result = _orig(*args, **kwargs)
            hints.after(_stage, microbatch)
            return result

        setattr(schedule, method_name, wrapped)
    return schedule
