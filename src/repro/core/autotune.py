"""Online adaptive offload controller: live re-sizing from observed bandwidth.

The paper sizes the activation offload budget **once**: "SSDTrain
retrieves ... GPU throughput and SSD bandwidth.  Then SSDTrain sets the
activation offload amount accordingly" (Fig. 3, reproduced as the
one-shot :func:`~repro.core.adaptive.choose_offload_budget`).  A static
budget is only right while the hardware keeps behaving like the profiled
step — real SSD arrays throttle under sustained writes, co-tenant jobs
steal array bandwidth, and batch shapes change mid-run.  When observed
bandwidth drops below the profile, a static budget pushes I/O onto the
backward critical path (stalls); when bandwidth recovers, it strands GPU
memory that could have been freed.

This module closes the loop the paper leaves open::

    per-lane completion stats         EWMA estimators       budget formula
    IOScheduler                 ───►  write/read bw   ───►  choose_offload_budget
    .consume_completion_stats()       fwd/bwd windows       with OBSERVED inputs
                                      activation volume            │
                                                                   │ install
                 PolicyConfig.offload_budget_bytes  ◄──────────────┤
                 TensorCache.prefetch_window        ◄──────────────┤
                 TieredOffloader free watermark     ◄──────────────┘

Every knob is re-derived per step from exponentially-weighted moving
averages and installed *between* steps (the budget is only consulted at
pack time, the prefetch window at backward entry, the watermark during
idle lanes), so a re-size never races in-flight I/O.  Hysteresis
(:attr:`ControllerConfig.retune_threshold`) keeps the controller from
thrashing the knobs on measurement noise.

The controller is engine-agnostic: :meth:`AutotuneController.observe`
takes a plain :class:`StepObservation` and returns a
:class:`ControllerDecision`, which is what the discrete-event simulator
drives (:func:`repro.sim.step_sim.simulate_adaptive_run`);
:meth:`AutotuneController.on_step_end` is the functional-engine adapter
that builds the observation from a :class:`~repro.core.tensor_cache.TensorCache`
and installs the decision through it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.adaptive import WorkloadProfile, choose_offload_budget
from repro.io.scheduler import ChannelWindow


class EWMA:
    """Exponentially-weighted moving average with a bias-free first sample.

    ``alpha`` is the weight of the newest sample: after a step change in
    the underlying signal the estimate closes ``alpha`` of the remaining
    gap per update, so the residual error after ``n`` observations is
    ``(1 - alpha) ** n`` — with the default controller alpha of 0.5 a
    bandwidth drop is tracked to within ~3 % in five steps (the
    convergence budget the sim acceptance tests assert).
    """

    def __init__(self, alpha: float) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        self.alpha = alpha
        self._value: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        return self._value

    def update(self, sample: float) -> float:
        if self._value is None:
            self._value = float(sample)
        else:
            self._value += self.alpha * (float(sample) - self._value)
        return self._value


@dataclass(frozen=True)
class StepObservation:
    """What the controller learns from one completed training step.

    The engine adapter assembles this from the cache's per-step stat
    deltas and the scheduler's per-lane completion windows; the
    simulator assembles it from the step's timeline.  Zero-valued
    bandwidth fields mean "no traffic observed this window" and leave
    the corresponding estimator untouched.
    """

    forward_time_s: float
    backward_time_s: float
    #: Eligible activation bytes produced this step (offloaded + kept).
    activation_bytes: int
    #: Bytes actually written to / read from the offload backends, and
    #: the channel-busy seconds they took (observed bandwidth = ratio).
    write_bytes: int = 0
    write_busy_s: float = 0.0
    read_bytes: int = 0
    read_busy_s: float = 0.0
    read_count: int = 0
    #: Completion-path latency (SQ/CQ backends: time completions sat on
    #: the completion queue before the reaper applied them).  Part of
    #: the effective per-read latency the prefetch window must cover;
    #: the thread backend completes inline and contributes 0.
    reap_lag_s: float = 0.0
    #: Offloaded-tensor shape of the step (prefetch-window sizing).
    stored_tensors: int = 0
    stored_bytes: int = 0
    #: Backward time lost waiting on loads — the AIMD backoff's trim
    #: signal.  ``forward_time_s``/``backward_time_s`` must be compute
    #: windows with this stall already excluded.
    stall_time_s: float = 0.0
    #: Tiered runs: pinned-pool influx and capacity (watermark sizing).
    cpu_stored_bytes: int = 0
    cpu_pool_capacity_bytes: int = 0
    #: Failure-recovery telemetry (scheduler lane health): terminal I/O
    #: failures observed this step, and lanes declared dead.  Failures
    #: trim the budget the way stall does — a flaky device earns less
    #: traffic; a dead write lane floors the backoff outright (the
    #: surviving tiers should not be sized as if the SSD still drained).
    io_failures: int = 0
    dead_lanes: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ControllerConfig:
    """Tunable knobs of the feedback loop."""

    #: EWMA weight of the newest sample for every estimator.
    alpha: float = 0.5
    #: Headroom left under the observed bandwidth when re-running the
    #: budget formula (jitter insurance, same meaning as the one-shot's).
    safety_factor: float = 0.9
    #: Relative budget change below which no re-install happens
    #: (hysteresis against measurement noise).
    retune_threshold: float = 0.05
    #: Floor for the installed budget; 0 allows shutting offload off.
    min_budget_bytes: int = 0
    #: Prefetch-window clamp (records of look-ahead).
    min_prefetch_window: int = 2
    max_prefetch_window: int = 64
    #: Safety multiplier on the bandwidth-delay product when sizing the
    #: prefetch window.
    prefetch_margin: float = 2.0
    #: Fraction of the observed per-step pinned-pool influx kept free as
    #: headroom between steps (tiered backends only).
    watermark_fraction: float = 0.5
    #: Stall-aware backoff (the AIMD half of the loop).  The budget
    #: formula models independent store/load channels; on a shared,
    #: contended channel (or any effect the formula does not see) the
    #: formula budget can still stall backward.  Observed stall above
    #: ``stall_tolerance`` of the step's compute time multiplies the
    #: backoff by ``1 - stall_trim``; after ``recover_patience``
    #: stall-free steps it probes back up by ``recover_rate`` per step,
    #: never past the formula budget (backoff <= 1).
    stall_tolerance: float = 0.02
    stall_trim: float = 0.15
    recover_rate: float = 0.05
    recover_patience: int = 3
    min_backoff: float = 0.1


@dataclass(frozen=True)
class ControllerDecision:
    """One step's output: the knob values that should be in force.

    ``retuned`` is True when the budget moved beyond the hysteresis band
    and must be (re-)installed; consumers skip the install otherwise.
    ``prefetch_window`` / ``cpu_free_watermark_bytes`` are ``None`` when
    the step carried too little signal to size them.
    """

    step_index: int
    offload_budget_bytes: Optional[int]
    retuned: bool = False
    prefetch_window: Optional[int] = None
    cpu_free_watermark_bytes: Optional[int] = None
    #: The estimates behind the decision (benchmark / table surface).
    write_bandwidth_bytes_per_s: Optional[float] = None
    read_bandwidth_bytes_per_s: Optional[float] = None


@dataclass
class _Estimators:
    """The controller's EWMA bank (one instance per controller)."""

    write_bw: EWMA
    read_bw: EWMA
    read_latency_s: EWMA
    forward_s: EWMA
    backward_s: EWMA
    activation_bytes: EWMA
    tensor_bytes: EWMA
    cpu_influx_bytes: EWMA

    @classmethod
    def fresh(cls, alpha: float) -> "_Estimators":
        return cls(*(EWMA(alpha) for _ in range(8)))


class AutotuneController:
    """Per-step feedback loop around the paper's budget formula.

    Use :meth:`observe` with hand-built observations (the simulator
    path), or :meth:`on_step_end` to both observe and install against a
    live :class:`~repro.core.tensor_cache.TensorCache` (the trainer
    hooks this once per step)::

        controller = AutotuneController()
        trainer = Trainer(model, opt, gpu, strategy=PlacementStrategy.OFFLOAD,
                          cache=cache, controller=controller)

    ``history`` keeps every decision for A/B tables and tests.
    """

    def __init__(self, config: Optional[ControllerConfig] = None) -> None:
        self.config = config if config is not None else ControllerConfig()
        self.estimators = _Estimators.fresh(self.config.alpha)
        self.history: List[ControllerDecision] = []
        self._step_index = 0
        self._installed_budget: Optional[int] = None
        #: Multiplicative trim below the formula budget while stall is
        #: observed (1.0 = trust the formula).
        self._backoff = 1.0
        self._clean_steps = 0

    @property
    def installed_budget_bytes(self) -> Optional[int]:
        """The budget currently in force (None before the first retune)."""
        return self._installed_budget

    # ----------------------------------------------------------------- observe
    def observe(self, obs: StepObservation) -> ControllerDecision:
        """Fold one step's observation into the estimators and decide.

        Pure with respect to the engine: nothing is installed — the
        caller applies the returned decision (the cache's
        ``apply_autotune``, or the sim driver's policy mutation).
        """
        est = self.estimators
        if obs.forward_time_s > 0:
            est.forward_s.update(obs.forward_time_s)
        if obs.backward_time_s > 0:
            est.backward_s.update(obs.backward_time_s)
        if obs.activation_bytes > 0:
            est.activation_bytes.update(obs.activation_bytes)
        if obs.write_bytes > 0 and obs.write_busy_s > 0:
            est.write_bw.update(obs.write_bytes / obs.write_busy_s)
        if obs.read_bytes > 0 and obs.read_busy_s > 0:
            est.read_bw.update(obs.read_bytes / obs.read_busy_s)
        if obs.read_count > 0 and obs.read_busy_s > 0:
            # Busy time plus reap lag: what a blocking unpack actually
            # waits, so the prefetch window absorbs the completion path
            # too (zero under the inline-completing thread backend).
            est.read_latency_s.update(
                (obs.read_busy_s + obs.reap_lag_s) / obs.read_count
            )
        if obs.stored_tensors > 0 and obs.stored_bytes > 0:
            est.tensor_bytes.update(obs.stored_bytes / obs.stored_tensors)
        if obs.cpu_pool_capacity_bytes > 0:
            est.cpu_influx_bytes.update(obs.cpu_stored_bytes)
        self._update_backoff(obs)

        self._step_index += 1
        budget, retuned = self._retune_budget()
        decision = ControllerDecision(
            step_index=self._step_index,
            offload_budget_bytes=budget,
            retuned=retuned,
            prefetch_window=self._size_prefetch_window(),
            cpu_free_watermark_bytes=self._size_watermark(obs),
            write_bandwidth_bytes_per_s=est.write_bw.value,
            read_bandwidth_bytes_per_s=est.read_bw.value,
        )
        self.history.append(decision)
        return decision

    # ------------------------------------------------------------------ knobs
    def _update_backoff(self, obs: StepObservation) -> None:
        """AIMD trim under observed stall or I/O failures; slow probe
        upward when clean."""
        cfg = self.config
        if obs.dead_lanes:
            # A dead lane is not noise to average over: floor the
            # backoff until the device comes back (it will probe up
            # through the recovery path if the lane is revived).
            self._backoff = cfg.min_backoff
            self._clean_steps = 0
            return
        compute = obs.forward_time_s + obs.backward_time_s
        stalled = compute > 0 and obs.stall_time_s > cfg.stall_tolerance * compute
        if stalled or obs.io_failures > 0:
            self._backoff = max(cfg.min_backoff, self._backoff * (1 - cfg.stall_trim))
            self._clean_steps = 0
            return
        self._clean_steps += 1
        if self._clean_steps > cfg.recover_patience and self._backoff < 1.0:
            self._backoff = min(1.0, self._backoff * (1 + cfg.recover_rate))

    def _retune_budget(self) -> Tuple[Optional[int], bool]:
        """The paper's formula over observed inputs, plus hysteresis."""
        est = self.estimators
        write_bw = est.write_bw.value
        forward = est.forward_s.value
        backward = est.backward_s.value
        activations = est.activation_bytes.value
        if not write_bw or not forward or not backward or not activations:
            return self._installed_budget, False
        profile = WorkloadProfile(
            activation_bytes_per_step=int(activations),
            forward_time_s=forward,
            backward_time_s=backward,
        )
        formula = choose_offload_budget(
            profile,
            write_bandwidth_bytes_per_s=write_bw,
            read_bandwidth_bytes_per_s=est.read_bw.value,
            safety_factor=self.config.safety_factor,
        )
        recommended = max(self.config.min_budget_bytes, int(formula * self._backoff))
        installed = self._installed_budget
        if installed is not None and installed > 0:
            if abs(recommended - installed) / installed <= self.config.retune_threshold:
                return installed, False
        elif installed == recommended:
            return installed, False
        self._installed_budget = recommended
        return recommended, True

    def _size_prefetch_window(self) -> Optional[int]:
        """Bandwidth-delay product in records: the window must cover the
        tensors backward consumes during one load round-trip, or loads
        arrive late and the GPU stalls; anything deeper only inflates
        the prefetched resident set."""
        est = self.estimators
        backward = est.backward_s.value
        activations = est.activation_bytes.value
        latency = est.read_latency_s.value
        tensor_bytes = est.tensor_bytes.value
        if not backward or not activations or not latency or not tensor_bytes:
            return None
        consumption_rate = activations / backward
        window_bytes = consumption_rate * latency * self.config.prefetch_margin
        window = int(math.ceil(window_bytes / tensor_bytes)) + 1
        return max(
            self.config.min_prefetch_window,
            min(self.config.max_prefetch_window, window),
        )

    def _size_watermark(self, obs: StepObservation) -> Optional[int]:
        """Free headroom target for a tiered backend's pinned pool.

        Sized from the observed per-step pool influx: keeping a fraction
        of it free between steps lets the next forward burst land at
        PCIe speed instead of waiting on demotions it triggers itself.
        Shrinks automatically when the budget (and hence the influx)
        shrinks, so a degraded SSD is not hammered with pointless
        pre-demotions of warm data.
        """
        capacity = obs.cpu_pool_capacity_bytes
        influx = self.estimators.cpu_influx_bytes.value
        if capacity <= 0 or influx is None:
            return None
        watermark = int(self.config.watermark_fraction * influx)
        return max(0, min(watermark, capacity // 2))

    # --------------------------------------------------------- engine adapter
    def on_step_end(
        self,
        cache: Any,
        forward_time_s: float,
        backward_time_s: float,
    ) -> ControllerDecision:
        """Observe one live step and install the decision through the cache.

        Hooked by the :class:`~repro.train.trainer.Trainer` after every
        step: drains the cache's per-step stat deltas and the
        scheduler's per-lane completion windows, folds them into the
        estimators, and applies the resulting knob values via
        ``cache.apply_autotune``.

        The trainer's ``backward_time_s`` is wall clock, which includes
        any time backward spent blocked in unpack waiting on loads; the
        cache times those waits (``unpack_wait_s``), so the stall is
        subtracted back out here.  Feeding the stall-inflated window
        into the budget formula would be a positive feedback loop —
        degraded bandwidth -> longer backward -> *larger* budget — and
        the stall itself must reach the AIMD trim instead.
        """
        step = cache.consume_step_stats()
        lanes = cache.scheduler.consume_completion_stats()
        write = _merge_channel(lanes, "write")
        read = _merge_channel(lanes, "read")
        stall_s = min(step.unpack_wait_s, backward_time_s)
        io_failures = 0
        dead_lanes: Tuple[str, ...] = ()
        health = getattr(cache.scheduler, "health", None)
        if health is not None:
            io_failures = sum(health.consume_failure_window().values())
            dead_lanes = health.dead_lanes()
        obs = StepObservation(
            forward_time_s=forward_time_s,
            backward_time_s=backward_time_s - stall_s,
            activation_bytes=step.activation_bytes,
            write_bytes=write.nbytes,
            write_busy_s=write.busy_s,
            read_bytes=read.nbytes,
            read_busy_s=read.busy_s,
            read_count=read.count,
            reap_lag_s=read.reap_lag_s,
            stored_tensors=step.stored_tensors,
            stored_bytes=step.stored_bytes,
            stall_time_s=stall_s,
            cpu_stored_bytes=step.cpu_stored_bytes,
            cpu_pool_capacity_bytes=step.cpu_pool_capacity_bytes,
            io_failures=io_failures,
            dead_lanes=dead_lanes,
        )
        decision = self.observe(obs)
        cache.apply_autotune(decision)
        return decision


def _merge_channel(lanes: Dict[str, Dict[str, ChannelWindow]], channel: str) -> ChannelWindow:
    """Merge one channel across every lane that saw traffic — the same
    blended-drain-rate view the simulator observes, so a tiered run
    whose stores mostly land on the cpu lane still feeds the estimator
    its real aggregate throughput."""
    merged = ChannelWindow()
    for channels in lanes.values():
        window = channels.get(channel)
        if window is not None:
            merged.merge(window)
    return merged
