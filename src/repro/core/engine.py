"""The engine facade: one typed construction path for the offload stack.

Growing a second front-end (the KV-cache paging server in
:mod:`repro.serve`) next to the original :class:`~repro.train.trainer.Trainer`
exposed two API problems:

1. **Construction sprawl** — the only way to build the data plane was the
   ``make_offloader(target, store_dir, cpu_pool_bytes, chunk_bytes, ...)``
   kwarg pile, after which every caller still had to build an
   :class:`~repro.io.scheduler.IOScheduler` (or let
   :class:`~repro.core.tensor_cache.TensorCache` build one implicitly) and
   wire the two together by hand.
2. **Stats sprawl** — telemetry was scattered over four ad-hoc accessors
   (``Offloader.dataplane_stats()``, ``IOScheduler.consume_completion_stats()``,
   ``TensorCache.consume_step_stats()`` and the tenancy books), each with
   its own consuming/non-consuming semantics.

This module fixes both:

- :class:`EngineConfig` is the single typed configuration record;
  invalid combinations raise :class:`EngineConfigError` (a
  :class:`ValueError` subclass, so legacy ``except ValueError`` callers
  keep working) with the same messages ``make_offloader`` always used.
- :func:`build_engine` returns an :class:`Engine` bundling the offloader,
  a lazily-started scheduler, the placement policy and the optional
  tenant registry.  ``Trainer`` runs construct a cache via
  :meth:`Engine.cache`; the KV front-end drives the offloader/scheduler
  pair directly; ``make_offloader()`` survives as a thin shim over it.
- :meth:`Engine.stats` returns one :class:`EngineStats` snapshot
  aggregating every book non-destructively — reading it never steals the
  adaptive controller's bandwidth windows or resets a counter.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.core.offloader import (
    CPUOffloader,
    OFFLOAD_TARGETS,
    Offloader,
    PinnedMemoryPool,
    SSDOffloader,
)
from repro.core.policy import OffloadPolicy
from repro.io.aio import IOLaneStats
from repro.io.buffers import ArenaStats, DataPlaneStats
from repro.io.scheduler import (
    ChannelWindow,
    IOScheduler,
    LaneHealthSnapshot,
    SchedulerStats,
)
from repro.io.tenancy import TenantRegistry, TenantStats
from repro.io.uring import GDSSimBackend, UringBackend

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.tensor_cache import TensorCache
    from repro.core.tiered import TierStats

#: Lane execution backends an :class:`EngineConfig` may select.
IO_BACKENDS = ("thread", "uring", "gds-sim")


class EngineConfigError(ValueError):
    """An :class:`EngineConfig` describes an impossible engine.

    Subclasses :class:`ValueError` so code written against the historic
    ``make_offloader`` error contract (``except ValueError`` /
    ``pytest.raises(ValueError)``) is unaffected by the typed upgrade.
    """


@dataclass
class EngineConfig:
    """Typed configuration for one offload engine (data + I/O plane).

    Data-plane knobs (the former ``make_offloader`` axis):

    Attributes:
        target: ``"ssd"``, ``"cpu"`` or ``"tiered"`` (see
            :data:`~repro.core.offloader.OFFLOAD_TARGETS`).
        store_dir: backing directory; required for ``ssd``/``tiered``.
        cpu_pool_bytes: pinned-pool capacity (``cpu``/``tiered``);
            ``None`` means unbounded for ``cpu`` and is rejected for
            ``tiered``.
        chunk_bytes: enable chunk coalescing on the SSD path.
        throttle_bytes_per_s: model a paced store device.
        array: array-module override forwarded to the SSD tier.
        policy: the :class:`~repro.core.policy.OffloadPolicy`; built
            fresh when ``None`` and shared between the offloader, the
            cache and any paging front-end so per-tenant placement hooks
            take effect everywhere.
        legacy_dataplane: run the pre-PR5 copy map (A/B baseline).
        promote_on_load: tiered only — copy SSD residents back into the
            pinned pool on load when there is room.
        durable: journal the chunk store's index to a manifest under
            ``store_dir`` and replay it on construction — the crash
            -recovery substrate of the service mode
            (:mod:`repro.service`).  Requires ``chunk_bytes`` and an
            ssd/tiered target; flips the SSD store's shutdown from
            ``clear()`` (destroy) to ``close()`` (keep for replay).
        store_roots: extra chunk-store directories; flushed chunks are
            write-leveled across them by cumulative bytes written
            (requires ``chunk_bytes``).

    I/O-plane knobs (the scheduler every front-end shares):

    Attributes:
        num_store_workers / num_load_workers: per-channel worker counts
            (their sum is each lane's worker pool).
        fifo_io: dequeue in submission order (paper baseline).
        coalesce_bytes / max_retries / retry_backoff_s: forwarded to
            :class:`~repro.io.scheduler.IOScheduler`; ``None`` keeps the
            scheduler's defaults.
        tenants: a :class:`~repro.io.tenancy.TenantRegistry` enabling
            quota admission + weighted fair-share dequeue.
        prefetch_window: look-ahead depth handed to caches built via
            :meth:`Engine.cache`.
        io_backend: how lane workers reach the kernel (:data:`IO_BACKENDS`).
            ``"thread"`` (default) is the blocking per-request model;
            ``"uring"`` batches each dequeued batch into vectored
            submissions over pre-opened descriptors with a dedicated
            completion reaper; ``"gds-sim"`` adds simulated
            GPUDirect-Storage routing against the offloader's
            :class:`~repro.io.gds.GDSRegistry`.
        io_direct: open write descriptors ``O_DIRECT`` (uring/gds-sim
            only) — aligned staging via arena leases, per-file fallback
            where the filesystem refuses.

    Degraded-mode knobs (architecture §12):

    Attributes:
        io_deadlines: per-priority-class deadlines in seconds, e.g.
            ``{"BLOCKING_LOAD": 0.5}``; a watchdog abandons requests
            stuck past theirs (the hung-I/O failure mode) instead of
            letting a wedged lane worker stall the step forever.
        hedge_reads: issue a duplicate BLOCKING_LOAD on the same lane
            after an adaptive delay; first completion wins, the loser is
            cancelled (tail-latency insurance during brownouts).
        hedge_delay_s: explicit hedge delay; ``None`` derives it from
            the recent load-latency distribution (p99-based).
        io_slow_request_s: per-op duration past which the lane health
            tracker moves toward a *slow* (brownout) verdict — distinct
            from *dead*: optional traffic sheds, blocking work continues.
        probe_backoff_s: the SSD breaker's backoff before half-open
            canary probes, and the opt-in for store-path auto-probing
            (tiered target only); ``None`` leaves probing to the service
            housekeeping loop.
    """

    target: str = "tiered"
    store_dir: Any = None
    cpu_pool_bytes: Optional[int] = None
    chunk_bytes: Optional[int] = None
    throttle_bytes_per_s: Optional[float] = None
    array: Any = None
    policy: Optional[OffloadPolicy] = None
    legacy_dataplane: bool = False
    promote_on_load: bool = True
    durable: bool = False
    store_roots: Any = None
    num_store_workers: int = 2
    num_load_workers: int = 2
    fifo_io: bool = False
    coalesce_bytes: Optional[int] = None
    max_retries: Optional[int] = None
    retry_backoff_s: Optional[float] = None
    tenants: Optional[TenantRegistry] = None
    prefetch_window: int = 8
    io_backend: str = "thread"
    io_direct: bool = False
    io_deadlines: Optional[Dict[str, float]] = None
    hedge_reads: bool = False
    hedge_delay_s: Optional[float] = None
    io_slow_request_s: Optional[float] = None
    probe_backoff_s: Optional[float] = None

    def validate(self) -> None:
        """Raise :class:`EngineConfigError` on an inconsistent config.

        Keeps the exact messages ``make_offloader`` raised for the
        combinations it rejected (an experiment flag that does nothing
        is worse than an error), plus checks for the scheduler axis.
        """
        if self.target not in OFFLOAD_TARGETS:
            raise EngineConfigError(
                f"unknown offload target {self.target!r}; "
                f"expected one of {OFFLOAD_TARGETS}"
            )
        if self.target == "cpu" and self.chunk_bytes is not None:
            raise EngineConfigError(
                "chunk_bytes applies to the ssd/tiered targets, not cpu"
            )
        if self.target == "ssd" and self.cpu_pool_bytes is not None:
            raise EngineConfigError(
                "cpu_pool_bytes applies to the cpu/tiered targets, not ssd"
            )
        if self.target in ("ssd", "tiered") and self.store_dir is None:
            raise EngineConfigError(f"{self.target} target requires store_dir")
        if self.target == "tiered" and self.cpu_pool_bytes is None:
            raise EngineConfigError("tiered target requires cpu_pool_bytes")
        if self.cpu_pool_bytes is not None and self.cpu_pool_bytes < 0:
            raise EngineConfigError(
                f"cpu_pool_bytes must be >= 0: {self.cpu_pool_bytes}"
            )
        if self.num_store_workers < 1 or self.num_load_workers < 1:
            raise EngineConfigError("each channel needs at least one worker")
        if self.prefetch_window < 0:
            raise EngineConfigError(
                f"prefetch_window must be >= 0: {self.prefetch_window}"
            )
        if self.io_backend not in IO_BACKENDS:
            raise EngineConfigError(
                f"unknown io_backend {self.io_backend!r}; "
                f"expected one of {IO_BACKENDS}"
            )
        if self.io_direct and self.io_backend == "thread":
            raise EngineConfigError(
                "io_direct requires io_backend='uring' or 'gds-sim'"
            )
        if self.durable and self.target not in ("ssd", "tiered"):
            raise EngineConfigError(
                "durable (manifest-journaled) stores require an ssd/tiered target"
            )
        if self.durable and self.chunk_bytes is None:
            raise EngineConfigError("durable requires chunk_bytes (chunked store)")
        if self.store_roots and self.target not in ("ssd", "tiered"):
            raise EngineConfigError(
                "store_roots (write-leveling) requires an ssd/tiered target"
            )
        if self.store_roots and self.chunk_bytes is None:
            raise EngineConfigError(
                "store_roots (write-leveling) requires chunk_bytes (chunked store)"
            )
        if self.io_deadlines:
            for cls, deadline in self.io_deadlines.items():
                if deadline <= 0:
                    raise EngineConfigError(
                        f"io_deadlines[{cls!r}] must be positive: {deadline}"
                    )
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise EngineConfigError(
                f"hedge_delay_s must be positive: {self.hedge_delay_s}"
            )
        if self.hedge_delay_s is not None and not self.hedge_reads:
            raise EngineConfigError("hedge_delay_s requires hedge_reads")
        if self.io_slow_request_s is not None and self.io_slow_request_s <= 0:
            raise EngineConfigError(
                f"io_slow_request_s must be positive: {self.io_slow_request_s}"
            )
        if self.probe_backoff_s is not None and self.probe_backoff_s <= 0:
            raise EngineConfigError(
                f"probe_backoff_s must be positive: {self.probe_backoff_s}"
            )
        if self.probe_backoff_s is not None and self.target != "tiered":
            raise EngineConfigError(
                "probe_backoff_s (SSD breaker auto-probing) requires the "
                "tiered target"
            )


@dataclass
class PoolBooks:
    """Point-in-time books of the pinned host pool."""

    capacity_bytes: Optional[int]
    used_bytes: int
    high_watermark_bytes: int
    overflow_bytes: int
    used_by_tenant: Dict[str, int] = field(default_factory=dict)


@dataclass
class EnduranceStats:
    """SSD-endurance books of a chunked store (service-mode lifespan).

    The paper's lifespan analysis (Fig. 5, ``bench_fig5_lifespan.py``)
    projects SSD life from write volume; a week-long service needs the
    *live* counterpart: how many bytes the engine is actually pushing,
    how much of that is GC write amplification, and how evenly the
    write-leveling spreads it across store roots.  All fields come
    straight from the chunk store's books plus the engine's uptime.
    """

    bytes_written: int
    dead_bytes: int
    reclaimed_bytes: int
    gc_runs: int
    gc_bytes_rewritten: int
    gc_reclaimed_dead_bytes: int
    root_bytes_written: tuple
    manifest_records_replayed: int
    replay_was_torn: bool
    uptime_s: float

    @property
    def write_rate_bytes_per_day(self) -> float:
        """Lifetime write volume extrapolated to a 24 h day."""
        if self.uptime_s <= 0:
            return 0.0
        return self.bytes_written * 86400.0 / self.uptime_s

    def bytes_per_gb_day(self, capacity_bytes: int) -> float:
        """The lifespan budget: daily write volume per GB of capacity.

        Divide a device's rated DWPD-equivalent budget by this to get
        projected life — the live analogue of the Fig. 5 model.
        """
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive: {capacity_bytes}")
        return self.write_rate_bytes_per_day / (capacity_bytes / 10**9)


@dataclass
class EngineStats:
    """One aggregated, non-destructive snapshot of the whole engine.

    Every field is a detached copy: mutating it (or the engine doing
    more work) affects nothing, and taking the snapshot never drains
    the adaptive controller's completion windows.  Fields that do not
    apply to the configured target stay ``None``/empty (e.g. ``tiers``
    for a pure-SSD engine, ``scheduler`` before any front-end touched
    the lazily-built I/O plane).
    """

    target: str
    dataplane: DataPlaneStats
    scheduler: Optional[SchedulerStats] = None
    channels: Dict[str, Dict[str, ChannelWindow]] = field(default_factory=dict)
    lane_health: Dict[str, LaneHealthSnapshot] = field(default_factory=dict)
    tenants: Dict[str, TenantStats] = field(default_factory=dict)
    pool: Optional[PoolBooks] = None
    tiers: Optional["TierStats"] = None
    arena: Optional[ArenaStats] = None
    #: Which lane execution backend the I/O plane runs.
    io_backend: str = "thread"
    #: Per-lane backend books (syscalls, batched requests, reap lag,
    #: GDS-sim bounce routing) — empty until the lazy scheduler exists.
    io_lanes: Dict[str, IOLaneStats] = field(default_factory=dict)
    #: SSD endurance / lifespan books — ``None`` unless the engine runs
    #: a chunked store (the only backend with wear-relevant batching).
    endurance: Optional[EnduranceStats] = None


class Engine:
    """The assembled offload engine: data plane + I/O plane + policy.

    Use :func:`build_engine` rather than constructing directly.  The
    scheduler is built lazily on first access, so callers that only
    need the synchronous offloader (the ``make_offloader()`` shim, unit
    fixtures) never spawn worker threads.
    """

    def __init__(self, config: EngineConfig) -> None:
        config.validate()
        self.config = config
        self.policy = config.policy if config.policy is not None else OffloadPolicy()
        self.tenants = config.tenants
        self.offloader = self._build_offloader()
        self._scheduler: Optional[IOScheduler] = None
        self._scheduler_lock = threading.Lock()
        self._caches: List["TensorCache"] = []
        self._started_at = time.monotonic()
        self._closed = False

    # ------------------------------------------------------------ construction
    def _build_offloader(self) -> Offloader:
        from repro.core.tiered import TieredOffloader  # circular-import guard

        cfg = self.config
        if cfg.target == "ssd":
            return SSDOffloader(
                cfg.store_dir,
                throttle_bytes_per_s=cfg.throttle_bytes_per_s,
                array=cfg.array,
                chunk_bytes=cfg.chunk_bytes,
                legacy_copies=cfg.legacy_dataplane,
                durable=cfg.durable,
                store_roots=cfg.store_roots,
            )
        if cfg.target == "cpu":
            return CPUOffloader(
                PinnedMemoryPool(cfg.cpu_pool_bytes),
                throttle_bytes_per_s=cfg.throttle_bytes_per_s,
                legacy_copies=cfg.legacy_dataplane,
            )
        return TieredOffloader(
            cfg.store_dir,
            cpu_pool_bytes=cfg.cpu_pool_bytes,
            chunk_bytes=cfg.chunk_bytes,
            policy=self.policy,
            promote_on_load=cfg.promote_on_load,
            throttle_bytes_per_s=cfg.throttle_bytes_per_s,
            array=cfg.array,
            legacy_dataplane=cfg.legacy_dataplane,
            durable=cfg.durable,
            store_roots=cfg.store_roots,
            probe_backoff_s=cfg.probe_backoff_s,
        )

    @property
    def scheduler(self) -> IOScheduler:
        """The shared priority scheduler, built (and wired to the
        offloader's demotion path) on first access."""
        with self._scheduler_lock:
            if self._scheduler is None:
                cfg = self.config
                kwargs: Dict[str, Any] = {}
                if cfg.coalesce_bytes is not None:
                    kwargs["coalesce_bytes"] = cfg.coalesce_bytes
                if cfg.max_retries is not None:
                    kwargs["max_retries"] = cfg.max_retries
                if cfg.retry_backoff_s is not None:
                    kwargs["retry_backoff_s"] = cfg.retry_backoff_s
                if cfg.io_deadlines:
                    kwargs["deadlines"] = dict(cfg.io_deadlines)
                if cfg.hedge_reads:
                    kwargs["hedge"] = True
                    kwargs["hedge_delay_s"] = cfg.hedge_delay_s
                if cfg.io_slow_request_s is not None:
                    kwargs["slow_request_s"] = cfg.io_slow_request_s
                if cfg.io_backend == "uring":
                    kwargs["backend"] = UringBackend(direct=cfg.io_direct)
                elif cfg.io_backend == "gds-sim":
                    # Share the offloader's registry so pack-time
                    # registrations are what the lane routes on.
                    kwargs["backend"] = GDSSimBackend(
                        registry=self._gds_registry(), direct=cfg.io_direct
                    )
                self._scheduler = IOScheduler(
                    num_store_workers=cfg.num_store_workers,
                    num_load_workers=cfg.num_load_workers,
                    fifo=cfg.fifo_io,
                    tenants=cfg.tenants,
                    **kwargs,
                )
                set_scheduler = getattr(self.offloader, "set_scheduler", None)
                if set_scheduler is not None:
                    set_scheduler(self._scheduler)
            return self._scheduler

    def _gds_registry(self):
        """The offloader's GDS registry (SSD tier's), if it has one."""
        off = self.offloader
        gds = getattr(off, "gds", None)
        if gds is None:
            gds = getattr(getattr(off, "ssd", None), "gds", None)
        return gds

    @property
    def scheduler_started(self) -> bool:
        """True once the lazy I/O plane exists (without creating it)."""
        return self._scheduler is not None

    def cache(self, **overrides: Any) -> "TensorCache":
        """Build a :class:`~repro.core.tensor_cache.TensorCache` on this
        engine — the ``Trainer`` front-end's construction path.

        The cache shares the engine's offloader, policy and scheduler,
        so its records, the KV front-end's blocks and any direct
        submissions all flow through one set of books.
        """
        from repro.core.tensor_cache import TensorCache  # circular-import guard

        kwargs: Dict[str, Any] = {
            "policy": self.policy,
            "scheduler": self.scheduler,
            "prefetch_window": self.config.prefetch_window,
        }
        kwargs.update(overrides)
        cache = TensorCache(self.offloader, **kwargs)
        self._caches.append(cache)
        return cache

    # ------------------------------------------------------------------- stats
    def stats(self) -> EngineStats:
        """The one aggregated snapshot (see :class:`EngineStats`)."""
        off = self.offloader
        snap = EngineStats(
            target=self.config.target,
            dataplane=off.dataplane_stats(),
            io_backend=self.config.io_backend,
        )
        sched = self._scheduler
        if sched is not None:
            snap.scheduler = sched.stats_snapshot()
            snap.channels = sched.peek_completion_stats()
            snap.lane_health = sched.health.snapshot()
            snap.tenants = sched.tenants.stats_snapshot()
            snap.io_lanes = sched.backend_stats_snapshot()
            # GDS-sim bounce routing is data-plane telemetry: fold the
            # backend's books into the aggregated copy map.
            for lane_stats in snap.io_lanes.values():
                snap.dataplane.bounce_copies += lane_stats.bounce_copies
                snap.dataplane.bounce_copies_skipped += (
                    lane_stats.bounce_copies_skipped
                )
        elif self.tenants is not None:
            snap.tenants = self.tenants.stats_snapshot()
        pool = getattr(off, "pool", None)
        if pool is not None:
            snap.pool = PoolBooks(
                capacity_bytes=pool.capacity_bytes,
                used_bytes=pool.used,
                high_watermark_bytes=pool.high_watermark,
                overflow_bytes=pool.overflow_bytes,
                used_by_tenant=pool.used_by_tenant(),
            )
        tier_snapshot = getattr(off, "stats_snapshot", None)
        if tier_snapshot is not None:
            snap.tiers = tier_snapshot()
        arena = getattr(off, "arena", None)
        if arena is not None:
            snap.arena = arena.stats()
        store = self.chunk_store
        if store is not None:
            snap.endurance = EnduranceStats(
                bytes_written=store.bytes_written,
                dead_bytes=store.dead_bytes,
                reclaimed_bytes=store.reclaimed_bytes,
                gc_runs=store.gc_runs,
                gc_bytes_rewritten=store.gc_bytes_rewritten,
                gc_reclaimed_dead_bytes=store.gc_reclaimed_dead_bytes,
                root_bytes_written=store.root_bytes_written,
                manifest_records_replayed=store.manifest_records_replayed,
                replay_was_torn=store.replay_was_torn,
                uptime_s=time.monotonic() - self._started_at,
            )
        return snap

    @property
    def chunk_store(self):
        """The engine's :class:`~repro.io.chunkstore.ChunkedTensorStore`
        (ssd or tiered target with ``chunk_bytes``), else ``None``."""
        off = self.offloader
        store = getattr(off, "file_store", None)
        if store is None:
            store = getattr(getattr(off, "ssd", None), "file_store", None)
        if store is not None and hasattr(store, "gc_runs"):
            return store
        return None

    # Thin delegating accessors: the historic per-object entry points,
    # now all views over the same stats() aggregation.
    def dataplane_stats(self) -> DataPlaneStats:
        return self.stats().dataplane

    def tenant_stats(self) -> Dict[str, TenantStats]:
        return self.stats().tenants

    def pool_stats(self) -> Optional[PoolBooks]:
        return self.stats().pool

    def channel_windows(self) -> Dict[str, Dict[str, ChannelWindow]]:
        return self.stats().channels

    # ---------------------------------------------------------------- teardown
    def shutdown(self) -> None:
        """Stop the I/O plane (if started) and release the data plane.

        Idempotent and leak-free: scheduler workers and the uring
        reaper are joined (not abandoned as daemons), cached
        descriptors are closed, and a durable store keeps its files +
        manifest while an ephemeral one is cleared.  A 20×-restart
        regression test holds this to a thread/FD baseline.
        """
        with self._scheduler_lock:
            sched, self._scheduler = self._scheduler, None
            if self._closed and sched is None:
                return
            self._closed = True
        if sched is not None:
            sched.shutdown()
        self.offloader.shutdown()

    #: PEP 3116-style alias so engines read like other closeable resources.
    close = shutdown

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


def build_engine(config: Optional[EngineConfig] = None, **overrides: Any) -> Engine:
    """Build an :class:`Engine` from an :class:`EngineConfig`.

    The single construction path shared by the ``Trainer`` front-end
    (via :meth:`Engine.cache`), the KV paging server
    (:class:`repro.serve.KVBlockPool`) and the CLI.  Keyword overrides
    are a convenience for the common "default config plus a couple of
    fields" call — ``build_engine(target="ssd", store_dir=d)`` —
    applied on a copy, so a shared config object is never mutated.
    """
    from dataclasses import replace

    if config is None:
        config = EngineConfig(**overrides)
    elif overrides:
        config = replace(config, **overrides)
    return Engine(config)
