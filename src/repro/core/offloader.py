"""Offloaders: the transfer backends of the tensor cache (Fig. 3).

Each offloader "encapsulates the logic to transfer CUDA tensors to and
from a target":

- :class:`SSDOffloader` — the primary target.  Persists tensors through a
  :class:`~repro.io.filestore.TensorFileStore` (real file I/O standing in
  for kvikio/GDS) and registers buffers with the
  :class:`~repro.io.gds.GDSRegistry` the way the CUDA-malloc hook library
  does.
- :class:`CPUOffloader` — host-memory target backed by a pre-allocated
  pinned pool whose size is fixed after profiling the first training step
  (Sec. III-A; the paper keeps it for future work on remote storage).
- :class:`~repro.core.tiered.TieredOffloader` — composes both into a
  capacity-aware GPU -> pinned-CPU -> SSD hierarchy (see
  :mod:`repro.core.tiered`).

All expose the same API: synchronous ``store``/``load`` primitives that
the cache wraps in typed :class:`~repro.io.scheduler.IORequest`\\ s and
runs on the :class:`~repro.io.scheduler.IOScheduler`'s per-tier lanes
(``store_lane``/``load_lane`` pick the lane), and a ``release`` that
reclaims the backing space once the cache drops the record.
:func:`make_offloader` builds any of them from a config/CLI-style
target string.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.ids import TensorID
from repro.core.policy import Tier
from repro.io.buffers import (
    BufferArena,
    BufferLease,
    CopyCounter,
    DataPlaneStats,
    owned_copy,
)
from repro.io.chunkstore import ChunkedTensorStore
from repro.io.filestore import TensorFileStore
from repro.io.gds import GDSRegistry
from repro.io.tenancy import current_tenant
from repro.tensor.tensor import Tensor


class Offloader:
    """Abstract transfer backend."""

    #: Tier reported for stored tensors; single-target backends are static,
    #: the tiered offloader overrides :meth:`tier_of` per tensor.
    default_tier: Tier = Tier.SSD

    def tier_of(self, tid: TensorID) -> Tier:
        """Which tier holds ``tid`` after a completed store."""
        return self.default_tier

    def store_lane(self, tid: TensorID, nbytes: int) -> str:
        """Scheduler lane a store of ``nbytes`` should queue on.

        The cache builds typed :class:`~repro.io.scheduler.IORequest`\\ s
        and asks the backend which tier's lane will absorb the traffic;
        single-target backends answer with their static tier, the tiered
        offloader predicts placement from the policy.
        """
        return "cpu" if self.default_tier is Tier.CPU else "ssd"

    def load_lane(self, tid: TensorID) -> str:
        """Scheduler lane a load of ``tid`` should queue on (by the tier
        currently holding the tensor)."""
        return "cpu" if self.tier_of(tid) is Tier.CPU else "ssd"

    def store(self, tid: TensorID, data: np.ndarray) -> None:
        """Synchronously persist ``data`` under ``tid`` (runs on a pool)."""
        raise NotImplementedError

    def load(self, tid: TensorID, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Synchronously read the tensor back (runs on a pool)."""
        raise NotImplementedError

    def location(self, tid: TensorID) -> str:
        """Human-readable location (the record's "file path" column, Fig. 4)."""
        raise NotImplementedError

    def release(self, tid: TensorID) -> None:
        """Reclaim the backing space of one tensor (idempotent).

        The default covers backends that expose a ``file_store`` (delete
        the file / decrement the chunk refcount) or an ``evict`` method
        (drop the host buffer), so legacy backends work unchanged.
        """
        file_store = getattr(self, "file_store", None)
        if file_store is not None:
            file_store.delete(tid.filename())
        evict = getattr(self, "evict", None)
        if evict is not None:
            evict(tid)

    def shutdown(self) -> None:
        """Release backend resources (idempotent)."""

    def dataplane_stats(self) -> DataPlaneStats:
        """Copy-map telemetry aggregated across this backend's parts.

        Duck-typed: folds in the ``copy_stats`` counters of the backend
        itself and of its ``file_store`` (if any), plus the ``arena``'s
        lease accounting (if any).  Composite backends override to merge
        their tiers.
        """
        stats = DataPlaneStats()
        store_counter = getattr(getattr(self, "file_store", None), "copy_stats", None)
        if store_counter is not None:
            stats.add_counter(store_counter.snapshot())
        own_counter = getattr(self, "copy_stats", None)
        if own_counter is not None:
            stats.add_counter(own_counter.snapshot())
        arena = getattr(self, "arena", None)
        if arena is not None:
            stats.add_arena(arena.stats())
        return stats


class SSDOffloader(Offloader):
    """NVMe-SSD-targeting offloader via the file store.

    Args:
        store_dir: directory of the RAID0 array mount (e.g. ``/mnt/md1``).
        throttle_bytes_per_s: optional bandwidth cap for tests.
        array: SSD wear-model to charge with traffic.
        gds: registry emulating the CUDA-malloc-hook GDS registration.
        chunk_bytes: if set, back the offloader with a
            :class:`~repro.io.chunkstore.ChunkedTensorStore` of this chunk
            size — small activations coalesce into one sequential write
            per chunk instead of one file per tensor.
        legacy_copies: restore the store's pre-streaming copy map (the
            ``bench_dataplane.py`` A/B baseline).
        durable: journal the chunk store's index to a manifest replayed
            on reopen (service-mode crash recovery; requires
            ``chunk_bytes``).
        store_roots: extra store directories for write-leveling
            (chunked store only).
    """

    def __init__(
        self,
        store_dir,
        throttle_bytes_per_s: Optional[float] = None,
        array=None,
        gds: Optional[GDSRegistry] = None,
        chunk_bytes: Optional[int] = None,
        legacy_copies: bool = False,
        durable: bool = False,
        store_roots=None,
    ) -> None:
        self.file_store: Union[TensorFileStore, ChunkedTensorStore]
        if chunk_bytes is not None:
            self.file_store = ChunkedTensorStore(
                store_dir,
                chunk_bytes=chunk_bytes,
                throttle_bytes_per_s=throttle_bytes_per_s,
                array=array,
                legacy_copies=legacy_copies,
                durable=durable,
                roots=store_roots,
            )
        else:
            if durable:
                raise ValueError("durable SSD offload requires chunk_bytes")
            if store_roots:
                raise ValueError("store_roots (write-leveling) requires chunk_bytes")
            self.file_store = TensorFileStore(
                store_dir,
                throttle_bytes_per_s=throttle_bytes_per_s,
                array=array,
                legacy_copies=legacy_copies,
            )
        self.gds = gds if gds is not None else GDSRegistry()

    def register_tensor(self, tensor: Tensor) -> None:
        """Register the tensor's buffer for GDS, as the malloc hook would."""
        self.gds.register(tensor.untyped_storage())

    def store(self, tid: TensorID, data: np.ndarray) -> None:
        self.file_store.write(tid.filename(), data)

    def load(self, tid: TensorID, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        return self.file_store.read(tid.filename(), shape, dtype)

    def location(self, tid: TensorID) -> str:
        return str(self.file_store.path_for(tid.filename()))

    def shutdown(self) -> None:
        # A durable (service-mode) store must survive the engine: close
        # flushes and keeps the files + manifest for the next replay.
        # Ephemeral stores keep the original leave-nothing-behind clear.
        if getattr(self.file_store, "persistent", False):
            self.file_store.close()
        else:
            self.file_store.clear()


class PinnedMemoryPool:
    """A fixed-capacity host-pinned buffer pool.

    The paper sizes the pool by profiling the first training step; the
    cache calls :meth:`fit_to_high_watermark` after step 0.  Exceeding the
    capacity after sizing raises, surfacing the profiling assumption.
    """

    def __init__(self, capacity_bytes: Optional[int] = None) -> None:
        self.capacity_bytes = capacity_bytes
        #: Degraded-mode escape hatch: with the SSD tier dead, refusing a
        #: pool allocation would fail the training step to protect a
        #: capacity model whose spill target no longer exists.  The
        #: tiered offloader flips this during failover — correctness over
        #: the capacity model — and ``overflow_bytes`` records the debt.
        self.overflow_allowed = False
        self._lock = threading.Lock()
        self._used = 0
        self._high_watermark = 0
        #: Live bytes per owning tenant; zeroed keys are dropped, so a
        #: fully-released pool reads ``{}`` tenant by tenant (the exact
        #: per-tenant reconciliation surface of the isolation tests).
        self._used_by: Dict[str, int] = {}

    def alloc(self, nbytes: int, tenant: Optional[str] = None) -> None:
        owner = tenant if tenant is not None else current_tenant()
        with self._lock:
            new_used = self._used + nbytes
            if (
                self.capacity_bytes is not None
                and new_used > self.capacity_bytes
                and not self.overflow_allowed
            ):
                raise MemoryError(
                    f"pinned pool exhausted: {new_used} > {self.capacity_bytes} bytes"
                )
            self._used = new_used
            self._used_by[owner] = self._used_by.get(owner, 0) + nbytes
            self._high_watermark = max(self._high_watermark, new_used)

    @property
    def overflow_bytes(self) -> int:
        """Bytes currently allocated beyond capacity (degraded mode only)."""
        with self._lock:
            if self.capacity_bytes is None:
                return 0
            return max(0, self._used - self.capacity_bytes)

    def free(self, nbytes: int, tenant: Optional[str] = None) -> None:
        owner = tenant if tenant is not None else current_tenant()
        with self._lock:
            if nbytes > self._used:
                raise ValueError("freeing more pinned memory than allocated")
            owned = self._used_by.get(owner, 0)
            if nbytes > owned:
                raise ValueError(
                    f"tenant {owner!r} freeing {nbytes} pinned bytes but owns {owned}"
                )
            self._used -= nbytes
            remaining = owned - nbytes
            if remaining > 0:
                self._used_by[owner] = remaining
            else:
                del self._used_by[owner]

    def used_by(self, tenant: str) -> int:
        """Live pinned bytes currently charged to one tenant."""
        with self._lock:
            return self._used_by.get(tenant, 0)

    def used_by_tenant(self) -> Dict[str, int]:
        """Snapshot of live bytes per tenant (empty when fully released)."""
        with self._lock:
            return dict(self._used_by)

    @property
    def used(self) -> int:
        with self._lock:
            return self._used

    @property
    def high_watermark(self) -> int:
        with self._lock:
            return self._high_watermark

    def fit_to_high_watermark(self, slack: float = 1.1) -> int:
        """Fix capacity to the profiled peak (plus slack); returns it."""
        with self._lock:
            self.capacity_bytes = int(self._high_watermark * slack)
            return self.capacity_bytes


class CPUOffloader(Offloader):
    """Host-memory offloader backed by the pinned pool.

    Stores copy into **leased arena buffers** (``np.copyto`` into a
    reused, already-faulted allocation) instead of a fresh
    ``np.array(copy=True)`` per tensor; the lease lives exactly as long
    as the resident buffer (released on evict/overwrite/shutdown, or
    transferred wholesale to a demotion via :meth:`take` /
    :meth:`adopt`).  ``use_arena=False`` (or ``legacy_copies=True``)
    restores the per-store allocation as the A/B baseline.

    Args:
        pool: pinned-pool capacity accounting.
        throttle_bytes_per_s: optional pacing of transfers, modelling the
            PCIe link to host memory the way the file store's throttle
            models SSD bandwidth (a local memcpy is otherwise instant,
            which no real GPU->host copy is).
        arena: the buffer pool to lease from; by default a private
            :class:`~repro.io.buffers.BufferArena` whose free-list
            retention is capped by this pool's (live) capacity.
        use_arena: disable pooling entirely (fresh allocation per store).
        legacy_copies: alias for ``use_arena=False`` matching the file
            stores' flag, so ``make_offloader(legacy_dataplane=True)``
            reads uniformly.
    """

    default_tier = Tier.CPU

    def __init__(
        self,
        pool: Optional[PinnedMemoryPool] = None,
        throttle_bytes_per_s: Optional[float] = None,
        arena: Optional[BufferArena] = None,
        use_arena: bool = True,
        legacy_copies: bool = False,
    ) -> None:
        if throttle_bytes_per_s is not None and throttle_bytes_per_s <= 0:
            raise ValueError(f"throttle must be positive: {throttle_bytes_per_s}")
        self.pool = pool if pool is not None else PinnedMemoryPool()
        self.throttle_bytes_per_s = throttle_bytes_per_s
        if legacy_copies:
            use_arena = False
        self.arena: Optional[BufferArena] = None
        if use_arena:
            self.arena = arena if arena is not None else BufferArena(pool=self.pool)
        self.copy_stats = CopyCounter()
        self._lock = threading.Lock()
        self._buffers: Dict[TensorID, np.ndarray] = {}
        self._leases: Dict[TensorID, BufferLease] = {}
        #: Owning tenant per resident tensor — pool bytes must be freed
        #: against the tenant they were charged to, even when the free
        #: happens on another tenant's thread (evict/demote/shutdown).
        self._owners: Dict[TensorID, str] = {}

    def _throttle(self, nbytes: int, start: float) -> None:
        if self.throttle_bytes_per_s is None:
            return
        required = nbytes / self.throttle_bytes_per_s
        elapsed = time.monotonic() - start
        if required > elapsed:
            time.sleep(required - elapsed)

    def store(self, tid: TensorID, data: np.ndarray) -> None:
        start = time.monotonic()
        src = np.asarray(data)
        owner = current_tenant()
        # Capacity first: a refused allocation must not leak a lease.
        self.pool.alloc(src.nbytes, tenant=owner)
        lease: Optional[BufferLease] = None
        try:
            if self.arena is not None:
                lease = self.arena.lease(src.nbytes, tenant=owner)
                copy = lease.view(src.shape, src.dtype)
                np.copyto(copy, src)
            else:
                copy = np.array(src, copy=True)
            self.copy_stats.count_copy(src.nbytes)
        except BaseException:
            self.pool.free(src.nbytes, tenant=owner)
            if lease is not None:  # a failed view/copy must not leak it
                lease.release()
            raise
        self.adopt(tid, copy, lease, _alloc=False, tenant=owner)
        self._throttle(copy.nbytes, start)

    def adopt(
        self,
        tid: TensorID,
        buf: np.ndarray,
        lease: Optional[BufferLease] = None,
        _alloc: bool = True,
        tenant: Optional[str] = None,
    ) -> None:
        """Take ownership of an already-host-resident buffer (zero copy).

        The tier-failover and demotion-cancellation paths hand a parked
        buffer (and its arena lease) back without re-copying it; the
        pool is charged unless the caller already did (``_alloc=False``).
        The owning tenant defaults to the lease's owner (failover hands
        back the original tenant's lease), then the calling scope.
        """
        owner = tenant
        if owner is None:
            owner = lease.tenant if lease is not None else current_tenant()
        if _alloc:
            self.pool.alloc(buf.nbytes, tenant=owner)
        with self._lock:
            old = self._buffers.get(tid)
            old_lease = self._leases.pop(tid, None)
            old_owner = self._owners.get(tid)
            self._buffers[tid] = buf
            self._owners[tid] = owner
            if lease is not None:
                self._leases[tid] = lease
        if old is not None:
            self.pool.free(old.nbytes, tenant=old_owner)
        if old_lease is not None:
            old_lease.release()

    def owner_of(self, tid: TensorID) -> Optional[str]:
        """The tenant charged for ``tid``'s pool bytes (None if absent)."""
        with self._lock:
            return self._owners.get(tid)

    def load(self, tid: TensorID, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        start = time.monotonic()
        if self.arena is None:
            # Legacy private-array buffers are immune to recycling (the
            # reader's reference keeps them alive and unshared), so the
            # copy can run unlocked as it always did.
            with self._lock:
                buf = self._buffers.get(tid)
            if buf is None:
                raise KeyError(f"tensor {tid} not in host pool")
            data = owned_copy(buf.reshape(shape), dtype, self.copy_stats)
        else:
            with self._lock:
                buf = self._buffers.get(tid)
                if buf is None:
                    raise KeyError(f"tensor {tid} not in host pool")
                # The single ownership copy at the GPU-reinstate boundary
                # — a plain copy when the dtype already matches, one
                # conversion copy otherwise (never astype *and* copy).
                # Copied under the lock: an arena-backed buffer whose
                # lease a concurrent evict/overwrite releases may be
                # recycled by the next store, so reading it unlocked
                # could observe torn bytes.
                data = owned_copy(buf.reshape(shape), dtype, self.copy_stats)
        self._throttle(data.nbytes, start)
        return data

    def peek(self, tid: TensorID) -> Optional[np.ndarray]:
        """The stored buffer itself (no copy) — used by tier demotion,
        which hands the bytes straight to the SSD store."""
        with self._lock:
            return self._buffers.get(tid)

    def take(
        self, tid: TensorID
    ) -> Optional[Tuple[np.ndarray, Optional[BufferLease]]]:
        """Remove ``tid`` and transfer buffer *and lease* to the caller.

        Unlike :meth:`evict`, the arena lease is NOT released: an async
        demotion parks the buffer until its SSD write lands, and the
        arena must not hand that memory to anyone else meanwhile.  The
        caller releases the lease (write landed / cancelled) or adopts
        it back (failover reinstate).
        """
        with self._lock:
            buf = self._buffers.pop(tid, None)
            lease = self._leases.pop(tid, None)
            owner = self._owners.pop(tid, None)
        if buf is None:
            return None
        self.pool.free(buf.nbytes, tenant=owner)
        return buf, lease

    def evict(self, tid: TensorID) -> None:
        with self._lock:
            buf = self._buffers.pop(tid, None)
            lease = self._leases.pop(tid, None)
            owner = self._owners.pop(tid, None)
        if buf is not None:
            self.pool.free(buf.nbytes, tenant=owner)
        if lease is not None:
            lease.release()

    def location(self, tid: TensorID) -> str:
        return f"pinned://{tid.filename()}"

    def contains(self, tid: TensorID) -> bool:
        with self._lock:
            return tid in self._buffers

    def shutdown(self) -> None:
        with self._lock:
            buffers = [
                (buf, self._owners.get(tid)) for tid, buf in self._buffers.items()
            ]
            leases = list(self._leases.values())
            self._buffers.clear()
            self._leases.clear()
            self._owners.clear()
        for buf, owner in buffers:
            self.pool.free(buf.nbytes, tenant=owner)
        for lease in leases:
            lease.release()


#: Target names accepted by :func:`make_offloader` (the CLI/config axis).
OFFLOAD_TARGETS = ("ssd", "cpu", "tiered")


def make_offloader(
    target: str,
    store_dir=None,
    cpu_pool_bytes: Optional[int] = None,
    chunk_bytes: Optional[int] = None,
    throttle_bytes_per_s: Optional[float] = None,
    array=None,
    policy=None,
    legacy_dataplane: bool = False,
) -> Offloader:
    """Build a transfer backend from a config/CLI target string.

    Args:
        target: ``"ssd"`` (per-tensor or chunked files), ``"cpu"``
            (pinned host pool), or ``"tiered"`` (GPU -> CPU -> SSD
            hierarchy, see :class:`~repro.core.tiered.TieredOffloader`).
        store_dir: backing directory; required for ``ssd``/``tiered``.
        cpu_pool_bytes: pinned-pool capacity (``cpu``/``tiered``);
            ``None`` means unbounded for ``cpu`` and is rejected for
            ``tiered`` (a tier needs a boundary to spill over).
        chunk_bytes: enable chunk coalescing on the SSD path.
        policy: the :class:`~repro.core.policy.OffloadPolicy` governing
            tier placement (``tiered`` only).  Pass the same policy you
            hand to :class:`~repro.core.tensor_cache.TensorCache` so
            knobs like ``cpu_tier_max_tensor_bytes`` take effect.
        legacy_dataplane: run the pre-PR5 copy map (fresh allocation per
            CPU store, ``tobytes``/slurp file I/O) — the A/B baseline of
            ``repro dataplane`` and ``bench_dataplane.py``.

    Since the engine-facade redesign this is a thin shim over
    :func:`repro.core.engine.build_engine` — the validation rules and
    resulting backends are identical (regression-tested), the engine
    handle is simply discarded.  New code should prefer
    ``build_engine(EngineConfig(...))`` and keep the handle for the
    shared scheduler and the aggregated ``engine.stats()`` surface.
    """
    from repro.core.engine import EngineConfig, build_engine  # circular-import guard

    return build_engine(
        EngineConfig(
            target=target,
            store_dir=store_dir,
            cpu_pool_bytes=cpu_pool_bytes,
            chunk_bytes=chunk_bytes,
            throttle_bytes_per_s=throttle_bytes_per_s,
            array=array,
            policy=policy,
            legacy_dataplane=legacy_dataplane,
        )
    ).offloader
