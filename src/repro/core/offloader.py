"""Offloaders: the transfer backends of the tensor cache (Fig. 3).

Each offloader "encapsulates the logic to transfer CUDA tensors to and
from a target":

- :class:`SSDOffloader` — the primary target.  Persists tensors through a
  :class:`~repro.io.filestore.TensorFileStore` (real file I/O standing in
  for kvikio/GDS) and registers buffers with the
  :class:`~repro.io.gds.GDSRegistry` the way the CUDA-malloc hook library
  does.
- :class:`CPUOffloader` — host-memory target backed by a pre-allocated
  pinned pool whose size is fixed after profiling the first training step
  (Sec. III-A; the paper keeps it for future work on remote storage).

Both expose the same API: an async ``store`` returning an
:class:`~repro.io.aio.IOJob` and a synchronous ``load`` executed on the
load pool by the cache.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.ids import TensorID
from repro.io.aio import AsyncIOPool, IOJob
from repro.io.filestore import TensorFileStore
from repro.io.gds import GDSRegistry
from repro.tensor.tensor import Tensor


class Offloader:
    """Abstract transfer backend."""

    def store(self, tid: TensorID, data: np.ndarray) -> None:
        """Synchronously persist ``data`` under ``tid`` (runs on a pool)."""
        raise NotImplementedError

    def load(self, tid: TensorID, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Synchronously read the tensor back (runs on a pool)."""
        raise NotImplementedError

    def location(self, tid: TensorID) -> str:
        """Human-readable location (the record's "file path" column, Fig. 4)."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release backend resources (idempotent)."""


class SSDOffloader(Offloader):
    """NVMe-SSD-targeting offloader via the file store.

    Args:
        store_dir: directory of the RAID0 array mount (e.g. ``/mnt/md1``).
        throttle_bytes_per_s: optional bandwidth cap for tests.
        array: SSD wear-model to charge with traffic.
        gds: registry emulating the CUDA-malloc-hook GDS registration.
    """

    def __init__(
        self,
        store_dir,
        throttle_bytes_per_s: Optional[float] = None,
        array=None,
        gds: Optional[GDSRegistry] = None,
    ) -> None:
        self.file_store = TensorFileStore(
            store_dir, throttle_bytes_per_s=throttle_bytes_per_s, array=array
        )
        self.gds = gds if gds is not None else GDSRegistry()

    def register_tensor(self, tensor: Tensor) -> None:
        """Register the tensor's buffer for GDS, as the malloc hook would."""
        self.gds.register(tensor.untyped_storage())

    def store(self, tid: TensorID, data: np.ndarray) -> None:
        self.file_store.write(tid.filename(), data)

    def load(self, tid: TensorID, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        return self.file_store.read(tid.filename(), shape, dtype)

    def location(self, tid: TensorID) -> str:
        return str(self.file_store.path_for(tid.filename()))

    def shutdown(self) -> None:
        self.file_store.clear()


class PinnedMemoryPool:
    """A fixed-capacity host-pinned buffer pool.

    The paper sizes the pool by profiling the first training step; the
    cache calls :meth:`fit_to_high_watermark` after step 0.  Exceeding the
    capacity after sizing raises, surfacing the profiling assumption.
    """

    def __init__(self, capacity_bytes: Optional[int] = None) -> None:
        self.capacity_bytes = capacity_bytes
        self._lock = threading.Lock()
        self._used = 0
        self._high_watermark = 0

    def alloc(self, nbytes: int) -> None:
        with self._lock:
            new_used = self._used + nbytes
            if self.capacity_bytes is not None and new_used > self.capacity_bytes:
                raise MemoryError(
                    f"pinned pool exhausted: {new_used} > {self.capacity_bytes} bytes"
                )
            self._used = new_used
            self._high_watermark = max(self._high_watermark, new_used)

    def free(self, nbytes: int) -> None:
        with self._lock:
            if nbytes > self._used:
                raise ValueError("freeing more pinned memory than allocated")
            self._used -= nbytes

    @property
    def used(self) -> int:
        with self._lock:
            return self._used

    @property
    def high_watermark(self) -> int:
        with self._lock:
            return self._high_watermark

    def fit_to_high_watermark(self, slack: float = 1.1) -> int:
        """Fix capacity to the profiled peak (plus slack); returns it."""
        with self._lock:
            self.capacity_bytes = int(self._high_watermark * slack)
            return self.capacity_bytes


class CPUOffloader(Offloader):
    """Host-memory offloader backed by the pinned pool."""

    def __init__(self, pool: Optional[PinnedMemoryPool] = None) -> None:
        self.pool = pool if pool is not None else PinnedMemoryPool()
        self._lock = threading.Lock()
        self._buffers: Dict[TensorID, np.ndarray] = {}

    def store(self, tid: TensorID, data: np.ndarray) -> None:
        copy = np.array(data, copy=True)
        self.pool.alloc(copy.nbytes)
        with self._lock:
            old = self._buffers.get(tid)
            self._buffers[tid] = copy
        if old is not None:
            self.pool.free(old.nbytes)

    def load(self, tid: TensorID, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        with self._lock:
            buf = self._buffers.get(tid)
        if buf is None:
            raise KeyError(f"tensor {tid} not in host pool")
        return buf.reshape(shape).astype(dtype, copy=True)

    def evict(self, tid: TensorID) -> None:
        with self._lock:
            buf = self._buffers.pop(tid, None)
        if buf is not None:
            self.pool.free(buf.nbytes)

    def location(self, tid: TensorID) -> str:
        return f"pinned://{tid.filename()}"

    def shutdown(self) -> None:
        with self._lock:
            buffers = list(self._buffers.values())
            self._buffers.clear()
        for buf in buffers:
            self.pool.free(buf.nbytes)
