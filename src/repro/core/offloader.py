"""Offloaders: the transfer backends of the tensor cache (Fig. 3).

Each offloader "encapsulates the logic to transfer CUDA tensors to and
from a target":

- :class:`SSDOffloader` — the primary target.  Persists tensors through a
  :class:`~repro.io.filestore.TensorFileStore` (real file I/O standing in
  for kvikio/GDS) and registers buffers with the
  :class:`~repro.io.gds.GDSRegistry` the way the CUDA-malloc hook library
  does.
- :class:`CPUOffloader` — host-memory target backed by a pre-allocated
  pinned pool whose size is fixed after profiling the first training step
  (Sec. III-A; the paper keeps it for future work on remote storage).
- :class:`~repro.core.tiered.TieredOffloader` — composes both into a
  capacity-aware GPU -> pinned-CPU -> SSD hierarchy (see
  :mod:`repro.core.tiered`).

All expose the same API: synchronous ``store``/``load`` primitives that
the cache wraps in typed :class:`~repro.io.scheduler.IORequest`\\ s and
runs on the :class:`~repro.io.scheduler.IOScheduler`'s per-tier lanes
(``store_lane``/``load_lane`` pick the lane), and a ``release`` that
reclaims the backing space once the cache drops the record.
:func:`make_offloader` builds any of them from a config/CLI-style
target string.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.ids import TensorID
from repro.core.policy import Tier
from repro.io.chunkstore import ChunkedTensorStore
from repro.io.filestore import TensorFileStore
from repro.io.gds import GDSRegistry
from repro.tensor.tensor import Tensor


class Offloader:
    """Abstract transfer backend."""

    #: Tier reported for stored tensors; single-target backends are static,
    #: the tiered offloader overrides :meth:`tier_of` per tensor.
    default_tier: Tier = Tier.SSD

    def tier_of(self, tid: TensorID) -> Tier:
        """Which tier holds ``tid`` after a completed store."""
        return self.default_tier

    def store_lane(self, tid: TensorID, nbytes: int) -> str:
        """Scheduler lane a store of ``nbytes`` should queue on.

        The cache builds typed :class:`~repro.io.scheduler.IORequest`\\ s
        and asks the backend which tier's lane will absorb the traffic;
        single-target backends answer with their static tier, the tiered
        offloader predicts placement from the policy.
        """
        return "cpu" if self.default_tier is Tier.CPU else "ssd"

    def load_lane(self, tid: TensorID) -> str:
        """Scheduler lane a load of ``tid`` should queue on (by the tier
        currently holding the tensor)."""
        return "cpu" if self.tier_of(tid) is Tier.CPU else "ssd"

    def store(self, tid: TensorID, data: np.ndarray) -> None:
        """Synchronously persist ``data`` under ``tid`` (runs on a pool)."""
        raise NotImplementedError

    def load(self, tid: TensorID, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Synchronously read the tensor back (runs on a pool)."""
        raise NotImplementedError

    def location(self, tid: TensorID) -> str:
        """Human-readable location (the record's "file path" column, Fig. 4)."""
        raise NotImplementedError

    def release(self, tid: TensorID) -> None:
        """Reclaim the backing space of one tensor (idempotent).

        The default covers backends that expose a ``file_store`` (delete
        the file / decrement the chunk refcount) or an ``evict`` method
        (drop the host buffer), so legacy backends work unchanged.
        """
        file_store = getattr(self, "file_store", None)
        if file_store is not None:
            file_store.delete(tid.filename())
        evict = getattr(self, "evict", None)
        if evict is not None:
            evict(tid)

    def shutdown(self) -> None:
        """Release backend resources (idempotent)."""


class SSDOffloader(Offloader):
    """NVMe-SSD-targeting offloader via the file store.

    Args:
        store_dir: directory of the RAID0 array mount (e.g. ``/mnt/md1``).
        throttle_bytes_per_s: optional bandwidth cap for tests.
        array: SSD wear-model to charge with traffic.
        gds: registry emulating the CUDA-malloc-hook GDS registration.
        chunk_bytes: if set, back the offloader with a
            :class:`~repro.io.chunkstore.ChunkedTensorStore` of this chunk
            size — small activations coalesce into one sequential write
            per chunk instead of one file per tensor.
    """

    def __init__(
        self,
        store_dir,
        throttle_bytes_per_s: Optional[float] = None,
        array=None,
        gds: Optional[GDSRegistry] = None,
        chunk_bytes: Optional[int] = None,
    ) -> None:
        self.file_store: Union[TensorFileStore, ChunkedTensorStore]
        if chunk_bytes is not None:
            self.file_store = ChunkedTensorStore(
                store_dir,
                chunk_bytes=chunk_bytes,
                throttle_bytes_per_s=throttle_bytes_per_s,
                array=array,
            )
        else:
            self.file_store = TensorFileStore(
                store_dir, throttle_bytes_per_s=throttle_bytes_per_s, array=array
            )
        self.gds = gds if gds is not None else GDSRegistry()

    def register_tensor(self, tensor: Tensor) -> None:
        """Register the tensor's buffer for GDS, as the malloc hook would."""
        self.gds.register(tensor.untyped_storage())

    def store(self, tid: TensorID, data: np.ndarray) -> None:
        self.file_store.write(tid.filename(), data)

    def load(self, tid: TensorID, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        return self.file_store.read(tid.filename(), shape, dtype)

    def location(self, tid: TensorID) -> str:
        return str(self.file_store.path_for(tid.filename()))

    def shutdown(self) -> None:
        self.file_store.clear()


class PinnedMemoryPool:
    """A fixed-capacity host-pinned buffer pool.

    The paper sizes the pool by profiling the first training step; the
    cache calls :meth:`fit_to_high_watermark` after step 0.  Exceeding the
    capacity after sizing raises, surfacing the profiling assumption.
    """

    def __init__(self, capacity_bytes: Optional[int] = None) -> None:
        self.capacity_bytes = capacity_bytes
        #: Degraded-mode escape hatch: with the SSD tier dead, refusing a
        #: pool allocation would fail the training step to protect a
        #: capacity model whose spill target no longer exists.  The
        #: tiered offloader flips this during failover — correctness over
        #: the capacity model — and ``overflow_bytes`` records the debt.
        self.overflow_allowed = False
        self._lock = threading.Lock()
        self._used = 0
        self._high_watermark = 0

    def alloc(self, nbytes: int) -> None:
        with self._lock:
            new_used = self._used + nbytes
            if (
                self.capacity_bytes is not None
                and new_used > self.capacity_bytes
                and not self.overflow_allowed
            ):
                raise MemoryError(
                    f"pinned pool exhausted: {new_used} > {self.capacity_bytes} bytes"
                )
            self._used = new_used
            self._high_watermark = max(self._high_watermark, new_used)

    @property
    def overflow_bytes(self) -> int:
        """Bytes currently allocated beyond capacity (degraded mode only)."""
        with self._lock:
            if self.capacity_bytes is None:
                return 0
            return max(0, self._used - self.capacity_bytes)

    def free(self, nbytes: int) -> None:
        with self._lock:
            if nbytes > self._used:
                raise ValueError("freeing more pinned memory than allocated")
            self._used -= nbytes

    @property
    def used(self) -> int:
        with self._lock:
            return self._used

    @property
    def high_watermark(self) -> int:
        with self._lock:
            return self._high_watermark

    def fit_to_high_watermark(self, slack: float = 1.1) -> int:
        """Fix capacity to the profiled peak (plus slack); returns it."""
        with self._lock:
            self.capacity_bytes = int(self._high_watermark * slack)
            return self.capacity_bytes


class CPUOffloader(Offloader):
    """Host-memory offloader backed by the pinned pool.

    Args:
        pool: pinned-pool capacity accounting.
        throttle_bytes_per_s: optional pacing of transfers, modelling the
            PCIe link to host memory the way the file store's throttle
            models SSD bandwidth (a local memcpy is otherwise instant,
            which no real GPU->host copy is).
    """

    default_tier = Tier.CPU

    def __init__(
        self,
        pool: Optional[PinnedMemoryPool] = None,
        throttle_bytes_per_s: Optional[float] = None,
    ) -> None:
        if throttle_bytes_per_s is not None and throttle_bytes_per_s <= 0:
            raise ValueError(f"throttle must be positive: {throttle_bytes_per_s}")
        self.pool = pool if pool is not None else PinnedMemoryPool()
        self.throttle_bytes_per_s = throttle_bytes_per_s
        self._lock = threading.Lock()
        self._buffers: Dict[TensorID, np.ndarray] = {}

    def _throttle(self, nbytes: int, start: float) -> None:
        if self.throttle_bytes_per_s is None:
            return
        required = nbytes / self.throttle_bytes_per_s
        elapsed = time.monotonic() - start
        if required > elapsed:
            time.sleep(required - elapsed)

    def store(self, tid: TensorID, data: np.ndarray) -> None:
        start = time.monotonic()
        copy = np.array(data, copy=True)
        self.pool.alloc(copy.nbytes)
        with self._lock:
            old = self._buffers.get(tid)
            self._buffers[tid] = copy
        if old is not None:
            self.pool.free(old.nbytes)
        self._throttle(copy.nbytes, start)

    def load(self, tid: TensorID, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        start = time.monotonic()
        with self._lock:
            buf = self._buffers.get(tid)
        if buf is None:
            raise KeyError(f"tensor {tid} not in host pool")
        data = buf.reshape(shape).astype(dtype, copy=True)
        self._throttle(data.nbytes, start)
        return data

    def peek(self, tid: TensorID) -> Optional[np.ndarray]:
        """The stored buffer itself (no copy) — used by tier demotion,
        which hands the bytes straight to the SSD store."""
        with self._lock:
            return self._buffers.get(tid)

    def evict(self, tid: TensorID) -> None:
        with self._lock:
            buf = self._buffers.pop(tid, None)
        if buf is not None:
            self.pool.free(buf.nbytes)

    def location(self, tid: TensorID) -> str:
        return f"pinned://{tid.filename()}"

    def contains(self, tid: TensorID) -> bool:
        with self._lock:
            return tid in self._buffers

    def shutdown(self) -> None:
        with self._lock:
            buffers = list(self._buffers.values())
            self._buffers.clear()
        for buf in buffers:
            self.pool.free(buf.nbytes)


#: Target names accepted by :func:`make_offloader` (the CLI/config axis).
OFFLOAD_TARGETS = ("ssd", "cpu", "tiered")


def make_offloader(
    target: str,
    store_dir=None,
    cpu_pool_bytes: Optional[int] = None,
    chunk_bytes: Optional[int] = None,
    throttle_bytes_per_s: Optional[float] = None,
    array=None,
    policy=None,
) -> Offloader:
    """Build a transfer backend from a config/CLI target string.

    Args:
        target: ``"ssd"`` (per-tensor or chunked files), ``"cpu"``
            (pinned host pool), or ``"tiered"`` (GPU -> CPU -> SSD
            hierarchy, see :class:`~repro.core.tiered.TieredOffloader`).
        store_dir: backing directory; required for ``ssd``/``tiered``.
        cpu_pool_bytes: pinned-pool capacity (``cpu``/``tiered``);
            ``None`` means unbounded for ``cpu`` and is rejected for
            ``tiered`` (a tier needs a boundary to spill over).
        chunk_bytes: enable chunk coalescing on the SSD path.
        policy: the :class:`~repro.core.policy.OffloadPolicy` governing
            tier placement (``tiered`` only).  Pass the same policy you
            hand to :class:`~repro.core.tensor_cache.TensorCache` so
            knobs like ``cpu_tier_max_tensor_bytes`` take effect.
    """
    from repro.core.tiered import TieredOffloader  # circular-import guard

    # Reject knobs that would be silently inert for the chosen target —
    # an experiment flag that does nothing is worse than an error.
    if target == "cpu" and chunk_bytes is not None:
        raise ValueError("chunk_bytes applies to the ssd/tiered targets, not cpu")
    if target == "ssd" and cpu_pool_bytes is not None:
        raise ValueError("cpu_pool_bytes applies to the cpu/tiered targets, not ssd")

    if target == "ssd":
        if store_dir is None:
            raise ValueError("ssd target requires store_dir")
        return SSDOffloader(
            store_dir,
            throttle_bytes_per_s=throttle_bytes_per_s,
            array=array,
            chunk_bytes=chunk_bytes,
        )
    if target == "cpu":
        return CPUOffloader(
            PinnedMemoryPool(cpu_pool_bytes), throttle_bytes_per_s=throttle_bytes_per_s
        )
    if target == "tiered":
        if store_dir is None:
            raise ValueError("tiered target requires store_dir")
        if cpu_pool_bytes is None:
            raise ValueError("tiered target requires cpu_pool_bytes")
        return TieredOffloader(
            store_dir,
            cpu_pool_bytes=cpu_pool_bytes,
            chunk_bytes=chunk_bytes,
            throttle_bytes_per_s=throttle_bytes_per_s,
            array=array,
            policy=policy,
        )
    raise ValueError(f"unknown offload target {target!r}; expected one of {OFFLOAD_TARGETS}")
