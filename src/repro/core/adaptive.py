"""Adaptive offload sizing (Fig. 3: "Set: offload size").

"SSDTrain retrieves the amount of computation and activation size of the
model from the model instance, GPU throughput, and SSD bandwidth.  Then,
SSDTrain sets the activation offload amount accordingly."

The budget logic: I/O fully overlaps with compute when the bytes written
per step fit inside the write-bandwidth x forward-window product (and the
reads fit in the backward window; writes are the binding constraint since
backward takes ~2x forward).  Any activation volume beyond that cap would
put I/O on the critical path, so the policy keeps the excess in GPU
memory instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.policy import PolicyConfig


@dataclass(frozen=True)
class WorkloadProfile:
    """What the adaptive sizing needs to know about one training step.

    Attributes:
        activation_bytes_per_step: total eligible activation bytes produced
            by one micro-batch's forward propagation.
        forward_time_s: forward propagation time for the micro-batch.
        backward_time_s: backward propagation time (~2x forward for
            transformers).
    """

    activation_bytes_per_step: int
    forward_time_s: float
    backward_time_s: float

    @property
    def step_time_s(self) -> float:
        return self.forward_time_s + self.backward_time_s


def choose_offload_budget(
    profile: WorkloadProfile,
    write_bandwidth_bytes_per_s: float,
    read_bandwidth_bytes_per_s: Optional[float] = None,
    safety_factor: float = 1.0,
) -> int:
    """Per-step offload byte budget that keeps I/O off the critical path.

    Args:
        profile: workload timing/sizing (from the model instance or the
            first profiled step).
        write_bandwidth_bytes_per_s: dedicated SSD array write bandwidth.
        read_bandwidth_bytes_per_s: array read bandwidth; reads must fit in
            the backward window.  Defaults to the write bandwidth.
        safety_factor: <1 leaves headroom for jitter.

    Returns:
        The byte cap to install as ``PolicyConfig.offload_budget_bytes``
        (never more than the total eligible activations).
    """
    if write_bandwidth_bytes_per_s <= 0:
        raise ValueError("write bandwidth must be positive")
    if not 0 < safety_factor <= 1:
        raise ValueError(f"safety_factor must be in (0, 1]: {safety_factor}")
    read_bw = (
        read_bandwidth_bytes_per_s
        if read_bandwidth_bytes_per_s is not None
        else write_bandwidth_bytes_per_s
    )
    # Stores may continue into the early backward window (the paper models
    # required bandwidth as total activations / (step_time / 2)); loads
    # must land within backward.
    write_window = profile.forward_time_s + 0.5 * profile.backward_time_s
    write_cap = write_bandwidth_bytes_per_s * write_window * safety_factor
    read_cap = read_bw * profile.backward_time_s * safety_factor
    cap = int(min(write_cap, read_cap))
    return min(cap, profile.activation_bytes_per_step)


def configure_policy(
    profile: WorkloadProfile,
    write_bandwidth_bytes_per_s: float,
    base: Optional[PolicyConfig] = None,
    **kwargs,
) -> PolicyConfig:
    """Build a :class:`PolicyConfig` with the adaptive budget installed."""
    config = base if base is not None else PolicyConfig()
    budget = choose_offload_budget(profile, write_bandwidth_bytes_per_s, **kwargs)
    return PolicyConfig(
        min_offload_numel=config.min_offload_numel,
        offload_budget_bytes=budget,
        keep_last_module=config.keep_last_module,
    )
