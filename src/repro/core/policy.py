"""The offload decision policy (Alg. 1), shared by the functional tensor
cache and the discrete-event simulator.

Decision order for a tensor hitting the pack hook:

1. weights, CPU-resident tensors, and tensors smaller than the size
   threshold are returned *as-is* (no record at all);
2. if the per-step offload budget has been reached, or we are inside
   backward propagation (checkpoint recomputation), the tensor is *kept* in
   GPU memory but recorded;
3. if the module is marked keep-in-memory (e.g. the last module, whose
   backward follows immediately — Fig. 2 step 4), the tensor is kept;
4. otherwise the tensor is *offloaded*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional


class Decision(enum.Enum):
    """Outcome of the pack-hook policy for one tensor."""

    PASS_THROUGH = "pass_through"  # weights / cpu / tiny: not managed
    KEEP = "keep"                  # managed, held in GPU memory
    OFFLOAD = "offload"            # managed, stored to the offload target


class Tier(enum.Enum):
    """Placement tiers of the offload hierarchy (hot -> cold)."""

    GPU = "gpu"    # resident (KEEP decisions / not yet stored)
    CPU = "cpu"    # bounded pinned host pool
    SSD = "ssd"    # NVMe file / chunk store


class KeepReason(enum.Enum):
    BUDGET_REACHED = "budget_reached"
    IN_BACKWARD = "in_backward"
    LAST_MODULE = "last_module"
    HINTED = "hinted"


@dataclass
class PolicyConfig:
    """Tunable knobs of the offload policy.

    Attributes:
        min_offload_numel: tensors with fewer elements are passed through
            (Alg. 1 uses ``math.prod(t.size()) < 2**20``).
        offload_budget_bytes: per-step cap on offloaded bytes; ``None``
            offloads everything eligible.  Set by the adaptive sizing
            (Fig. 3 "Set: offload size").
        keep_last_module: keep activations packed inside the final
            top-level module, whose backward begins immediately.
        cpu_tier_max_tensor_bytes: tiered runs only — tensors larger than
            this bypass the pinned-CPU pool and go straight to SSD (large
            sequential writes are exactly what the SSD is good at, while
            the scarce pinned pool is reserved for the small/warm
            tensors).  ``None`` lets any tensor that fits use the pool.
    """

    min_offload_numel: int = 2**20
    offload_budget_bytes: Optional[int] = None
    keep_last_module: bool = True
    cpu_tier_max_tensor_bytes: Optional[int] = None


@dataclass
class StepAccounting:
    """Per-step mutable counters consulted/updated by the policy."""

    offloaded_bytes: int = 0
    kept_bytes: int = 0
    passed_bytes: int = 0
    pack_calls: int = 0
    dedup_hits: int = 0
    forwarding_hits: int = 0

    def reset(self) -> None:
        self.offloaded_bytes = 0
        self.kept_bytes = 0
        self.passed_bytes = 0
        self.pack_calls = 0
        self.dedup_hits = 0
        self.forwarding_hits = 0


class OffloadPolicy:
    """Stateless-per-tensor decision function over mutable step accounting."""

    def __init__(self, config: Optional[PolicyConfig] = None) -> None:
        self.config = config if config is not None else PolicyConfig()
        #: Per-tenant placement overrides (multi-tenant runs): tenant name
        #: -> ``fn(nbytes, cpu_free_bytes) -> Optional[Tier]``.  A hook
        #: returning ``None`` falls through to the shared :meth:`place`
        #: rule, so a tenant can special-case (say) "pin everything to
        #: SSD" without re-implementing the default placement.
        self._tenant_placers: Dict[
            str, Callable[[int, Optional[int]], Optional[Tier]]
        ] = {}

    def budget_reached(self, accounting: StepAccounting) -> bool:
        budget = self.config.offload_budget_bytes
        return budget is not None and accounting.offloaded_bytes >= budget

    def install_budget(self, budget_bytes: Optional[int]) -> Optional[int]:
        """Mutate the per-step offload budget in place; returns the old one.

        This is the live re-sizing entry point of the adaptive controller
        (:mod:`repro.core.autotune`): the paper sets the budget once from
        a first profiled step, the controller re-runs the same formula
        with *observed* bandwidth and installs the result here between
        steps.  ``None`` removes the cap (offload everything eligible).
        Takes effect at the next ``decide()`` call — i.e. the next
        forward pass — since the budget is only consulted against the
        per-step accounting.
        """
        if budget_bytes is not None:
            budget_bytes = int(budget_bytes)
            if budget_bytes < 0:
                raise ValueError(f"offload budget must be >= 0: {budget_bytes}")
        previous = self.config.offload_budget_bytes
        self.config.offload_budget_bytes = budget_bytes
        return previous

    def decide(
        self,
        *,
        is_weight: bool,
        is_cpu: bool,
        numel: int,
        nbytes: int,
        in_backward: bool,
        in_keep_scope: bool,
        accounting: StepAccounting,
    ) -> Decision:
        """Alg. 1 lines 2-8 for one tensor.

        ``in_keep_scope`` is True when the current module is marked
        keep-in-memory (last module, or scheduler hint).
        """
        if is_weight or is_cpu or numel < self.config.min_offload_numel:
            return Decision.PASS_THROUGH
        if self.budget_reached(accounting) or in_backward or in_keep_scope:
            return Decision.KEEP
        return Decision.OFFLOAD

    def place(self, *, nbytes: int, cpu_free_bytes: Optional[int]) -> Tier:
        """Tier placement for one OFFLOAD-decided tensor.

        Args:
            nbytes: tensor size.
            cpu_free_bytes: free capacity of the pinned pool right now;
                ``None`` means no CPU tier is configured.

        The warm pinned pool takes any tensor that fits (unless it exceeds
        ``cpu_tier_max_tensor_bytes``); everything else spills to SSD.
        Demotion of colder pool residents to make room is the tiered
        offloader's job — the policy only answers "where does this tensor
        go *now*".
        """
        if cpu_free_bytes is None:
            return Tier.SSD
        limit = self.config.cpu_tier_max_tensor_bytes
        if limit is not None and nbytes > limit:
            return Tier.SSD
        if nbytes <= cpu_free_bytes:
            return Tier.CPU
        return Tier.SSD

    def set_tenant_policy(
        self,
        tenant: str,
        placer: Optional[Callable[[int, Optional[int]], Optional[Tier]]],
    ) -> None:
        """Install (or with ``None`` remove) a per-tenant placement hook.

        The hook is called as ``placer(nbytes, cpu_free_bytes)`` and may
        return a :class:`Tier` to force that placement for the tenant, or
        ``None`` to defer to the shared :meth:`place` rule.
        """
        if placer is None:
            self._tenant_placers.pop(tenant, None)
        else:
            self._tenant_placers[tenant] = placer

    def tenant_policy(
        self, tenant: str
    ) -> Optional[Callable[[int, Optional[int]], Optional[Tier]]]:
        """The per-tenant placement hook installed for ``tenant``, if any.

        Introspection counterpart of :meth:`set_tenant_policy` — the KV
        paging front-end uses it to install its placer idempotently (and
        its tests to assert the hook is wired), without reaching into
        the private table.
        """
        return self._tenant_placers.get(tenant)

    def place_for(
        self, tenant: str, *, nbytes: int, cpu_free_bytes: Optional[int]
    ) -> Tier:
        """Tier placement for one tensor owned by ``tenant``.

        Consults the tenant's placement hook first (if any); tenants
        without a hook — and hooks that return ``None`` — get the shared
        :meth:`place` rule, so single-tenant behaviour is unchanged.
        """
        placer = self._tenant_placers.get(tenant)
        if placer is not None:
            tier = placer(nbytes, cpu_free_bytes)
            if tier is not None:
                return tier
        return self.place(nbytes=nbytes, cpu_free_bytes=cpu_free_bytes)

    def keep_reason(
        self,
        *,
        in_backward: bool,
        in_keep_scope: bool,
        accounting: StepAccounting,
    ) -> KeepReason:
        if self.budget_reached(accounting):
            return KeepReason.BUDGET_REACHED
        if in_backward:
            return KeepReason.IN_BACKWARD
        if in_keep_scope:
            return KeepReason.LAST_MODULE
        return KeepReason.HINTED
