"""Tensor identifiers with storage-level deduplication (Sec. III-C1).

PyTorch's native ``id()`` is tied to the memory address, which gets reused
once an offloaded activation is garbage-collected — causing identifier
collisions.  SSDTrain's ``get_id()`` instead stamps a timestamp on the
tensor's *underlying storage* the first time it sees it and combines that
stamp with the tensor shape:

- two ``Tensor`` objects viewing the same data (PyTorch "sometimes creates
  new torch.Tensor objects representing the identical tensor") map to the
  same identifier — preventing redundant I/O;
- a weight and its transpose share the storage stamp, so the transpose's
  identifier is consistent across steps and can be recorded in the weight
  exclusion set before training.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Set, Tuple

from repro.tensor.module import Module
from repro.tensor.tensor import Tensor

#: Key under which the stamp is stored on ``storage.metadata``.
STORAGE_STAMP_KEY = "ssdtrain_stamp"


@dataclass(frozen=True)
class TensorID:
    """Identifier = (first-seen stamp of the storage, tensor shape)."""

    stamp: int
    shape: Tuple[int, ...]

    def filename(self) -> str:
        shape_part = "x".join(str(s) for s in self.shape) or "scalar"
        return f"t{self.stamp}_{shape_part}"

    @classmethod
    def from_filename(cls, name: str) -> "TensorID":
        """Invert :meth:`filename` — the durable chunk store's index is
        keyed by filename, and a restarted tiered engine rebuilds its
        tier map from it (see ``TieredOffloader``)."""
        if not name.startswith("t") or "_" not in name:
            raise ValueError(f"not a tensor filename: {name!r}")
        stamp_part, shape_part = name[1:].split("_", 1)
        shape: Tuple[int, ...]
        if shape_part == "scalar":
            shape = ()
        else:
            shape = tuple(int(dim) for dim in shape_part.split("x"))
        return cls(stamp=int(stamp_part), shape=shape)

    def __str__(self) -> str:
        return self.filename()


class TensorIDRegistry:
    """Issues :class:`TensorID`s and tracks the weight exclusion set."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counter = itertools.count()
        self._weight_ids: Set[TensorID] = set()

    def _new_stamp(self) -> int:
        # Timestamp in ns, disambiguated by a process-wide counter so two
        # tensors first seen in the same clock tick never collide.
        return (time.monotonic_ns() << 20) | (next(self._counter) & 0xFFFFF)

    def get_id(self, tensor: Tensor) -> TensorID:
        """The identifier for ``tensor``, stamping its storage if new."""
        storage = tensor.untyped_storage()
        with self._lock:
            stamp = storage.metadata.get(STORAGE_STAMP_KEY)
            if stamp is None:
                stamp = self._new_stamp()
                storage.metadata[STORAGE_STAMP_KEY] = stamp
        return TensorID(stamp=stamp, shape=tuple(tensor.shape))

    # ------------------------------------------------------------- weights
    def record_weight(self, param: Tensor) -> None:
        """Add a parameter (and its transpose view) to the exclusion set.

        Linear layers register the *transpose* of their weight on the graph;
        recording the transposed identifier up front keeps every step's
        pack-hook lookups hitting the same ids (Sec. III-C1).
        """
        tid = self.get_id(param)
        with self._lock:
            self._weight_ids.add(tid)
        if param.ndim == 2:
            transposed = TensorID(stamp=tid.stamp, shape=(param.shape[1], param.shape[0]))
            with self._lock:
                self._weight_ids.add(transposed)

    def record_module_weights(self, module: Module) -> int:
        """Record every parameter of ``module``; returns the count."""
        count = 0
        for _, param in module.named_parameters():
            self.record_weight(param)
            count += 1
        return count

    def is_weight(self, tensor: Tensor) -> bool:
        """Membership test used by the pack hook (Alg. 1 line 2)."""
        storage = tensor.untyped_storage()
        stamp = storage.metadata.get(STORAGE_STAMP_KEY)
        if stamp is None:
            return False
        with self._lock:
            return TensorID(stamp=stamp, shape=tuple(tensor.shape)) in self._weight_ids

    @property
    def num_weights(self) -> int:
        with self._lock:
            return len(self._weight_ids)
