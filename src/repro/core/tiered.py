"""Tiered offloading: GPU -> pinned CPU pool -> SSD (chunked or per-file).

The paper's tensor cache drives exactly one transfer target.  This module
composes the existing backends into a capacity-aware hierarchy in the
PatrickStar / ColossalAI ``StatefulTensor`` tradition:

- **GPU** — hot: KEEP-decided records never reach the offloader;
- **CPU** — warm: a bounded :class:`~repro.core.offloader.PinnedMemoryPool`
  absorbs stores at PCIe speed.  When the pool fills, the **least
  recently used** residents are *demoted* to SSD to make room (write-back,
  not write-through: a tensor lives in exactly one tier);
- **SSD** — cold: the file/chunk store; with ``chunk_bytes`` set, small
  demotions coalesce into one sequential chunk write
  (:class:`~repro.io.chunkstore.ChunkedTensorStore`).

Loads *promote*: reading an SSD-resident tensor copies it back into the
pool when there is room, so a re-read (recomputation replays, multi-scope
saves, repeated prefetch) hits host memory instead of the SSD.

Placement is a policy decision
(:meth:`~repro.core.policy.OffloadPolicy.place`): the pool takes any
tensor under ``cpu_tier_max_tensor_bytes`` that the pool *could* hold;
making room by demotion is this module's job.

The class implements the full :class:`~repro.core.offloader.Offloader`
API, so an unchanged :class:`~repro.core.tensor_cache.TensorCache` can
drive all three tiers; the cache additionally records each record's tier
(:attr:`ActivationRecord.tier`) by calling :meth:`tier_of` when a store
completes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.ids import TensorID
from repro.core.offloader import CPUOffloader, Offloader, PinnedMemoryPool, SSDOffloader
from repro.core.policy import OffloadPolicy, Tier
from repro.io.gds import GDSRegistry
from repro.tensor.tensor import Tensor


@dataclass
class TierStats:
    """Cumulative tier-traffic counters (benchmark / test surface)."""

    cpu_stored_tensors: int = 0
    cpu_stored_bytes: int = 0
    ssd_stored_tensors: int = 0     # direct-to-SSD stores (policy bypass)
    ssd_stored_bytes: int = 0
    demotions: int = 0              # CPU -> SSD spills on pool pressure
    demoted_bytes: int = 0
    promotions: int = 0             # SSD -> CPU copies on load
    promoted_bytes: int = 0
    cpu_hits: int = 0               # loads served from the pinned pool
    cpu_hit_bytes: int = 0
    ssd_loads: int = 0
    ssd_loaded_bytes: int = 0


class TieredOffloader(Offloader):
    """Capacity-aware multi-backend offloader.

    Args:
        store_dir: directory for the SSD tier's files.
        cpu_pool_bytes: pinned pool capacity — the CPU tier's size.
        chunk_bytes: if set, the SSD tier coalesces tensors into chunks
            of this size (one physical write per chunk).
        policy: supplies the tier-placement rule; defaults to a fresh
            :class:`OffloadPolicy` (pool-first placement).
        promote_on_load: copy SSD-resident tensors back into the pool on
            load when there is free room (no demotion is triggered for a
            promotion — promotions must never thrash the warm set).
        throttle_bytes_per_s / array / gds: forwarded to the SSD tier.
    """

    def __init__(
        self,
        store_dir,
        cpu_pool_bytes: int,
        chunk_bytes: Optional[int] = None,
        policy: Optional[OffloadPolicy] = None,
        promote_on_load: bool = True,
        throttle_bytes_per_s: Optional[float] = None,
        array=None,
        gds: Optional[GDSRegistry] = None,
    ) -> None:
        if cpu_pool_bytes < 0:
            raise ValueError(f"cpu_pool_bytes must be >= 0: {cpu_pool_bytes}")
        self.cpu = CPUOffloader(PinnedMemoryPool(cpu_pool_bytes))
        self.ssd = SSDOffloader(
            store_dir,
            throttle_bytes_per_s=throttle_bytes_per_s,
            array=array,
            gds=gds,
            chunk_bytes=chunk_bytes,
        )
        self.policy = policy if policy is not None else OffloadPolicy()
        self.promote_on_load = promote_on_load
        self.stats = TierStats()
        # Coarse lock over placement metadata and tier moves.  I/O on the
        # cache's store/load pools serializes through it; the functional
        # engine models mechanism, not device parallelism, so correctness
        # of the demote/promote/forward dance wins over overlap here.
        self._lock = threading.RLock()
        self._tier: Dict[TensorID, Tier] = {}
        #: CPU-resident tids in LRU order (oldest first = first demoted).
        self._lru: "OrderedDict[TensorID, int]" = OrderedDict()
        #: Observer for demotions/promotions (the cache keeps its Fig. 4
        #: records' tier column truthful through it).
        self._tier_listener: Optional[Callable[[TensorID, Tier], None]] = None

    def set_tier_listener(self, listener: Callable[[TensorID, Tier], None]) -> None:
        """Register a callback fired after a tensor moves tier (demotion
        or promotion).  Called with no offloader lock held."""
        self._tier_listener = listener

    def _fire(self, events: List[Tuple[TensorID, Tier]]) -> None:
        listener = self._tier_listener
        if listener is None:
            return
        for tid, tier in events:
            listener(tid, tier)

    # -------------------------------------------------------------- plumbing
    @property
    def file_store(self):
        """The SSD tier's store (tests/trace tooling read its counters)."""
        return self.ssd.file_store

    @property
    def pool(self) -> PinnedMemoryPool:
        return self.cpu.pool

    @property
    def cpu_capacity_bytes(self) -> int:
        return self.pool.capacity_bytes or 0

    def cpu_free_bytes(self) -> int:
        return max(0, self.cpu_capacity_bytes - self.pool.used)

    def register_tensor(self, tensor: Tensor) -> None:
        """GDS registration for the direct-to-SSD path."""
        self.ssd.register_tensor(tensor)

    def tier_of(self, tid: TensorID) -> Tier:
        """Which tier currently holds ``tid`` (GPU if never stored)."""
        with self._lock:
            return self._tier.get(tid, Tier.GPU)

    # ------------------------------------------------------------------ store
    def store(self, tid: TensorID, data: np.ndarray) -> None:
        events: List[Tuple[TensorID, Tier]] = []
        nbytes = int(np.asarray(data).nbytes)
        with self._lock:
            # The policy sees the capacity the pool *could* free: every
            # resident is demotable, so the whole pool is reclaimable.
            placement = self.policy.place(
                nbytes=nbytes, cpu_free_bytes=self.cpu_capacity_bytes
            )
            # Re-store: drop the old backing copy first.  A cross-tier
            # move would otherwise leak it (orphaned SSD file / pinned
            # chunk refcount), and a CPU-tier overwrite must free its old
            # bytes *before* _make_room or it demotes an innocent victim.
            old = self._tier.get(tid)
            if old is Tier.CPU:
                self.cpu.evict(tid)
                self._lru.pop(tid, None)
            elif old is Tier.SSD and placement is not Tier.SSD:
                self.ssd.release(tid)
            if placement is Tier.CPU:
                self._make_room(nbytes, events)
                self.cpu.store(tid, data)
                self._tier[tid] = Tier.CPU
                self._lru[tid] = nbytes
                self._lru.move_to_end(tid)
                self.stats.cpu_stored_tensors += 1
                self.stats.cpu_stored_bytes += nbytes
            else:
                self.ssd.store(tid, data)
                self._tier[tid] = Tier.SSD
                self.stats.ssd_stored_tensors += 1
                self.stats.ssd_stored_bytes += nbytes
        self._fire(events)

    def _make_room(self, nbytes: int, events: List[Tuple[TensorID, Tier]]) -> None:
        """Demote LRU pool residents until ``nbytes`` fits; holds the lock."""
        while self._lru and self.cpu_free_bytes() < nbytes:
            victim, victim_bytes = next(iter(self._lru.items()))
            self._demote_locked(victim, victim_bytes, events)

    def _demote_locked(
        self, tid: TensorID, nbytes: int, events: List[Tuple[TensorID, Tier]]
    ) -> None:
        buf = self.cpu.peek(tid)
        if buf is None:  # raced with a release
            self._lru.pop(tid, None)
            self._tier.pop(tid, None)
            return
        self.ssd.store(tid, buf)
        self.cpu.evict(tid)
        self._lru.pop(tid, None)
        self._tier[tid] = Tier.SSD
        self.stats.demotions += 1
        self.stats.demoted_bytes += nbytes
        events.append((tid, Tier.SSD))

    def demote(self, tid: TensorID) -> bool:
        """Explicitly spill one CPU-resident tensor to SSD (True if moved)."""
        events: List[Tuple[TensorID, Tier]] = []
        with self._lock:
            nbytes = self._lru.get(tid)
            if nbytes is None:
                return False
            self._demote_locked(tid, nbytes, events)
        self._fire(events)
        return True

    # ------------------------------------------------------------------- load
    def load(self, tid: TensorID, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        events: List[Tuple[TensorID, Tier]] = []
        with self._lock:
            tier = self._tier.get(tid)
            if tier is Tier.CPU:
                data = self.cpu.load(tid, shape, dtype)
                self._lru.move_to_end(tid)
                self.stats.cpu_hits += 1
                self.stats.cpu_hit_bytes += data.nbytes
                return data
            if tier is None:
                raise KeyError(f"tensor {tid} was never stored in any tier")
            data = self.ssd.load(tid, shape, dtype)
            self.stats.ssd_loads += 1
            self.stats.ssd_loaded_bytes += data.nbytes
            if self.promote_on_load and data.nbytes <= self.cpu_free_bytes():
                self.cpu.store(tid, data)
                self.ssd.release(tid)
                self._tier[tid] = Tier.CPU
                self._lru[tid] = data.nbytes
                self.stats.promotions += 1
                self.stats.promoted_bytes += data.nbytes
                events.append((tid, Tier.CPU))
        self._fire(events)
        return data

    # ---------------------------------------------------------------- reclaim
    def release(self, tid: TensorID) -> None:
        with self._lock:
            tier = self._tier.pop(tid, None)
            self._lru.pop(tid, None)
            if tier is Tier.CPU:
                self.cpu.evict(tid)
            elif tier is Tier.SSD:
                self.ssd.release(tid)

    def location(self, tid: TensorID) -> str:
        with self._lock:
            tier = self._tier.get(tid)
        if tier is Tier.CPU:
            return f"tier:cpu:{self.cpu.location(tid)}"
        if tier is Tier.SSD:
            return f"tier:ssd:{self.ssd.location(tid)}"
        return f"tier:gpu:{tid.filename()}"

    def flush(self) -> None:
        """Flush a partially-filled SSD chunk, if the SSD tier is chunked."""
        flush = getattr(self.ssd.file_store, "flush", None)
        if flush is not None:
            flush()

    def shutdown(self) -> None:
        with self._lock:
            self._tier.clear()
            self._lru.clear()
        self.cpu.shutdown()
        self.ssd.shutdown()
