"""Tiered offloading: GPU -> pinned CPU pool -> SSD (chunked or per-file).

The paper's tensor cache drives exactly one transfer target.  This module
composes the existing backends into a capacity-aware hierarchy in the
PatrickStar / ColossalAI ``StatefulTensor`` tradition:

- **GPU** — hot: KEEP-decided records never reach the offloader;
- **CPU** — warm: a bounded :class:`~repro.core.offloader.PinnedMemoryPool`
  absorbs stores at PCIe speed.  When the pool fills, the **least
  recently used** residents are *demoted* to SSD to make room (write-back,
  not write-through: a tensor lives in exactly one tier);
- **SSD** — cold: the file/chunk store; with ``chunk_bytes`` set, small
  demotions coalesce into one sequential chunk write
  (:class:`~repro.io.chunkstore.ChunkedTensorStore`).

Loads *promote*: reading an SSD-resident tensor copies it back into the
pool when there is room, so a re-read (recomputation replays, multi-scope
saves, repeated prefetch) hits host memory instead of the SSD.

Placement is a policy decision
(:meth:`~repro.core.policy.OffloadPolicy.place`): the pool takes any
tensor under ``cpu_tier_max_tensor_bytes`` that the pool *could* hold;
making room by demotion is this module's job.

The class implements the full :class:`~repro.core.offloader.Offloader`
API, so an unchanged :class:`~repro.core.tensor_cache.TensorCache` can
drive all three tiers; the cache additionally records each record's tier
(:attr:`ActivationRecord.tier`) by calling :meth:`tier_of` when a store
completes.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.ids import TensorID
from repro.core.offloader import CPUOffloader, Offloader, PinnedMemoryPool, SSDOffloader
from repro.core.policy import OffloadPolicy, Tier
from repro.io.breaker import BreakerState, CircuitBreaker, Listener
from repro.io.buffers import BufferLease, DataPlaneStats, owned_copy
from repro.io.errors import PermanentIOError, is_enospc, retry_call
from repro.io.gds import GDSRegistry
from repro.io.scheduler import IORequest, IOScheduler, Priority
from repro.io.tenancy import DEFAULT_TENANT, current_tenant, tenant_scope
from repro.tensor.tensor import Tensor

logger = logging.getLogger(__name__)


@dataclass
class TierStats:
    """Cumulative tier-traffic counters (benchmark / test surface)."""

    cpu_stored_tensors: int = 0
    cpu_stored_bytes: int = 0
    ssd_stored_tensors: int = 0     # direct-to-SSD stores (policy bypass)
    ssd_stored_bytes: int = 0
    demotions: int = 0              # CPU -> SSD spills on pool pressure
    demoted_bytes: int = 0
    promotions: int = 0             # SSD -> CPU copies on load
    promoted_bytes: int = 0
    cpu_hits: int = 0               # loads served from the pinned pool
    cpu_hit_bytes: int = 0
    ssd_loads: int = 0
    ssd_loaded_bytes: int = 0
    cancelled_demotions: int = 0    # SSD writes avoided: victim released
    cancelled_demotion_bytes: int = 0
    demotion_forward_hits: int = 0  # loads served from an in-flight demotion
    #: Stores/demotions re-routed to the CPU tier because the SSD store
    #: is dead (permanent I/O failure) or its write exhausted the retry
    #: budget — the failure-recovery path, not normal placement.
    failovers: int = 0
    failover_bytes: int = 0
    #: Stores kept on the CPU tier because the SSD lane is browning out
    #: (slow verdict, not dead): tail latency trades against capacity
    #: until the lane speeds back up.
    shed_stores: int = 0
    shed_bytes: int = 0
    #: ENOSPC events absorbed (root re-route, compact-and-retry, or CPU
    #: degrade) without failing the step.
    enospc_events: int = 0
    #: Breaker probe rounds that re-closed and resurrected the SSD tier.
    resurrections: int = 0


class TieredOffloader(Offloader):
    """Capacity-aware multi-backend offloader.

    Args:
        store_dir: directory for the SSD tier's files.
        cpu_pool_bytes: pinned pool capacity — the CPU tier's size.
        chunk_bytes: if set, the SSD tier coalesces tensors into chunks
            of this size (one physical write per chunk).
        policy: supplies the tier-placement rule; defaults to a fresh
            :class:`OffloadPolicy` (pool-first placement).
        promote_on_load: copy SSD-resident tensors back into the pool on
            load when there is free room (no demotion is triggered for a
            promotion — promotions must never thrash the warm set).
        legacy_dataplane: run both tiers with the pre-PR5 copy map (the
            ``repro dataplane`` / ``bench_dataplane.py`` A/B baseline).
        durable / store_roots: forwarded to the SSD tier's chunk store
            (manifest journaling and write-leveling, service mode).
        throttle_bytes_per_s / array / gds: forwarded to the SSD tier.
    """

    def __init__(
        self,
        store_dir,
        cpu_pool_bytes: int,
        chunk_bytes: Optional[int] = None,
        policy: Optional[OffloadPolicy] = None,
        promote_on_load: bool = True,
        throttle_bytes_per_s: Optional[float] = None,
        array=None,
        gds: Optional[GDSRegistry] = None,
        legacy_dataplane: bool = False,
        durable: bool = False,
        store_roots=None,
        probe_backoff_s: Optional[float] = None,
    ) -> None:
        if cpu_pool_bytes < 0:
            raise ValueError(f"cpu_pool_bytes must be >= 0: {cpu_pool_bytes}")
        self.cpu = CPUOffloader(
            PinnedMemoryPool(cpu_pool_bytes), legacy_copies=legacy_dataplane
        )
        self.ssd = SSDOffloader(
            store_dir,
            throttle_bytes_per_s=throttle_bytes_per_s,
            array=array,
            gds=gds,
            chunk_bytes=chunk_bytes,
            legacy_copies=legacy_dataplane,
            durable=durable,
            store_roots=store_roots,
        )
        self.policy = policy if policy is not None else OffloadPolicy()
        self.promote_on_load = promote_on_load
        self.stats = TierStats()
        # Coarse lock over placement metadata and tier moves.  I/O on the
        # cache's store/load pools serializes through it; the functional
        # engine models mechanism, not device parallelism, so correctness
        # of the demote/promote/forward dance wins over overlap here.
        self._lock = threading.RLock()
        self._tier: Dict[TensorID, Tier] = {}
        #: CPU-resident tids in LRU order (oldest first = first demoted).
        self._lru: "OrderedDict[TensorID, int]" = OrderedDict()
        #: Observer for demotions/promotions (the cache keeps its Fig. 4
        #: records' tier column truthful through it).
        self._tier_listener: Optional[Callable[[TensorID, Tier], None]] = None
        #: With a scheduler attached, demotions run as DEMOTION-priority
        #: requests on the SSD store lane instead of inline: the pool
        #: bytes are reclaimed immediately, the SSD write happens when
        #: the lane gets to it, and releasing (or re-loading) the victim
        #: first *cancels* the write.  The buffers park here meanwhile.
        self._scheduler: Optional[IOScheduler] = None
        self._pending_demotions: Dict[TensorID, "np.ndarray"] = {}
        self._demotion_reqs: Dict[TensorID, IORequest] = {}
        #: Demotions whose SSD write is in flight *outside* the tier lock
        #: (so a slow/throttled write never blocks loads on other tids).
        #: Readers serve the parked buffer; writers to the same tid wait
        #: on the event before touching the SSD copy.
        self._writing_demotions: Dict[TensorID, "np.ndarray"] = {}
        self._writing_events: Dict[TensorID, threading.Event] = {}
        #: Target free headroom the pool keeps between steps (bytes);
        #: installed by the adaptive controller, enforced on demand by
        #: :meth:`apply_watermark`.  0 = no proactive demotion.
        self._free_watermark_bytes = 0
        #: SSD-tier circuit breaker: trips on the first PermanentIOError
        #: from the SSD store (or when the scheduler's lane health
        #: declares the ssd lane dead).  While open, every placement
        #: targets the CPU tier — correctness over capacity — and the
        #: pinned pool is allowed to overflow its cap rather than fail
        #: the step.  Unlike the pre-PR10 latch this is not sticky:
        #: after a backoff, :meth:`maybe_probe_ssd` canaries the device
        #: and a passing probe budget resurrects the tier.
        #: ``probe_backoff_s`` doubles as the breaker backoff *and* the
        #: opt-in for store-path auto-probing; ``None`` (the default)
        #: keeps the conservative backoff and probes only when the
        #: service housekeeping loop (or a test) calls
        #: :meth:`maybe_probe_ssd` explicitly.
        self.probe_backoff_s = probe_backoff_s
        backoff = probe_backoff_s if probe_backoff_s is not None else 0.05
        self._breaker = CircuitBreaker(name="ssd", backoff_s=backoff)
        #: Tenant-scoped breakers: an SSD failure attributed to one
        #: tenant (via the scheduler's per-tenant lane health or a failed
        #: store in that tenant's scope) degrades only that tenant's
        #: placement; every other tenant keeps its SSD tier.  The default
        #: tenant never lands here — its failures drive the global
        #: breaker, preserving single-tenant behaviour exactly.
        self._tenant_breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_listener: Optional[Listener] = None
        #: ``pool.overflow_allowed`` before the first trip, restored when
        #: the last open breaker closes (resurrection exits overflow).
        self._overflow_before_trip: Optional[bool] = None
        #: Owning tenant per stored tensor: demotions/evictions of a
        #: victim must run (and account) against the tenant that stored
        #: it, not whichever tenant's store triggered the pool pressure.
        self._tid_owner: Dict[TensorID, str] = {}
        if durable:
            self._rehydrate_tier_map()

    def _rehydrate_tier_map(self) -> None:
        """Seed the tier map from a replayed durable store.

        The tier map is in-memory state; after a service restart every
        replayed SSD-resident tensor would otherwise read as "never
        stored".  Host-tier residents are genuinely gone (RAM died with
        the process), so only the SSD side is rebuilt.
        """
        store = self.ssd.file_store
        tensor_ids = getattr(store, "tensor_ids", None)
        if tensor_ids is None:
            return
        for name in tensor_ids():
            try:
                tid = TensorID.from_filename(name)
            except ValueError:
                continue  # foreign key in a shared store directory
            self._tier[tid] = Tier.SSD

    # ---------------------------------------------------------------- failover
    @property
    def ssd_dead(self) -> bool:
        """True while the SSD breaker is open (traffic routes around the
        tier).  No longer sticky: a passed probe budget clears it."""
        return self._breaker.is_open

    @property
    def breaker(self) -> CircuitBreaker:
        """The global SSD-tier circuit breaker (state/stats surface)."""
        return self._breaker

    def ssd_dead_for(self, tenant: str) -> bool:
        """True when ``tenant``'s SSD placement is written off (global
        death counts for everyone; tenant-scoped death only for them)."""
        return self._ssd_unhealthy(tenant)

    @property
    def dead_tenants(self) -> Set[str]:
        """Tenants whose own SSD breaker is currently open (copy)."""
        with self._lock:
            return {
                tenant
                for tenant, breaker in self._tenant_breakers.items()
                if breaker.is_open
            }

    def _tenant_breaker_open(self, tenant: str) -> bool:
        breaker = self._tenant_breakers.get(tenant)
        return breaker is not None and breaker.is_open

    def _tenant_breaker(self, tenant: str) -> CircuitBreaker:
        """Get-or-create the breaker scoped to ``tenant`` (under lock)."""
        with self._lock:
            breaker = self._tenant_breakers.get(tenant)
            if breaker is None:
                breaker = CircuitBreaker(
                    name=f"ssd/{tenant}", backoff_s=self._breaker.backoff_s
                )
                if self._breaker_listener is not None:
                    breaker.add_listener(self._breaker_listener)
                self._tenant_breakers[tenant] = breaker
            return breaker

    def set_breaker_listener(self, listener: Listener) -> None:
        """Observe every breaker transition: ``listener(name, old, new,
        reason)``.  Applied to the global breaker and to every tenant
        breaker, existing and future (the service publishes these on its
        control bus)."""
        with self._lock:
            self._breaker_listener = listener
            breakers = [self._breaker, *self._tenant_breakers.values()]
        for breaker in breakers:
            breaker.add_listener(listener)

    def _ssd_unhealthy(self, tenant: Optional[str] = None) -> bool:
        if self._breaker.is_open:
            return True
        scheduler = self._scheduler
        if tenant is None or tenant == DEFAULT_TENANT:
            return scheduler is not None and scheduler.health.is_dead("ssd")
        if self._tenant_breaker_open(tenant):
            return True
        return scheduler is not None and scheduler.health.is_dead("ssd", tenant)

    def _lane_slow(self) -> bool:
        """Brownout verdict: the ssd lane is alive but past the slow
        threshold — shed optional traffic, keep serving blocking work."""
        scheduler = self._scheduler
        return scheduler is not None and scheduler.health.is_slow("ssd")

    def _mark_ssd_dead(self, tenant: Optional[str] = None) -> None:
        """Trip degraded mode; callers hold (or are about to release)
        ``self._lock``.

        ``tenant`` scopes the trip: a non-default tenant's failure
        degrades only that tenant's placement (the blast radius of the
        isolation guarantee), while the default tenant — and ``None`` —
        trip the pre-tenancy global breaker.
        """
        if self._overflow_before_trip is None:
            # Remember the operator's setting before degraded mode
            # forces overflow on; resurrection restores it.
            self._overflow_before_trip = self.pool.overflow_allowed
        if tenant is not None and tenant != DEFAULT_TENANT:
            breaker = self._tenant_breaker(tenant)
            # Trip only from CLOSED: callers re-sync this latch on every
            # degraded placement, and knocking a HALF_OPEN breaker back
            # to OPEN would double its backoff and starve the canary
            # probes (probe failures re-open it via the breaker itself).
            if breaker.state == BreakerState.CLOSED and breaker.trip(
                "store failure"
            ):
                logger.warning(
                    "SSD breaker opened for tenant %r; "
                    "failing that tenant's placements over to the CPU tier",
                    tenant,
                )
            # The dead tenant's bytes may no longer spill, so its share
            # of the pool can exceed the capacity model: allow overflow
            # rather than fail steps (same trade as the global breaker).
            self.pool.overflow_allowed = True
            if self._scheduler is not None:
                self._scheduler.health.mark_dead("ssd", tenant=tenant)
            return
        if self._breaker.state == BreakerState.CLOSED and self._breaker.trip(
            "store failure"
        ):
            logger.warning(
                "SSD breaker opened; failing all placements over to the CPU tier"
            )
        self.pool.overflow_allowed = True
        if self._scheduler is not None:
            self._scheduler.health.mark_dead("ssd")

    # ------------------------------------------------------ probing / healing
    def maybe_probe_ssd(self, tenant: Optional[str] = None) -> Optional[bool]:
        """Canary an open SSD breaker; resurrect the tier when it closes.

        Single-flight and backoff-gated by the breaker itself, so this is
        cheap to call from hot paths and housekeeping loops alike.
        Probes the global breaker, then — when ``tenant`` names a
        non-default tenant with its own tripped breaker — that one too.

        Returns ``None`` when no probe was due, ``True`` when a canary
        succeeded, ``False`` when it failed (the breaker re-opens with a
        doubled backoff).
        """
        result = self._probe_one(self._breaker, None)
        if tenant is not None and tenant != DEFAULT_TENANT:
            with self._lock:
                scoped = self._tenant_breakers.get(tenant)
            if scoped is not None:
                scoped_result = self._probe_one(scoped, tenant)
                if result is None:
                    result = scoped_result
        return result

    def _probe_one(
        self, breaker: CircuitBreaker, tenant: Optional[str]
    ) -> Optional[bool]:
        if not breaker.allow_probe():
            return None
        if self._canary_probe():
            if breaker.record_probe_success():
                self._resurrect_ssd(tenant)
            return True
        breaker.record_probe_failure()
        return False

    def _canary_probe(self) -> bool:
        """One tiny write + read-back + delete against the SSD store.

        Runs through ``ssd.file_store`` so an attached fault injector —
        or a genuinely broken device — is exercised exactly like
        production traffic; a healed injector lets the canary through
        and the breaker learns the device is back.
        """
        store = self.ssd.file_store
        payload = np.arange(8, dtype=np.float32)  # 32-byte canary
        canary_id = "__breaker_canary__"
        try:
            store.write(canary_id, payload)
            flush = getattr(store, "flush", None)
            if flush is not None:
                flush()
            back = store.read(canary_id, payload.shape, payload.dtype)
            ok = bool(np.array_equal(back, payload))
        except OSError:
            ok = False
        try:
            store.delete(canary_id)
        except OSError:
            pass
        return ok

    def _resurrect_ssd(self, tenant: Optional[str]) -> None:
        """Side effects of a breaker re-closing: placement re-enabled
        (implicit — ``_ssd_unhealthy`` reads the breaker), lane-health
        verdicts cleared, and pinned-pool overflow exited once no breaker
        remains open.  Queued demotions resume at the next watermark
        application / pool-pressure event."""
        with self._lock:
            if self._scheduler is not None:
                self._scheduler.health.revive("ssd", tenant=tenant)
            if not self._breaker.is_open and not any(
                b.is_open for b in self._tenant_breakers.values()
            ):
                if self._overflow_before_trip is not None:
                    self.pool.overflow_allowed = self._overflow_before_trip
                    self._overflow_before_trip = None
            self.stats.resurrections += 1
        logger.warning(
            "SSD tier resurrected%s: breaker closed after successful probes",
            f" for tenant {tenant!r}" if tenant else "",
        )

    def set_tier_listener(self, listener: Callable[[TensorID, Tier], None]) -> None:
        """Register a callback fired after a tensor moves tier (demotion
        or promotion).  Called with no offloader lock held."""
        self._tier_listener = listener

    def set_scheduler(self, scheduler: Optional[IOScheduler]) -> None:
        """Route demotion writes through a priority-aware scheduler.

        The cache wires its own scheduler in; ``None`` (the default)
        keeps demotions synchronous, which standalone users rely on.
        """
        self._scheduler = scheduler

    def _fire(self, events: List[Tuple[TensorID, Tier]]) -> None:
        listener = self._tier_listener
        if listener is None:
            return
        for tid, tier in events:
            listener(tid, tier)

    # -------------------------------------------------------------- plumbing
    @property
    def file_store(self):
        """The SSD tier's store (tests/trace tooling read its counters)."""
        return self.ssd.file_store

    @property
    def pool(self) -> PinnedMemoryPool:
        return self.cpu.pool

    @property
    def arena(self):
        """The CPU tier's buffer arena (None in legacy-dataplane mode)."""
        return self.cpu.arena

    def dataplane_stats(self) -> DataPlaneStats:
        """Merge both tiers' copy-map telemetry."""
        return self.cpu.dataplane_stats().merge(self.ssd.dataplane_stats())

    def stats_snapshot(self) -> TierStats:
        """A coherent, detached copy of the tier-traffic counters.

        :attr:`stats` is mutated under the tier lock by stores, loads
        and background demotions; a reader iterating the live object can
        see a half-updated pair (e.g. ``demotions`` without its
        ``demoted_bytes``).  ``engine.stats()`` reports this copy.
        """
        with self._lock:
            return replace(self.stats)

    @property
    def cpu_capacity_bytes(self) -> int:
        return self.pool.capacity_bytes or 0

    def cpu_free_bytes(self) -> int:
        return max(0, self.cpu_capacity_bytes - self.pool.used)

    def register_tensor(self, tensor: Tensor) -> None:
        """GDS registration for the direct-to-SSD path."""
        self.ssd.register_tensor(tensor)

    def tier_of(self, tid: TensorID) -> Tier:
        """Which tier currently holds ``tid`` (GPU if never stored)."""
        with self._lock:
            return self._tier.get(tid, Tier.GPU)

    # ------------------------------------------------------------------ store
    def store(self, tid: TensorID, data: np.ndarray) -> None:
        events: List[Tuple[TensorID, Tier]] = []
        nbytes = int(np.asarray(data).nbytes)
        owner = current_tenant()
        # Never race the background spill writer on the same tid: the
        # re-store logic below assumes the SSD copy is either absent or
        # fully landed.
        self._await_inflight_write(tid)
        # Opt-in self-healing on the hot path: with a tripped breaker
        # whose backoff has elapsed, spend one cheap canary before
        # deciding placement (single-flight — a store storm cannot
        # hammer a struggling device).  Outside the tier lock: the
        # canary is real I/O.
        if self.probe_backoff_s is not None and (
            self._breaker.is_open or self._tenant_breaker_open(owner)
        ):
            self.maybe_probe_ssd(owner)
        with self._lock:
            # With a dead SSD tier there is exactly one viable placement;
            # otherwise the policy sees the capacity the pool *could*
            # free: every resident is demotable, so the whole pool is
            # reclaimable.  Death is judged per-tenant: another tenant's
            # latch must not move this tenant's placements.
            ssd_down = self._ssd_unhealthy(owner)
            if ssd_down:
                self._mark_ssd_dead(owner)  # sync the latch + pool overflow
                placement = Tier.CPU
            else:
                placement = self.policy.place_for(
                    owner, nbytes=nbytes, cpu_free_bytes=self.cpu_capacity_bytes
                )
                if (
                    placement is Tier.SSD
                    and self._lane_slow()
                    and nbytes <= self.cpu_free_bytes()
                ):
                    # Brownout shed: the lane is alive but slow, and the
                    # pool can absorb this store without demoting into
                    # the very lane that is struggling.  Keep it warm.
                    placement = Tier.CPU
                    self.stats.shed_stores += 1
                    self.stats.shed_bytes += nbytes
            # Re-store: drop the old backing copy first.  A cross-tier
            # move would otherwise leak it (orphaned SSD file / pinned
            # chunk refcount), and a CPU-tier overwrite must free its old
            # bytes *before* _make_room or it demotes an innocent victim.
            # An in-flight demotion of the same tid is obsolete either
            # way: cancel it so the stale bytes never reach the SSD.
            old = self._tier.get(tid)
            if old is Tier.CPU:
                self.cpu.evict(tid)
                self._lru.pop(tid, None)
            elif old is Tier.SSD:
                cancelled = self._cancel_pending_demotion_locked(tid)
                if cancelled is not None:
                    # The queued spill held the old bytes; they are
                    # obsolete, so the lease goes straight back.
                    _, stale_lease = cancelled
                    if stale_lease is not None:
                        stale_lease.release()
                elif placement is not Tier.SSD:
                    self.ssd.release(tid)
            if placement is Tier.SSD:
                try:
                    if self._scheduler is None:
                        # Standalone (scheduler-less) mode has no job-level
                        # retry above it; apply the stack's retry rule here,
                        # matching the sync demotion path.
                        retry_call(lambda: self.ssd.store(tid, data))
                    else:
                        self.ssd.store(tid, data)
                except PermanentIOError as exc:
                    # Tier failover: the device is gone, the bytes are in
                    # hand — land them in the pinned pool (overflow
                    # allowed) instead of failing the step.  Transient
                    # errors propagate: the request's bounded retry
                    # re-enters this method with the books consistent.
                    logger.warning("SSD store failed for %s (%s); failing over", tid, exc)
                    self._mark_ssd_dead(owner)
                    placement = Tier.CPU
                    self.stats.failovers += 1
                    self.stats.failover_bytes += nbytes
                except OSError as exc:
                    if not is_enospc(exc):
                        raise
                    # Resource exhaustion is not device death: the
                    # breaker stays closed.  Compact to free dead bytes
                    # and retry once; a genuinely full device degrades
                    # this store to the CPU tier (overflow-tolerant)
                    # instead of failing the step.
                    self.stats.enospc_events += 1
                    if self._retry_store_after_compaction(tid, data):
                        self._tier[tid] = Tier.SSD
                        self._tid_owner[tid] = owner
                        self.stats.ssd_stored_tensors += 1
                        self.stats.ssd_stored_bytes += nbytes
                    else:
                        logger.warning(
                            "SSD store of %s hit ENOSPC even after "
                            "compaction; degrading to the CPU tier", tid,
                        )
                        placement = Tier.CPU
                        self.pool.overflow_allowed = True
                        self.stats.failovers += 1
                        self.stats.failover_bytes += nbytes
                else:
                    self._tier[tid] = Tier.SSD
                    self._tid_owner[tid] = owner
                    self.stats.ssd_stored_tensors += 1
                    self.stats.ssd_stored_bytes += nbytes
            if placement is Tier.CPU:
                # Global death means nowhere to demote *to*; a latch
                # scoped to other tenants still leaves their residents
                # demotable (and _make_room skips the dead ones).
                if not self._ssd_unhealthy():
                    self._make_room(nbytes, events)
                self.cpu.store(tid, data)
                self._tier[tid] = Tier.CPU
                self._tid_owner[tid] = owner
                self._lru[tid] = nbytes
                self._lru.move_to_end(tid)
                self.stats.cpu_stored_tensors += 1
                self.stats.cpu_stored_bytes += nbytes
        self._fire(events)

    def _retry_store_after_compaction(self, tid: TensorID, data) -> bool:
        """ENOSPC recovery: force a GC pass to reclaim dead bytes, then
        retry the SSD store once.  Holds the tier lock (callers do).
        Returns True when the retried write landed."""
        compact = getattr(self.ssd.file_store, "compact", None)
        if compact is None:
            return False
        logger.warning(
            "SSD store of %s hit ENOSPC; compacting and retrying", tid
        )
        try:
            compact(max_dead_ratio=0.01)
        except OSError:
            return False  # compaction itself needs space it cannot get
        try:
            self.ssd.store(tid, data)
        except OSError as exc:
            if is_enospc(exc):
                return False
            raise
        return True

    def _make_room(self, nbytes: int, events: List[Tuple[TensorID, Tier]]) -> None:
        """Demote LRU pool residents until ``nbytes`` fits; holds the lock.

        With the SSD tier dead there is nowhere to demote *to*: stop
        making room and let the pool overflow instead (degraded mode).
        A *tenant-scoped* latch only shrinks the victim set — that
        tenant's residents are pinned (their spill target is gone) while
        everyone else's remain demotable.
        """
        while self._lru and self.cpu_free_bytes() < nbytes:
            if self._ssd_unhealthy():
                self._mark_ssd_dead()
                return
            victim: Optional[TensorID] = None
            victim_bytes = 0
            for cand, cand_bytes in self._lru.items():
                cand_owner = self._tid_owner.get(cand, DEFAULT_TENANT)
                if self._tenant_breakers and self._ssd_unhealthy(cand_owner):
                    continue  # this tenant's bytes cannot spill anymore
                victim, victim_bytes = cand, cand_bytes
                break
            if victim is None:
                # Every resident belongs to a dead-SSD tenant: nothing
                # can spill, so the pool overflows (already allowed by
                # the tenant breaker) rather than failing the store.
                return
            if not self._demote_locked(victim, victim_bytes, events):
                # The spill could not run (device full, not dead): stop
                # demoting and let the pool overflow rather than fail.
                self.pool.overflow_allowed = True
                return

    def _demote_locked(
        self, tid: TensorID, nbytes: int, events: List[Tuple[TensorID, Tier]]
    ) -> bool:
        """Returns True when the victim was demoted (or its spill was
        queued); False when the spill could not run and the victim stays
        CPU-resident — the caller stops making room."""
        owner = self._tid_owner.get(tid, DEFAULT_TENANT)
        if self._scheduler is None:
            buf = self.cpu.peek(tid)
            if buf is None:  # raced with a release
                self._lru.pop(tid, None)
                self._tier.pop(tid, None)
                self._tid_owner.pop(tid, None)
                return True
            try:
                retry_call(lambda: self.ssd.store(tid, buf))
            except Exception as exc:
                # The victim stays CPU-resident (nothing was evicted
                # yet): no data moved, no data lost.  A dead device
                # flips degraded mode (scoped to the victim's tenant)
                # so the caller stops demoting their residents.
                if isinstance(exc, PermanentIOError):
                    logger.warning("demotion of %s hit a dead SSD (%s)", tid, exc)
                    self._mark_ssd_dead(owner)
                    return False
                if is_enospc(exc):
                    # Full, not dead: keep the victim warm; the caller
                    # overflows the pool instead of failing the store.
                    self.stats.enospc_events += 1
                    logger.warning(
                        "demotion of %s hit ENOSPC; keeping it CPU-resident", tid
                    )
                    return False
                raise
            self.cpu.evict(tid)
        else:
            # Asynchronous spill: reclaim the pool accounting now (the
            # in-flight buffer plays the staging role), queue the SSD
            # write at DEMOTION priority — behind every load, ahead of
            # fresh stores — and keep it cancellable until it runs.
            # ``take`` transfers the arena lease along with the buffer:
            # the parked bytes are the tensor's only copy, so the arena
            # must not recycle that memory until the write lands (the
            # request's lease is released on its DONE, or handed back on
            # cancellation / failover reinstate).
            taken = self.cpu.take(tid)
            if taken is None:  # raced with a release (tier lock says no)
                self._lru.pop(tid, None)
                self._tier.pop(tid, None)
                return True
            buf, lease = taken
            self._pending_demotions[tid] = buf
            # max_retries=0: _run_demotion is stateful (it pops the
            # parked buffer), so job-level re-execution would find it
            # gone; the SSD write retries *inside* the body instead.
            # The spill is charged to (and its health attributed to) the
            # *victim's* tenant — pool pressure from tenant A must never
            # bill tenant B's demotion to A, nor let B's write failures
            # poison A's lane-health verdict.
            request = IORequest(
                lambda t=tid: self._run_demotion(t),
                kind="demote",
                priority=Priority.DEMOTION,
                tensor_id=str(tid),
                nbytes=nbytes,
                lane="ssd",
                max_retries=0,
                lease=lease,
                tenant=owner,
            )
            self._demotion_reqs[tid] = request
            self._scheduler.submit(request)
        self._lru.pop(tid, None)
        self._tier[tid] = Tier.SSD
        self.stats.demotions += 1
        self.stats.demoted_bytes += nbytes
        if self._scheduler is None:
            # Async demotions fire the tier event when the write lands
            # (:meth:`_run_demotion`), not when the spill is queued.
            events.append((tid, Tier.SSD))
        return True

    def _run_demotion(self, tid: TensorID) -> None:
        """Scheduler-side half of a demotion: the actual SSD write.

        The write runs with the tier lock released — a throttled spill
        must not stall unrelated loads — with the buffer parked in
        ``_writing_demotions`` so concurrent readers of this tid are
        still served, and mutators wait on the per-tid event.
        """
        with self._lock:
            buf = self._pending_demotions.pop(tid, None)
            request = self._demotion_reqs.pop(tid, None)
            if buf is None:
                return  # released, reloaded or re-stored before the write
            self._writing_demotions[tid] = buf
            self._writing_events[tid] = threading.Event()
        landed_tier = Tier.SSD
        try:
            try:
                retry_call(lambda: self.ssd.store(tid, buf))
            except Exception as exc:
                # The parked buffer is the only copy of this tensor: a
                # failed spill must never lose it.  Reinstate it in the
                # pinned pool (overflow allowed — reinstatement cannot be
                # refused), and write the SSD off on permanent death.
                logger.warning(
                    "demotion write for %s failed (%s); reinstating in the CPU tier",
                    tid,
                    exc,
                )
                lease: Optional[BufferLease] = None
                if request is not None:
                    # The request will complete DONE (the data is safe),
                    # but the SSD lane must still learn about the write
                    # it failed — an SSD that flakes every demotion has
                    # to accumulate toward the death verdict.
                    request.health_error = exc
                    # Reinstate keeps the parked buffer alive: detach the
                    # lease so the request's DONE does not hand the
                    # memory back to the arena while the CPU tier owns it.
                    lease = request.detach_lease()
                owner = self._tid_owner.get(tid, DEFAULT_TENANT)
                with self._lock:
                    if isinstance(exc, PermanentIOError):
                        self._mark_ssd_dead(owner)
                    elif is_enospc(exc):
                        self.stats.enospc_events += 1
                    previous_overflow = self.pool.overflow_allowed
                    self.pool.overflow_allowed = True
                    try:
                        # Zero-copy reinstate: the parked buffer (and its
                        # lease) re-enter the CPU tier as-is.
                        self.cpu.adopt(tid, buf, lease, tenant=owner)
                    finally:
                        if not self._breaker.is_open and not self._tenant_breaker_open(
                            owner
                        ):
                            self.pool.overflow_allowed = previous_overflow
                    self._tier[tid] = Tier.CPU
                    self._lru[tid] = buf.nbytes
                    self._lru.move_to_end(tid)
                    self.stats.failovers += 1
                    self.stats.failover_bytes += buf.nbytes
                landed_tier = Tier.CPU
        finally:
            with self._lock:
                self._writing_demotions.pop(tid, None)
                event = self._writing_events.pop(tid, None)
            if event is not None:
                event.set()
        self._fire([(tid, landed_tier)])

    def _await_inflight_write(self, tid: TensorID) -> None:
        """Block (lock-free) until an in-flight spill write of ``tid``
        lands, so store/release never race the background writer."""
        while True:
            with self._lock:
                event = self._writing_events.get(tid)
            if event is None:
                return
            event.wait()

    def _cancel_pending_demotion_locked(
        self, tid: TensorID
    ) -> Optional[Tuple["np.ndarray", Optional[BufferLease]]]:
        """Pull ``tid`` out of the demotion queue; returns (buffer, lease).

        Whoever pops the parked buffer first — this canceller or the
        lane worker's :meth:`_run_demotion` — wins the race under the
        tier lock; a successful pop here means the SSD write never
        happens, and the queued request is cancelled (or no-ops if the
        worker already claimed it).  The arena lease is detached from the
        request *before* the cancel, so its terminal state cannot release
        memory the caller is about to adopt; the caller now owns the
        lease (release it, or adopt it back into the CPU tier).
        """
        buf = self._pending_demotions.pop(tid, None)
        if buf is None:
            return None
        request = self._demotion_reqs.pop(tid, None)
        lease: Optional[BufferLease] = None
        if request is not None:
            lease = request.detach_lease()
            if self._scheduler is not None:
                self._scheduler.cancel(request)
        self.stats.cancelled_demotions += 1
        self.stats.cancelled_demotion_bytes += buf.nbytes
        return buf, lease

    @property
    def free_watermark_bytes(self) -> int:
        return self._free_watermark_bytes

    def set_free_watermark(self, nbytes: int) -> None:
        """Set the free-headroom target the pool maintains between steps.

        The adaptive controller raises the watermark when the next step's
        forward burst would outrun the SSD drain rate — proactively
        demoting cold residents while the lanes are idle is cheaper than
        demoting them inside the burst, on the store critical path.  The
        value is clamped to the pool capacity; it takes effect at the
        next :meth:`apply_watermark` call.
        """
        if nbytes < 0:
            raise ValueError(f"watermark must be >= 0: {nbytes}")
        self._free_watermark_bytes = min(int(nbytes), self.cpu_capacity_bytes)

    def apply_watermark(self) -> int:
        """Demote LRU residents until free headroom meets the watermark.

        Returns the number of tensors demoted.  With a scheduler attached
        the SSD writes queue at DEMOTION priority (behind every load), so
        applying the watermark between steps costs idle-lane time only —
        and each spill stays cancellable until it runs.
        """
        events: List[Tuple[TensorID, Tier]] = []
        demoted = 0
        with self._lock:
            if self._lane_slow():
                # Brownout shed: proactive demotions are optional traffic
                # — keep them off a lane that is already struggling so
                # blocking loads get what bandwidth remains.
                return 0
            while self._lru and self.cpu_free_bytes() < self._free_watermark_bytes:
                victim, victim_bytes = next(iter(self._lru.items()))
                if not self._demote_locked(victim, victim_bytes, events):
                    break
                demoted += 1
        self._fire(events)
        return demoted

    def demote(self, tid: TensorID) -> bool:
        """Explicitly spill one CPU-resident tensor to SSD (True if moved)."""
        events: List[Tuple[TensorID, Tier]] = []
        with self._lock:
            nbytes = self._lru.get(tid)
            if nbytes is None:
                return False
            moved = self._demote_locked(tid, nbytes, events)
        self._fire(events)
        return moved

    # ------------------------------------------------------------------- load
    def load(self, tid: TensorID, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        events: List[Tuple[TensorID, Tier]] = []
        with self._lock:
            tier = self._tier.get(tid)
            if tier is Tier.CPU:
                data = self.cpu.load(tid, shape, dtype)
                self._lru.move_to_end(tid)
                self.stats.cpu_hits += 1
                self.stats.cpu_hit_bytes += data.nbytes
                return data
            if tier is None:
                raise KeyError(f"tensor {tid} was never stored in any tier")
            writing = self._writing_demotions.get(tid)
            if writing is not None:
                # The spill write is mid-flight on a lane worker: the
                # parked buffer is authoritative — serve it without
                # waiting for (or blocking) the write.
                self.stats.demotion_forward_hits += 1
                return owned_copy(writing.reshape(shape), dtype, self.cpu.copy_stats)
            pending = self._pending_demotions.get(tid)
            if pending is not None:
                # Demotion forwarding: the victim is being re-read while
                # its spill is still queued — serve the in-flight buffer.
                # When the pool has room again, cancel the now-pointless
                # SSD write and reinstate the tensor (a promotion that
                # never touched the SSD); otherwise the spill proceeds,
                # since the queued buffer is the only backing copy.
                data = owned_copy(pending.reshape(shape), dtype, self.cpu.copy_stats)
                self.stats.demotion_forward_hits += 1
                if self.promote_on_load and pending.nbytes <= self.cpu_free_bytes():
                    cancelled = self._cancel_pending_demotion_locked(tid)
                    if cancelled is not None:
                        # Zero-copy promotion: the parked buffer (and its
                        # lease) re-enter the CPU tier without touching
                        # the SSD — or copying the bytes again.  Charged
                        # to the owning tenant, not the (possibly
                        # different) reader.
                        buf, lease = cancelled
                        self.cpu.adopt(
                            tid, buf, lease,
                            tenant=self._tid_owner.get(tid, DEFAULT_TENANT),
                        )
                        self._tier[tid] = Tier.CPU
                        self._lru[tid] = buf.nbytes
                        self.stats.promotions += 1
                        self.stats.promoted_bytes += buf.nbytes
                        events.append((tid, Tier.CPU))
            else:
                if self._scheduler is None:
                    # Standalone mode: apply the retry rule here (with a
                    # scheduler, the surrounding load request retries).
                    data = retry_call(lambda: self.ssd.load(tid, shape, dtype))
                else:
                    data = self.ssd.load(tid, shape, dtype)
                self.stats.ssd_loads += 1
                self.stats.ssd_loaded_bytes += data.nbytes
                if self.promote_on_load and data.nbytes <= self.cpu_free_bytes():
                    # Promote in the owner's scope: the pool bytes must
                    # land on the tenant that stored the tensor even when
                    # a different tenant's thread triggers the promotion.
                    with tenant_scope(self._tid_owner.get(tid, DEFAULT_TENANT)):
                        self.cpu.store(tid, data)
                    self.ssd.release(tid)
                    self._tier[tid] = Tier.CPU
                    self._lru[tid] = data.nbytes
                    self.stats.promotions += 1
                    self.stats.promoted_bytes += data.nbytes
                    events.append((tid, Tier.CPU))
        self._fire(events)
        return data

    # ---------------------------------------------------------------- reclaim
    def release(self, tid: TensorID) -> None:
        # A spill write in flight lands before its file is deleted (the
        # writer owns the bytes until then).
        self._await_inflight_write(tid)
        with self._lock:
            tier = self._tier.pop(tid, None)
            self._lru.pop(tid, None)
            self._tid_owner.pop(tid, None)
            if tier is Tier.CPU:
                self.cpu.evict(tid)
            elif tier is Tier.SSD:
                # A queued demotion of a released tensor is an SSD write
                # for data nobody will read again: cancel it outright.
                cancelled = self._cancel_pending_demotion_locked(tid)
                if cancelled is None:
                    self.ssd.release(tid)
                else:
                    _, lease = cancelled
                    if lease is not None:
                        lease.release()

    def location(self, tid: TensorID) -> str:
        with self._lock:
            tier = self._tier.get(tid)
            demoting = tid in self._pending_demotions
        if tier is Tier.CPU:
            return f"tier:cpu:{self.cpu.location(tid)}"
        if tier is Tier.SSD:
            suffix = "!queued" if demoting else ""
            return f"tier:ssd{suffix}:{self.ssd.location(tid)}"
        return f"tier:gpu:{tid.filename()}"

    def flush(self) -> None:
        """Flush a partially-filled SSD chunk, if the SSD tier is chunked."""
        flush = getattr(self.ssd.file_store, "flush", None)
        if flush is not None:
            flush()

    def store_lane(self, tid: TensorID, nbytes: int) -> str:
        """Predict the lane from the policy's placement rule.

        The actual landing tier is decided inside :meth:`store` (the pool
        may have filled meanwhile); the prediction only routes the queue
        slot, and the pool-capacity input mirrors :meth:`store`'s ("every
        resident is demotable").
        """
        tenant = current_tenant()
        if self._ssd_unhealthy(tenant):
            return "cpu"  # dead SSD (for this tenant): placement fails over
        placement = self.policy.place_for(
            tenant, nbytes=nbytes, cpu_free_bytes=self.cpu_capacity_bytes
        )
        if (
            placement is Tier.SSD
            and self._lane_slow()
            and nbytes <= self.cpu_free_bytes()
        ):
            return "cpu"  # brownout shed: mirror store()'s placement
        return "cpu" if placement is Tier.CPU else "ssd"

    def shutdown(self) -> None:
        with self._lock:
            # Queued spill writes are pointless now; drop them without
            # touching the cancellation counters (nothing was saved,
            # the whole store is going away).
            for request in self._demotion_reqs.values():
                request.cancel()
            self._pending_demotions.clear()
            self._demotion_reqs.clear()
            self._tier.clear()
            self._lru.clear()
            self._tid_owner.clear()
        self.cpu.shutdown()
        self.ssd.shutdown()
