"""The SSDTrain tensor cache (paper Sec. III-B, III-C).

The cache is "the in-memory structure that manages the references to all
activations and tracks activations' states, including if they are being
offloaded, the path in the file system, etc."  It plugs into the engine
through four mechanisms:

1. the **saved-tensor pack/unpack hook pair** (Alg. 1) — pack decides
   pass-through / keep / offload and returns a :class:`TensorID` that the
   autograd graph holds instead of the tensor;
2. **module forward hook pairs** — maintain the current scope stack and
   record the order activations are produced in;
3. **module backward hook pairs** — entering a module in backward triggers
   prefetching of upcoming activations; exiting removes the module from
   every activation's scope list, releasing tensors no longer in use;
4. **scheduler hints** — micro-batch switches and step boundaries
   (Fig. 2 markers 2-4).

Data forwarding (Sec. III-C2): a load that races an in-flight store simply
adopts the reference the store job still holds — no SSD read happens.
Beyond the paper, the two FIFO pools are replaced by one priority-aware
:class:`~repro.io.scheduler.IOScheduler`: stores whose tensor was consumed
via forwarding while still queued are *cancelled* (no SSD write either),
and a pending prefetch is *promoted* to the blocking class the moment its
segment's backward arrives.
"""

from __future__ import annotations

import enum
import logging
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.ids import TensorID, TensorIDRegistry
from repro.core.offloader import Offloader
from repro.core.policy import Decision, KeepReason, OffloadPolicy, StepAccounting, Tier
from repro.io.aio import IOJob, JobState
from repro.io.scheduler import IORequest, IOScheduler, Priority
from repro.tensor import flags
from repro.tensor.module import Module, RemovableHandle
from repro.tensor.saved_tensors import saved_tensors_hooks
from repro.tensor.storage import Device
from repro.tensor.tensor import Tensor

logger = logging.getLogger(__name__)

#: Sentinel scope id for tensors saved outside any tracked sub-module
#: (e.g. the loss logits saved by CrossEntropy in the root forward).
_ROOT_SCOPE = -1


class RecordState(enum.Enum):
    OFFLOADING = "being_stored"    # store in flight (Fig. 4c)
    OFFLOADED = "on_ssd"
    LOADING = "being_loaded"       # prefetch in flight (Fig. 4d)
    LOADED = "loaded"
    KEPT = "kept_in_gpu_memory"
    CONSUMED = "consumed"


class ActivationRecord:
    """State of one managed activation (one row of the Fig. 4 tables)."""

    __slots__ = (
        "tid",
        "shape",
        "dtype",
        "nbytes",
        "state",
        "tensor",
        "scopes",
        "store_job",
        "load_job",
        "forwarded",
        "keep_reason",
        "loaded_event",
        "error",
        "lock",
        "location",
        "tier",
    )

    def __init__(self, tid: TensorID, tensor: Tensor) -> None:
        self.tid = tid
        self.shape = tuple(tensor.shape)
        self.dtype = tensor.dtype
        self.nbytes = tensor.nbytes
        self.state = RecordState.KEPT
        self.tensor: Optional[Tensor] = tensor
        self.scopes: List[int] = []
        self.store_job: Optional[IOJob] = None
        self.load_job: Optional[IOJob] = None
        self.forwarded = False
        self.keep_reason: Optional[KeepReason] = None
        self.loaded_event = threading.Event()
        self.error: Optional[BaseException] = None
        self.lock = threading.Lock()
        self.location = "gpu"
        #: Which tier holds the backing copy (GPU until a store completes;
        #: a tiered offloader reports CPU or SSD via ``tier_of``).
        self.tier = Tier.GPU


@dataclass
class MicrobatchRecords:
    """Per-micro-batch bookkeeping ("SSDTrain keeps individual records for
    each micro-batch", Sec. III-A)."""

    records: Dict[TensorID, ActivationRecord] = field(default_factory=dict)
    pack_order: List[TensorID] = field(default_factory=list)
    tids_by_scope: Dict[int, List[TensorID]] = field(default_factory=dict)
    backward_cursor: int = 0


@dataclass
class CacheStats:
    """Cumulative statistics exposed for benchmarks and tests."""

    stored_tensors: int = 0
    stored_bytes: int = 0
    loaded_tensors: int = 0
    loaded_bytes: int = 0
    forwarded_tensors: int = 0
    dedup_hits: int = 0
    kept_tensors: int = 0
    kept_bytes: int = 0
    passed_tensors: int = 0
    prefetch_issued: int = 0
    unpack_waits: int = 0
    #: Seconds backward spent blocked in unpack waiting for a load — the
    #: engine's observed I/O stall (the adaptive controller's trim signal).
    unpack_wait_s: float = 0.0
    #: Stores cancelled while still queued because forwarding consumed the
    #: tensor first (``stored_*`` count submissions; subtract these for
    #: the traffic that actually hit the backend).
    cancelled_stores: int = 0
    cancelled_store_bytes: int = 0
    #: Pending prefetch loads re-queued as blocking when their consumer
    #: arrived (scheduler deadline promotion).
    promoted_loads: int = 0
    #: Stores that failed terminally (retry budget exhausted) but whose
    #: tensor was still in hand — recovered by keeping it GPU-resident:
    #: the offload is lost, the training step is not.
    store_failures: int = 0
    #: Loads that failed terminally; the error surfaces to the blocking
    #: unpack as a RuntimeError instead of a hang.
    load_failures: int = 0
    #: Prefetch rounds skipped because the load lane is in brownout
    #: (slow verdict): optional look-ahead traffic sheds so blocking
    #: loads get the remaining bandwidth.
    prefetch_shed: int = 0
    #: Data-plane copy map (refreshed from the offloader's telemetry by
    #: :meth:`TensorCache.dataplane_stats` / ``on_step_end``): bytes the
    #: backend actually memcpy'd, allocations the pooled/streaming paths
    #: avoided versus the legacy copy map, and the arena's lease hit rate.
    bytes_copied: int = 0
    allocs_avoided: int = 0
    arena_hit_rate: float = 0.0


@dataclass
class StepCacheStats:
    """One step's deltas of :class:`CacheStats`, plus the tiered pool's
    traffic/capacity — the per-step feed the adaptive controller
    (:mod:`repro.core.autotune`) consumes via
    :meth:`TensorCache.consume_step_stats`."""

    stored_tensors: int = 0
    stored_bytes: int = 0
    kept_tensors: int = 0
    kept_bytes: int = 0
    loaded_tensors: int = 0
    loaded_bytes: int = 0
    forwarded_tensors: int = 0
    cancelled_stores: int = 0
    #: Seconds backward spent blocked in unpack this step (observed stall).
    unpack_wait_s: float = 0.0
    #: Tiered backends only: bytes the pinned pool absorbed this step and
    #: its capacity (0 when the offloader has no CPU tier).
    cpu_stored_bytes: int = 0
    cpu_pool_capacity_bytes: int = 0

    @property
    def activation_bytes(self) -> int:
        """Eligible activation volume produced this step (offloaded +
        kept) — the ``activation_bytes_per_step`` input of the paper's
        budget formula."""
        return self.stored_bytes + self.kept_bytes


class TensorCache:
    """The activation offloading manager.

    Typical use (the "few lines added to the existing script", Sec. III-A)::

        cache = TensorCache(offloader=SSDOffloader(tmpdir))
        cache.register_weights(model)      # bookkeep weights to exclude
        cache.attach(model)                # register PyTorch-style hooks
        with cache:                        # install pack/unpack hooks
            loss = model(tokens, targets)
            cache.on_backward_begin()
            loss.backward()
        cache.on_step_end()

    (The :class:`~repro.train.trainer.Trainer` automates all of this,
    including the scheduler hints.)
    """

    def __init__(
        self,
        offloader: Offloader,
        policy: Optional[OffloadPolicy] = None,
        registry: Optional[TensorIDRegistry] = None,
        num_store_workers: int = 2,
        num_load_workers: int = 2,
        prefetch_window: int = 8,
        scheduler: Optional[IOScheduler] = None,
        fifo_io: bool = False,
    ) -> None:
        self.offloader = offloader
        self.policy = policy if policy is not None else OffloadPolicy()
        self.registry = registry if registry is not None else TensorIDRegistry()
        # One priority-aware scheduler replaces the paper's two FIFO
        # pools; ``fifo_io=True`` restores FIFO dequeue for A/B runs.
        self.scheduler = (
            scheduler
            if scheduler is not None
            else IOScheduler(
                num_store_workers=num_store_workers,
                num_load_workers=num_load_workers,
                fifo=fifo_io,
            )
        )
        self.prefetch_window = prefetch_window
        self.stats = CacheStats()
        self.accounting = StepAccounting()
        #: Snapshot of cumulative counters at the last consume_step_stats
        #: call (the adaptive controller's per-step delta basis).
        self._step_stats_snapshot: Dict[str, float] = {}

        self._lock = threading.Lock()
        # Guards the stored/kept counter pairs (stats + step accounting)
        # that are written from both the training thread (pack_hook) and
        # scheduler workers (store-failure recovery reverses them).  The
        # offload budget is decided off accounting.offloaded_bytes, so a
        # lost update is a policy error, not just a stats blemish.
        self._counter_lock = threading.Lock()
        self._microbatches: Dict[int, MicrobatchRecords] = {0: MicrobatchRecords()}
        self._current_mb = 0
        self._scope_stack: List[Module] = []
        self._handles: List[RemovableHandle] = []
        self._hooks_ctx: Optional[saved_tensors_hooks] = None
        self._device: Optional[Device] = None
        self._in_keep_scope = False
        self._keep_all_hint = False
        self._step_index = 0
        # Profiled on step 0: the id of the last top-level segment, whose
        # activations are kept because its backward begins immediately
        # (Fig. 2 marker 4).
        self._segment_order: List[int] = []
        self._last_segment_id: Optional[int] = None
        self._shutdown = False
        # A tiered backend moves tensors between tiers behind the cache's
        # back (demotion on pool pressure, promotion on load); subscribe
        # so each record's tier/location column stays truthful.
        set_listener = getattr(offloader, "set_tier_listener", None)
        if set_listener is not None:
            set_listener(self._on_tier_change)
        # A tiered backend routes its demotion writes through the same
        # scheduler (DEMOTION class on the SSD lane) so spills queue
        # behind loads and stay cancellable.
        set_scheduler = getattr(offloader, "set_scheduler", None)
        if set_scheduler is not None:
            set_scheduler(self.scheduler)

    def _on_tier_change(self, tid: TensorID, tier: Tier) -> None:
        rec = self._find_record(tid)
        if rec is None:
            return
        with rec.lock:
            rec.tier = tier
            rec.location = self.offloader.location(tid)

    # ------------------------------------------------------------- plumbing
    @property
    def current(self) -> MicrobatchRecords:
        return self._microbatches[self._current_mb]

    @property
    def store_pool(self) -> IOScheduler:
        """Deprecated alias from the two-FIFO-pool era; both channels now
        live on the scheduler (``drain``/``pending`` keep working)."""
        warnings.warn(
            "TensorCache.store_pool is deprecated; the two FIFO pools were "
            "replaced by one priority scheduler — use TensorCache.scheduler",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.scheduler

    @property
    def load_pool(self) -> IOScheduler:
        """Deprecated alias; see :attr:`store_pool`."""
        warnings.warn(
            "TensorCache.load_pool is deprecated; the two FIFO pools were "
            "replaced by one priority scheduler — use TensorCache.scheduler",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.scheduler

    def register_weights(self, module: Module) -> int:
        """Record all parameters (and transposes) in the exclusion set."""
        return self.registry.record_module_weights(module)

    def attach(self, module: Module) -> None:
        """Register forward/backward hook pairs on every sub-module."""
        for sub in module.modules():
            self._handles.append(sub.register_forward_pre_hook(self._forward_pre_hook))
            self._handles.append(sub.register_forward_hook(self._forward_hook))
            self._handles.append(
                sub.register_full_backward_pre_hook(self._backward_pre_hook)
            )
            self._handles.append(sub.register_full_backward_hook(self._backward_hook))

    def detach(self) -> None:
        """Remove all module hooks."""
        for handle in self._handles:
            handle.remove()
        self._handles.clear()

    def __enter__(self) -> "TensorCache":
        self._hooks_ctx = saved_tensors_hooks(self.pack_hook, self.unpack_hook)
        self._hooks_ctx.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._hooks_ctx is not None:
            self._hooks_ctx.__exit__(exc_type, exc, tb)
            self._hooks_ctx = None

    def shutdown(self) -> None:
        """Drain pools and release every record (idempotent)."""
        if self._shutdown:
            return
        self._shutdown = True
        self.scheduler.shutdown()
        with self._lock:
            tables = list(self._microbatches.values())
            self._microbatches = {0: MicrobatchRecords()}
        for table in tables:
            for rec in table.records.values():
                rec.tensor = None
        self.offloader.shutdown()
        self.detach()

    # ----------------------------------------------------- scheduler hints
    def set_microbatch(self, index: int) -> None:
        """Hint 2 in Fig. 2: switch the per-micro-batch record table."""
        with self._lock:
            if index not in self._microbatches:
                self._microbatches[index] = MicrobatchRecords()
            self._current_mb = index

    def hint_keep_remaining(self, keep: bool = True) -> None:
        """Scheduler hint: backward begins right after the current forward,
        so stop offloading (the Fig. 2 marker-4 case)."""
        self._keep_all_hint = keep

    def on_backward_begin(self) -> None:
        """Hint 3/5: backward for the current micro-batch starts; warm the
        prefetch pipeline from the tail of the pack order."""
        table = self.current
        table.backward_cursor = len(table.pack_order)
        self._prefetch_ahead(table)

    def on_backward_end(self) -> None:
        """Hint: backward for the current micro-batch finished.

        Releases any record whose scope never fires a backward-exit hook
        (root-scope saves) or whose release lagged — by now every saved
        tensor has been consumed.
        """
        table = self.current
        with self._lock:
            records = list(table.records.values())
        for rec in records:
            with rec.lock:
                if rec.state in (RecordState.LOADED, RecordState.KEPT):
                    rec.tensor = None
                    rec.scopes.clear()
                    rec.state = RecordState.CONSUMED

    def on_step_end(self) -> None:
        """Step boundary: wait for in-flight stores, release records, and
        finalize first-step profiling."""
        self.scheduler.drain()
        with self._lock:
            tables = list(self._microbatches.items())
            self._microbatches = {self._current_mb: MicrobatchRecords()}
        leftover = 0
        for _, table in tables:
            for rec in table.records.values():
                if rec.state not in (RecordState.CONSUMED,):
                    leftover += 1
                rec.tensor = None
                if rec.location != "gpu":
                    # Reclaim SSD space for this step's files.
                    try:
                        self._delete_backing(rec.tid)
                    except Exception:  # pragma: no cover - best-effort cleanup
                        logger.debug("cleanup failed for %s", rec.tid)
        if leftover:
            logger.debug("%d records not consumed by backward", leftover)
        if self._step_index == 0 and self._segment_order:
            self._last_segment_id = self._segment_order[-1]
        self._segment_order = []
        self._step_index += 1
        self._keep_all_hint = False
        self.accounting.reset()
        self.dataplane_stats()  # keep the copy-map counters step-fresh

    def dataplane_stats(self):
        """The backend's copy-map telemetry (see
        :class:`~repro.io.buffers.DataPlaneStats`), refreshed into
        :class:`CacheStats` so ``stats.bytes_copied`` /
        ``stats.allocs_avoided`` / ``stats.arena_hit_rate`` are always
        readable alongside the traffic counters."""
        from repro.io.buffers import DataPlaneStats

        getter = getattr(self.offloader, "dataplane_stats", None)
        dp = getter() if getter is not None else DataPlaneStats()
        self.stats.bytes_copied = dp.bytes_copied
        self.stats.allocs_avoided = dp.allocs_avoided
        self.stats.arena_hit_rate = dp.arena_hit_rate
        return dp

    # ----------------------------------------------------------- autotuning
    def consume_step_stats(self) -> StepCacheStats:
        """Return the deltas of the cumulative counters since the last
        call (the adaptive controller's per-step observation feed)."""
        cumulative = {
            "stored_tensors": self.stats.stored_tensors,
            "stored_bytes": self.stats.stored_bytes,
            "kept_tensors": self.stats.kept_tensors,
            "kept_bytes": self.stats.kept_bytes,
            "loaded_tensors": self.stats.loaded_tensors,
            "loaded_bytes": self.stats.loaded_bytes,
            "forwarded_tensors": self.stats.forwarded_tensors,
            "cancelled_stores": self.stats.cancelled_stores,
            "unpack_wait_s": self.stats.unpack_wait_s,
        }
        tier_stats = getattr(self.offloader, "stats", None)
        if tier_stats is not None and hasattr(tier_stats, "cpu_stored_bytes"):
            cumulative["cpu_stored_bytes"] = tier_stats.cpu_stored_bytes
        previous = self._step_stats_snapshot
        delta = StepCacheStats(
            **{key: value - previous.get(key, 0) for key, value in cumulative.items()}
        )
        delta.cpu_pool_capacity_bytes = getattr(self.offloader, "cpu_capacity_bytes", 0)
        self._step_stats_snapshot = cumulative
        return delta

    def apply_autotune(self, decision: Any) -> None:
        """Install a controller decision's knobs live, between steps.

        ``decision`` duck-types :class:`repro.core.autotune.ControllerDecision`:
        ``offload_budget_bytes`` lands in the policy (only when the
        decision says it re-tuned — a ``None`` budget would otherwise
        remove the cap), ``prefetch_window`` replaces the cache's
        look-ahead depth, and ``cpu_free_watermark_bytes`` re-targets a
        tiered backend's free headroom (demoting LRU residents now, while
        the lanes are idle, instead of inside the next forward burst).
        """
        if getattr(decision, "retuned", False):
            self.policy.install_budget(decision.offload_budget_bytes)
        window = getattr(decision, "prefetch_window", None)
        if window is not None:
            self.prefetch_window = max(1, int(window))
        watermark = getattr(decision, "cpu_free_watermark_bytes", None)
        set_watermark = getattr(self.offloader, "set_free_watermark", None)
        if watermark is not None and set_watermark is not None:
            set_watermark(watermark)
            self.offloader.apply_watermark()

    def _delete_backing(self, tid: TensorID) -> None:
        release = getattr(self.offloader, "release", None)
        if release is not None:
            release(tid)
            return
        # Legacy duck-typed backends without the Offloader.release API.
        store = getattr(self.offloader, "file_store", None)
        if store is not None:
            store.delete(tid.filename())
        evict = getattr(self.offloader, "evict", None)
        if evict is not None:
            evict(tid)

    # ----------------------------------------------------------- fwd hooks
    def _forward_pre_hook(self, module: Module, inputs: Tuple[Any, ...]) -> None:
        if flags.in_backward():
            return  # recomputation re-enters modules; scopes stay backward's
        self._scope_stack.append(module)
        if len(self._scope_stack) == 2:  # a top-level segment under the root
            self._segment_order.append(id(module))
            if (
                self.policy.config.keep_last_module
                and self._last_segment_id is not None
                and id(module) == self._last_segment_id
            ):
                self._in_keep_scope = True

    def _forward_hook(self, module: Module, inputs: Tuple[Any, ...], output: Any) -> None:
        if flags.in_backward():
            return
        if self._scope_stack and self._scope_stack[-1] is module:
            self._scope_stack.pop()
        if len(self._scope_stack) == 1 and self._in_keep_scope:
            self._in_keep_scope = False

    # ----------------------------------------------------------- bwd hooks
    def _backward_pre_hook(self, module: Module, grad_output: Any) -> None:
        """Backward enters a module: its own saved tensors are now on the
        critical path (deadline promotion of any pending prefetches),
        and the look-ahead window advances."""
        table = self.current
        with self._lock:
            tids = list(table.tids_by_scope.get(id(module), []))
        for tid in tids:
            rec = table.records.get(tid)
            if rec is None:
                continue
            self._ensure_available(rec, blocking=True)
        self._prefetch_ahead(table)

    def _backward_hook(self, module: Module, grad_input: Any) -> None:
        """Backward exits a module: shrink scope lists, release free records."""
        table = self.current
        with self._lock:
            tids = table.tids_by_scope.pop(id(module), [])
        for tid in tids:
            rec = table.records.get(tid)
            if rec is None:
                continue
            with rec.lock:
                if id(module) in rec.scopes:
                    rec.scopes.remove(id(module))
                if not rec.scopes and rec.state in (RecordState.LOADED, RecordState.KEPT):
                    rec.tensor = None
                    rec.state = RecordState.CONSUMED

    # -------------------------------------------------------- pack / unpack
    def pack_hook(self, t: Any) -> Any:
        """Alg. 1 ``pack_hook``: decide and return graph-resident object."""
        if not isinstance(t, Tensor):
            return t
        decision_inputs = dict(
            is_weight=self.registry.is_weight(t),
            is_cpu=t.is_cpu,
            numel=t.numel,
            nbytes=t.nbytes,
            in_backward=flags.in_backward(),
            in_keep_scope=self._in_keep_scope or self._keep_all_hint,
            accounting=self.accounting,
        )
        decision = self.policy.decide(**decision_inputs)
        if decision is Decision.PASS_THROUGH:
            self.stats.passed_tensors += 1
            self.accounting.passed_bytes += t.nbytes
            return t

        if self._device is None:
            self._device = t.device
        tid = self.registry.get_id(t)
        table = self.current
        self.accounting.pack_calls += 1
        # The scope of this save is the innermost module — the one whose
        # backward consumes the tensor.  (The root module's backward-exit
        # hook cannot fire — its inputs are token ids without grads — so
        # root-scope saves are released by on_backward_end instead.)
        if len(self._scope_stack) > 1:
            scope_ids = [id(self._scope_stack[-1])]
        else:
            scope_ids = [_ROOT_SCOPE]

        with self._lock:
            rec = table.records.get(tid)
            if rec is not None:
                # Deduplication: same tensor saved again (another op or a
                # view) — extend scopes, never store twice (Sec. III-C1).
                self.stats.dedup_hits += 1
                self.accounting.dedup_hits += 1
                self._extend_scopes(table, rec, scope_ids)
                return tid
            rec = ActivationRecord(tid, t)
            table.records[tid] = rec
            table.pack_order.append(tid)
            self._extend_scopes(table, rec, scope_ids)

        if decision is Decision.KEEP:
            rec.state = RecordState.KEPT
            rec.keep_reason = self.policy.keep_reason(
                in_backward=decision_inputs["in_backward"],
                in_keep_scope=decision_inputs["in_keep_scope"],
                accounting=self.accounting,
            )
            rec.loaded_event.set()
            with self._counter_lock:
                self.stats.kept_tensors += 1
                self.stats.kept_bytes += t.nbytes
                self.accounting.kept_bytes += t.nbytes
            return tid

        # Decision.OFFLOAD: async store; the job holds the only strong
        # reference after this function returns, and drops it on completion.
        rec.state = RecordState.OFFLOADING
        rec.location = self.offloader.location(tid)
        with self._counter_lock:
            self.accounting.offloaded_bytes += t.nbytes
            self.stats.stored_tensors += 1
            self.stats.stored_bytes += t.nbytes
        register = getattr(self.offloader, "register_tensor", None)
        if register is not None:
            register(t)

        def do_store(tensor: Tensor = t, record: ActivationRecord = rec) -> None:
            self.offloader.store(record.tid, tensor.data)

        job = self.scheduler.submit(
            IORequest(
                do_store,
                kind="store",
                priority=Priority.STORE,
                tensor_id=str(tid),
                nbytes=t.nbytes,
                lane=self.offloader.store_lane(tid, t.nbytes),
            )
        )
        rec.store_job = job
        job.add_done_callback(lambda j, record=rec: self._on_store_done(record, j))
        return tid

    def _extend_scopes(self, table: MicrobatchRecords, rec: ActivationRecord, scope_ids: List[int]) -> None:
        for sid in scope_ids:
            rec.scopes.append(sid)
            table.tids_by_scope.setdefault(sid, []).append(rec.tid)

    def _on_store_done(self, rec: ActivationRecord, job: IOJob) -> None:
        if job.state is JobState.CANCELLED:
            # The cancelling thread (forwarding in _ensure_available)
            # already published LOADED under rec.lock — which it may
            # still hold, so do not take it here.
            return
        with rec.lock:
            if job.error is not None:
                if rec.tensor is not None:
                    # Store-failure recovery: the write never landed (the
                    # request's bounded retries included), but the pack
                    # closure's reference is still alive — keep the
                    # tensor GPU-resident and let backward consume it
                    # directly.  The offload's memory saving is lost for
                    # this tensor; the step's numerics are not, and the
                    # failure still shows up in the stats/health surface.
                    # The pack-time offload accounting is reversed to
                    # kept: the bytes moved nothing, so they must not
                    # consume offload budget or feed the controller as
                    # store traffic that never happened.
                    with self._counter_lock:
                        self.stats.store_failures += 1
                        self.stats.stored_tensors -= 1
                        self.stats.stored_bytes -= rec.nbytes
                        self.stats.kept_tensors += 1
                        self.stats.kept_bytes += rec.nbytes
                        self.accounting.offloaded_bytes -= rec.nbytes
                        self.accounting.kept_bytes += rec.nbytes
                    logger.warning(
                        "store failed for %s (%s); keeping tensor resident",
                        rec.tid,
                        job.error,
                    )
                    rec.state = RecordState.LOADED
                    rec.location = "gpu"
                    rec.tier = Tier.GPU
                    rec.loaded_event.set()
                    return
                rec.error = job.error
                rec.loaded_event.set()
                return
            self._refresh_placement_locked(rec)
            if rec.forwarded:
                # A consumer already adopted the in-memory reference; the
                # record stays resident (data forwarding, Sec. III-C2).
                rec.state = RecordState.LOADED
                rec.loaded_event.set()
            else:
                rec.tensor = None  # release GPU memory via refcount
                rec.state = RecordState.OFFLOADED

    def _refresh_placement_locked(self, rec: ActivationRecord) -> None:
        """Re-read where the offloader put the record; caller holds rec.lock.

        A tiered backend only knows the landing tier once the store (or a
        promotion/demotion) has actually happened, so the record's Fig. 4
        "file path" column and tier are refreshed after each transfer.
        """
        rec.location = self.offloader.location(rec.tid)
        tier_of = getattr(self.offloader, "tier_of", None)
        rec.tier = tier_of(rec.tid) if tier_of is not None else Tier.SSD

    def unpack_hook(self, obj: Any) -> Any:
        """Alg. 1 ``unpack_hook``: wait for availability, return the tensor."""
        if isinstance(obj, Tensor):
            return obj
        if not isinstance(obj, TensorID):
            return obj
        rec = self._find_record(obj)
        if rec is None:
            raise KeyError(f"tensor cache has no record for {obj}")
        self._advance_cursor(obj)
        # Unpack is the definition of backward-blocking: submit (or
        # deadline-promote) the load at the head of its lane.
        self._ensure_available(rec, blocking=True)
        if not rec.loaded_event.is_set():
            # Backward is stalled on I/O: count it and time it — the
            # adaptive controller reads the accumulated wait as the
            # step's stall signal and trims the budget accordingly.
            self.stats.unpack_waits += 1
            begin = time.monotonic()
            rec.loaded_event.wait()
            self.stats.unpack_wait_s += time.monotonic() - begin
        if rec.error is not None:
            raise RuntimeError(f"offload I/O failed for {obj}") from rec.error
        tensor = rec.tensor
        if tensor is None:
            raise RuntimeError(
                f"tensor {obj} was consumed before this unpack; "
                "scope tracking released it too early"
            )
        return tensor

    def _find_record(self, tid: TensorID) -> Optional[ActivationRecord]:
        with self._lock:
            rec = self._microbatches[self._current_mb].records.get(tid)
            if rec is not None:
                return rec
            for table in self._microbatches.values():
                if tid in table.records:
                    return table.records[tid]
        return None

    def _advance_cursor(self, tid: TensorID) -> None:
        table = self.current
        try:
            index = table.pack_order.index(tid)
        except ValueError:
            return
        if index < table.backward_cursor:
            table.backward_cursor = index
        self._prefetch_ahead(table)

    # -------------------------------------------------------------- prefetch
    def _ensure_available(self, rec: ActivationRecord, blocking: bool = False) -> None:
        """Move a record toward LOADED (forwarding, load, or no-op).

        ``blocking`` marks the request as sitting on the backward
        critical path: a fresh load is submitted at BLOCKING_LOAD
        priority, and an already-pending prefetch is deadline-promoted.
        """
        with rec.lock:
            if rec.state in (RecordState.KEPT, RecordState.LOADED):
                return
            if rec.state is RecordState.LOADING:
                if blocking and self.scheduler.promote(rec.load_job):
                    self.stats.promoted_loads += 1
                return
            if rec.state is RecordState.OFFLOADING:
                # Data forwarding: adopt the reference the store job
                # holds.  The forwarding counters are booked only on the
                # paths where forwarding actually happens — the fallback
                # reload below is a cache miss, and counting it as a
                # forwarding hit would overstate both the stats surface
                # and the per-step accounting the adaptive controller
                # feeds on.
                job = rec.store_job
                if (
                    job is not None
                    and rec.tensor is not None
                    and self.scheduler.cancel(job)
                ):
                    # The store never left the queue: the consumer owns
                    # the only copy, the queue slot and the SSD write are
                    # reclaimed, and the record never leaves the GPU.
                    self._book_forwarding_locked(rec)
                    self.stats.cancelled_stores += 1
                    self.stats.cancelled_store_bytes += rec.nbytes
                    rec.state = RecordState.LOADED
                    rec.location = "gpu"
                    rec.tier = Tier.GPU
                    rec.loaded_event.set()
                    return
                if job is not None and job.done_event.is_set():
                    # Store already finished; its done callback ran (or
                    # will run) with forwarded=False.
                    if rec.tensor is not None:
                        self._book_forwarding_locked(rec)
                        rec.state = RecordState.LOADED
                        rec.loaded_event.set()
                    else:
                        # The reference is gone: this is a reload, not a
                        # forwarding hit — no counters.
                        rec.state = RecordState.OFFLOADED
                        rec.forwarded = False
                        self._submit_load_locked(rec, blocking=blocking)
                    return
                # Store still queued-but-claimed or running: flag the
                # record so the store-done callback publishes LOADED with
                # the reference retained (the paper's original rule).
                self._book_forwarding_locked(rec)
                return
            if rec.state is RecordState.OFFLOADED:
                self._submit_load_locked(rec, blocking=blocking)
                return
            if rec.state is RecordState.CONSUMED:
                raise RuntimeError(f"record {rec.tid} already consumed")

    def _book_forwarding_locked(self, rec: ActivationRecord) -> None:
        """Record one forwarding hit; caller holds ``rec.lock`` and has
        established that forwarding genuinely happens (the lost-race
        reload path must never book one)."""
        rec.forwarded = True
        self.stats.forwarded_tensors += 1
        self.accounting.forwarding_hits += 1

    def _submit_load_locked(self, rec: ActivationRecord, blocking: bool = False) -> None:
        """Submit the tier read for ``rec``; caller holds ``rec.lock``."""
        rec.state = RecordState.LOADING
        self.stats.prefetch_issued += 1

        def do_load(record: ActivationRecord = rec) -> None:
            data = self.offloader.load(record.tid, record.shape, record.dtype)
            tensor = Tensor(data, device=self._device)
            with record.lock:
                record.tensor = tensor
                record.state = RecordState.LOADED
                # A tiered backend may have promoted the backing copy
                # (SSD -> CPU) as part of this load; re-read placement.
                self._refresh_placement_locked(record)
                record.loaded_event.set()
            self.stats.loaded_tensors += 1
            self.stats.loaded_bytes += record.nbytes

        def on_done(job: IOJob, record: ActivationRecord = rec) -> None:
            if job.error is not None:
                self.stats.load_failures += 1
                with record.lock:
                    record.error = job.error
                    record.loaded_event.set()

        job = self.scheduler.submit(
            IORequest(
                do_load,
                kind="load",
                priority=Priority.BLOCKING_LOAD if blocking else Priority.PREFETCH_LOAD,
                tensor_id=str(rec.tid),
                nbytes=rec.nbytes,
                lane=self.offloader.load_lane(rec.tid),
                # Tail-latency insurance: with hedging enabled, the
                # scheduler's watchdog may re-run this body as a
                # duplicate read.  ``do_load`` is idempotent — it
                # re-reads the same tier copy and publishes the same
                # values under the record lock.
                hedge_fn=do_load,
            )
        )
        rec.load_job = job
        job.add_done_callback(on_done)

    def _prefetch_ahead(self, table: MicrobatchRecords) -> None:
        """Ensure the next ``prefetch_window`` activations (walking the pack
        order in reverse from the backward cursor) are available or in
        flight.

        The window is positional: only the entries immediately ahead of the
        cursor are touched, bounding the prefetched resident set.  Issuing
        a bounded look-ahead on every backward module entry keeps "always
        I/O tasks in the queue" (Sec. III-C2) without reloading the whole
        step's activations up front.
        """
        health = getattr(self.scheduler, "health", None)
        if health is not None and health.is_slow("ssd"):
            # Brownout shed: look-ahead loads are optional traffic — a
            # slow (but alive) lane serves blocking work only until the
            # verdict clears.  Records the window skipped reach unpack
            # via its blocking load instead.
            self.stats.prefetch_shed += 1
            return
        cursor = table.backward_cursor
        low = max(0, cursor - self.prefetch_window)
        for index in range(cursor - 1, low - 1, -1):
            tid = table.pack_order[index]
            rec = table.records.get(tid)
            if rec is None:
                continue
            with rec.lock:
                state = rec.state
            if state in (RecordState.OFFLOADED, RecordState.OFFLOADING):
                self._ensure_available(rec)
