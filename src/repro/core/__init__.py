"""SSDTrain core: the adaptive activation offloading framework.

Public surface:

- :class:`~repro.core.tensor_cache.TensorCache` — the tensor cache that
  offloads activations during forward and prefetches them during backward.
- :class:`~repro.core.offloader.SSDOffloader` /
  :class:`~repro.core.offloader.CPUOffloader` /
  :class:`~repro.core.tiered.TieredOffloader` — transfer backends
  (:func:`~repro.core.offloader.make_offloader` builds one from a config
  target string).
- :class:`~repro.core.policy.OffloadPolicy` / ``PolicyConfig`` — Alg. 1
  decisions, knobs, and the :class:`~repro.core.policy.Tier` placement.
- :class:`~repro.core.ids.TensorIDRegistry` — ``get_id()`` deduplication
  and weight exclusion.
- :mod:`~repro.core.adaptive` — offload budget sizing from model/hardware.
- :class:`~repro.core.hints.SchedulerHints` — Megatron/DeepSpeed-style
  scheduler notifications.
"""

from repro.core.ids import TensorID, TensorIDRegistry
from repro.core.engine import (
    Engine,
    EngineConfig,
    EngineConfigError,
    EngineStats,
    PoolBooks,
    build_engine,
)
from repro.core.policy import (
    Decision,
    KeepReason,
    OffloadPolicy,
    PolicyConfig,
    StepAccounting,
    Tier,
)
from repro.core.offloader import (
    CPUOffloader,
    OFFLOAD_TARGETS,
    Offloader,
    PinnedMemoryPool,
    SSDOffloader,
    make_offloader,
)
from repro.core.tiered import TieredOffloader, TierStats
from repro.core.tensor_cache import ActivationRecord, CacheStats, RecordState, TensorCache
from repro.core.adaptive import WorkloadProfile, choose_offload_budget, configure_policy
from repro.core.autotune import (
    AutotuneController,
    ControllerConfig,
    ControllerDecision,
    StepObservation,
)
from repro.core.hints import SchedulerHints, Stage, patch_schedule

__all__ = [
    "TensorID",
    "TensorIDRegistry",
    "Engine",
    "EngineConfig",
    "EngineConfigError",
    "EngineStats",
    "PoolBooks",
    "build_engine",
    "Decision",
    "KeepReason",
    "OffloadPolicy",
    "PolicyConfig",
    "StepAccounting",
    "Offloader",
    "SSDOffloader",
    "CPUOffloader",
    "TieredOffloader",
    "TierStats",
    "Tier",
    "PinnedMemoryPool",
    "OFFLOAD_TARGETS",
    "make_offloader",
    "TensorCache",
    "ActivationRecord",
    "CacheStats",
    "RecordState",
    "WorkloadProfile",
    "choose_offload_budget",
    "configure_policy",
    "AutotuneController",
    "ControllerConfig",
    "ControllerDecision",
    "StepObservation",
    "SchedulerHints",
    "Stage",
    "patch_schedule",
]
