"""SSDTrain core: the adaptive activation offloading framework.

Public surface:

- :class:`~repro.core.tensor_cache.TensorCache` — the tensor cache that
  offloads activations during forward and prefetches them during backward.
- :class:`~repro.core.offloader.SSDOffloader` /
  :class:`~repro.core.offloader.CPUOffloader` — transfer backends.
- :class:`~repro.core.policy.OffloadPolicy` / ``PolicyConfig`` — Alg. 1
  decisions and knobs.
- :class:`~repro.core.ids.TensorIDRegistry` — ``get_id()`` deduplication
  and weight exclusion.
- :mod:`~repro.core.adaptive` — offload budget sizing from model/hardware.
- :class:`~repro.core.hints.SchedulerHints` — Megatron/DeepSpeed-style
  scheduler notifications.
"""

from repro.core.ids import TensorID, TensorIDRegistry
from repro.core.policy import Decision, KeepReason, OffloadPolicy, PolicyConfig, StepAccounting
from repro.core.offloader import CPUOffloader, Offloader, PinnedMemoryPool, SSDOffloader
from repro.core.tensor_cache import ActivationRecord, CacheStats, RecordState, TensorCache
from repro.core.adaptive import WorkloadProfile, choose_offload_budget, configure_policy
from repro.core.hints import SchedulerHints, Stage, patch_schedule

__all__ = [
    "TensorID",
    "TensorIDRegistry",
    "Decision",
    "KeepReason",
    "OffloadPolicy",
    "PolicyConfig",
    "StepAccounting",
    "Offloader",
    "SSDOffloader",
    "CPUOffloader",
    "PinnedMemoryPool",
    "TensorCache",
    "ActivationRecord",
    "CacheStats",
    "RecordState",
    "WorkloadProfile",
    "choose_offload_budget",
    "configure_policy",
    "SchedulerHints",
    "Stage",
    "patch_schedule",
]
