"""Pipeline-parallel schedules: 1F1B and GPipe.

Provides an event-level simulation of the pipeline timeline (which also
renders the Fig. 2-style stage/time diagram) plus the closed-form bubble
model used in the Sec. IV-D discussion: "When the micro-batch size is no
less than 4, the ideal PP bubble time percentage is no less than 11.5%"
for the BLOOM setup (PP bubbles shrink as the micro-batch *count* rises,
but weight-update cost grows as the micro-batch *size* shrinks — the
trade-off SSDTrain relaxes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class ScheduleKind(enum.Enum):
    GPIPE = "gpipe"
    ONE_F_ONE_B = "1f1b"


@dataclass(frozen=True)
class PipelineTask:
    """One cell of the pipeline timeline (a coloured box in Fig. 2)."""

    stage: int
    microbatch: int
    kind: str        # "F" or "B"
    start: float
    end: float


@dataclass
class PipelineSchedule:
    """Result of simulating one pipeline step."""

    kind: ScheduleKind
    num_stages: int
    num_microbatches: int
    step_time: float
    bubble_time: float
    tasks: List[PipelineTask] = field(default_factory=list)

    @property
    def bubble_fraction(self) -> float:
        if self.step_time == 0:
            return 0.0
        return self.bubble_time / self.step_time


def ideal_bubble_fraction(num_stages: int, num_microbatches: int) -> float:
    """Closed-form bubble fraction, identical for GPipe and 1F1B:
    ``(p - 1) / (m + p - 1)``."""
    if num_stages < 1 or num_microbatches < 1:
        raise ValueError("stages and microbatches must be >= 1")
    return (num_stages - 1) / (num_microbatches + num_stages - 1)


def simulate_pipeline(
    num_stages: int,
    num_microbatches: int,
    forward_time: float,
    backward_time: float,
    kind: ScheduleKind = ScheduleKind.ONE_F_ONE_B,
) -> PipelineSchedule:
    """Simulate one pipeline step and return the timeline.

    Dependency rules:
      - F(s, m) needs F(s-1, m) done and stage ``s`` free;
      - B(s, m) needs B(s+1, m) done, F(s, m) done, and stage ``s`` free;
      - GPipe: all forwards before any backward;
      - 1F1B: each stage alternates F/B once warmed up (bounded activation
        inventory), which is the schedule sketched in the paper's Fig. 2.
    """
    if num_stages < 1 or num_microbatches < 1:
        raise ValueError("stages and microbatches must be >= 1")
    if forward_time <= 0 or backward_time <= 0:
        raise ValueError("task times must be positive")

    stage_free = [0.0] * num_stages
    f_done: Dict[Tuple[int, int], float] = {}
    b_done: Dict[Tuple[int, int], float] = {}
    tasks: List[PipelineTask] = []

    def run(stage: int, microbatch: int, kind_str: str, ready: float, duration: float) -> float:
        start = max(ready, stage_free[stage])
        end = start + duration
        stage_free[stage] = end
        tasks.append(PipelineTask(stage, microbatch, kind_str, start, end))
        return end

    if kind is ScheduleKind.GPIPE:
        for m in range(num_microbatches):
            for s in range(num_stages):
                ready = f_done.get((s - 1, m), 0.0)
                f_done[(s, m)] = run(s, m, "F", ready, forward_time)
        for m in range(num_microbatches):
            for s in range(num_stages - 1, -1, -1):
                ready = max(
                    b_done.get((s + 1, m), 0.0),
                    f_done[(s, m)],
                )
                b_done[(s, m)] = run(s, m, "B", ready, backward_time)
    else:  # 1F1B
        # Per-stage command list: warmup forwards, steady 1F1B, cooldown
        # backwards (Megatron's schedule).
        for s in range(num_stages):
            num_warmup = min(num_stages - s - 1, num_microbatches)
            commands: List[Tuple[str, int]] = []
            commands.extend(("F", m) for m in range(num_warmup))
            next_f, next_b = num_warmup, 0
            while next_f < num_microbatches or next_b < num_microbatches:
                if next_f < num_microbatches:
                    commands.append(("F", next_f))
                    next_f += 1
                if next_b < num_microbatches:
                    commands.append(("B", next_b))
                    next_b += 1
            # Execute stage-by-stage is not possible (cross-stage deps), so
            # store commands and run round-robin below.
            stage_commands = commands
            if s == 0:
                all_commands = [stage_commands]
            else:
                all_commands.append(stage_commands)
        cursors = [0] * num_stages
        progressed = True
        while progressed:
            progressed = False
            for s in range(num_stages):
                while cursors[s] < len(all_commands[s]):
                    op, m = all_commands[s][cursors[s]]
                    if op == "F":
                        if s > 0 and (s - 1, m) not in f_done:
                            break
                        ready = f_done.get((s - 1, m), 0.0)
                        f_done[(s, m)] = run(s, m, "F", ready, forward_time)
                    else:
                        if s < num_stages - 1 and (s + 1, m) not in b_done:
                            break
                        if (s, m) not in f_done:
                            break
                        ready = max(b_done.get((s + 1, m), 0.0), f_done[(s, m)])
                        b_done[(s, m)] = run(s, m, "B", ready, backward_time)
                    cursors[s] += 1
                    progressed = True
        if any(cursors[s] != len(all_commands[s]) for s in range(num_stages)):
            raise RuntimeError("1F1B schedule deadlocked (dependency bug)")

    step_time = max(task.end for task in tasks)
    busy = num_microbatches * (forward_time + backward_time)
    bubble_time = step_time - busy
    return PipelineSchedule(
        kind=kind,
        num_stages=num_stages,
        num_microbatches=num_microbatches,
        step_time=step_time,
        bubble_time=bubble_time,
        tasks=tasks,
    )


def max_resident_microbatches(kind: ScheduleKind, num_stages: int, num_microbatches: int, stage: int = 0) -> int:
    """How many micro-batches' activations a stage holds at once.

    GPipe holds all of them; 1F1B bounds the inventory at
    ``min(stages - stage, microbatches)`` — why 1F1B is the default for
    activation-heavy LLM training.
    """
    if kind is ScheduleKind.GPIPE:
        return num_microbatches
    return min(num_stages - stage, num_microbatches)
