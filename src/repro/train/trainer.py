"""The training driver: strategies, micro-batching, hints, measurement.

The trainer reproduces the measurement loop of Sec. IV: it runs training
steps under one of the three activation placement strategies of Fig. 7 —

- ``KEEP``      — activations stay in GPU memory (the "No offloading" bars);
- ``OFFLOAD``   — SSDTrain's tensor cache manages them;
- ``RECOMPUTE`` — layerwise full recomputation (build the model with
  ``config.recompute=True``);

and reports per-step wall time, the activation memory peak during
forward+backward, and the model throughput (algorithmic FLOPs / time).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.autotune import AutotuneController, ControllerDecision
from repro.core.hints import SchedulerHints, patch_schedule
from repro.core.tensor_cache import CacheStats, TensorCache
from repro.device.gpu import GPU
from repro.device.memory import MemoryTag
from repro.nn.dropout import Dropout
from repro.tensor.module import Module
from repro.tensor.tensor import Tensor
from repro.train.schedule import MicrobatchSchedule


class PlacementStrategy(enum.Enum):
    """Activation placement strategies compared on the ROK curve (Fig. 7)."""

    KEEP = "keep"
    OFFLOAD = "offload"
    RECOMPUTE = "recompute"


@dataclass
class StepResult:
    """Measurements from one training step."""

    loss: float
    step_time_s: float
    activation_peak_bytes: int
    total_peak_bytes: int
    algorithmic_flops: float
    executed_flops: float
    offloaded_bytes: int = 0
    loaded_bytes: int = 0
    forwarded_tensors: int = 0
    #: The offload budget in force after this step (None = uncapped /
    #: no cache); moves between steps when an autotune controller is
    #: attached.
    offload_budget_bytes: Optional[int] = None
    #: The controller's decision for this step (None without a controller).
    autotune_decision: Optional[ControllerDecision] = None

    def model_throughput_tflops(self) -> float:
        """Fig. 7 y-axis: algorithmic FLOPs / step time, in TFLOP/s."""
        if self.step_time_s <= 0:
            return 0.0
        return self.algorithmic_flops / self.step_time_s / 1e12


class Trainer:
    """Runs training steps for one model under a placement strategy.

    Args:
        model: the model (built with ``recompute=True`` for the RECOMPUTE
            strategy).
        optimizer: optimizer with ``step()``/``zero_grad()``.
        gpu: the simulated device whose ledger/counters are measured.
        strategy: activation placement strategy.
        cache: required for ``OFFLOAD``; the trainer wires hints around the
            schedule and manages the cache lifecycle per step.
        num_microbatches: gradient-accumulation factor; the loss of each
            micro-batch is scaled by ``1/num_microbatches``.
        controller: optional online adaptive controller
            (:class:`~repro.core.autotune.AutotuneController`); hooked at
            the end of every step, it re-runs the offload budget formula
            with the observed forward/backward windows and the
            scheduler's observed per-lane bandwidth, and installs the
            result (budget, prefetch window, tiered watermark) for the
            next step.  Requires a cache.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Any,
        gpu: GPU,
        strategy: PlacementStrategy = PlacementStrategy.KEEP,
        cache: Optional[TensorCache] = None,
        num_microbatches: int = 1,
        controller: Optional[AutotuneController] = None,
    ) -> None:
        if strategy is PlacementStrategy.OFFLOAD and cache is None:
            raise ValueError("OFFLOAD strategy requires a TensorCache")
        if strategy is not PlacementStrategy.OFFLOAD and cache is not None:
            raise ValueError(f"cache given but strategy is {strategy.value}")
        if controller is not None and cache is None:
            raise ValueError("an autotune controller requires a TensorCache")
        self.model = model
        self.optimizer = optimizer
        self.gpu = gpu
        self.strategy = strategy
        self.cache = cache
        self.num_microbatches = num_microbatches
        self.controller = controller
        self.hints = SchedulerHints(cache) if cache is not None else None
        self._cache_attached = False
        self.step_count = 0

    # ------------------------------------------------------------- lifecycle
    def _ensure_cache_setup(self) -> None:
        if self.cache is None or self._cache_attached:
            return
        self.cache.register_weights(self.model)
        self.cache.attach(self.model)
        self._cache_attached = True

    def close(self) -> None:
        if self.cache is not None:
            self.cache.shutdown()

    def _reset_dropout_history(self) -> None:
        for module in self.model.modules():
            if isinstance(module, Dropout):
                module._seed_history.clear()

    # ------------------------------------------------------------------ step
    def train_step(self, microbatch_data: Sequence[Tuple[Tensor, ...]]) -> StepResult:
        """Run one step over ``microbatch_data`` (one tuple per micro-batch).

        Each tuple is passed to ``model(*tuple)`` and must yield a scalar
        loss tensor.
        """
        if len(microbatch_data) != self.num_microbatches:
            raise ValueError(
                f"expected {self.num_microbatches} micro-batches, "
                f"got {len(microbatch_data)}"
            )
        self._ensure_cache_setup()
        self._reset_dropout_history()
        self.gpu.ledger.reset_peak()
        self.gpu.reset_counters()

        losses: List[float] = []
        scale = 1.0 / self.num_microbatches
        # Observed forward/backward windows — the controller re-runs the
        # budget formula with these instead of the profiled assumptions.
        phase_times = {"forward": 0.0, "backward": 0.0}

        def forward_fn(index: int) -> Tensor:
            begin = time.perf_counter()
            loss = self.model(*microbatch_data[index])
            if self.num_microbatches > 1:
                loss = loss * scale
            phase_times["forward"] += time.perf_counter() - begin
            return loss

        def backward_fn(index: int, loss: Tensor) -> None:
            begin = time.perf_counter()
            loss.backward()
            phase_times["backward"] += time.perf_counter() - begin
            losses.append(loss.item())

        def optimizer_fn() -> None:
            self.optimizer.step()
            self.optimizer.zero_grad()

        schedule = MicrobatchSchedule(
            forward_fn, backward_fn, optimizer_fn, self.num_microbatches
        )
        if self.hints is not None:
            patch_schedule(schedule, self.hints)

        # Cache stats are cumulative; snapshot to report per-step deltas.
        stats: Optional[CacheStats] = self.cache.stats if self.cache else None
        stored_before = stats.stored_bytes if stats else 0
        loaded_before = stats.loaded_bytes if stats else 0
        forwarded_before = stats.forwarded_tensors if stats else 0

        start = time.perf_counter()
        if self.cache is not None:
            with self.cache:
                schedule.run_step()
        else:
            schedule.run_step()
        elapsed = time.perf_counter() - start

        decision = None
        if self.controller is not None and self.cache is not None:
            decision = self.controller.on_step_end(
                self.cache,
                forward_time_s=phase_times["forward"],
                backward_time_s=phase_times["backward"],
            )

        self.step_count += 1
        budget = (
            self.cache.policy.config.offload_budget_bytes if self.cache else None
        )
        return StepResult(
            loss=float(np.sum(losses)),
            step_time_s=elapsed,
            activation_peak_bytes=self.gpu.ledger.peak(MemoryTag.ACTIVATIONS),
            total_peak_bytes=self.gpu.ledger.peak(),
            algorithmic_flops=self.gpu.algorithmic_flops,
            executed_flops=self.gpu.flops_executed,
            offloaded_bytes=(stats.stored_bytes - stored_before) if stats else 0,
            loaded_bytes=(stats.loaded_bytes - loaded_before) if stats else 0,
            forwarded_tensors=(stats.forwarded_tensors - forwarded_before) if stats else 0,
            offload_budget_bytes=budget,
            autotune_decision=decision,
        )

    def train(
        self,
        batch_iterator: Callable[[], Sequence[Tuple[Tensor, ...]]],
        num_steps: int,
    ) -> List[StepResult]:
        """Run ``num_steps`` steps, pulling micro-batch data per step."""
        return [self.train_step(batch_iterator()) for _ in range(num_steps)]
