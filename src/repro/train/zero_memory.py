"""Per-GPU memory breakdown across ZeRO stages (Sec. II-B, II-D).

The paper's Sec. II-B argument — activations dominate GPU memory and grow
faster than everything else — rests on the breakdown of "all other memory
use": parameters, gradients, and optimizer states, each shardable by a
ZeRO stage.  This module computes the breakdown for a model/parallelism
pair, which also reproduces the premise behind Fig. 5's ZeRO-3 rows and
Table I's "ZeRO-Infinity is available only in certain ZeRO stages" note.

Conventions (mixed-precision Adam, the common LLM recipe):

- parameters: 2 bytes/param (FP16 working copy);
- gradients: 2 bytes/param;
- optimizer states: 12 bytes/param (FP32 master copy + two Adam moments);
- the paper's own evaluation shrinks this with FP16 SGD (state 0), which
  ``optimizer_bytes_per_param`` exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.perf_model import model_param_count, model_step_perf
from repro.models.config import ModelConfig
from repro.train.parallel import ParallelismConfig, ZeroStage


@dataclass(frozen=True)
class MemoryBreakdown:
    """Bytes per GPU by category (the Sec. II-B taxonomy)."""

    parameters: float
    gradients: float
    optimizer: float
    activations: float

    @property
    def others(self) -> float:
        """S_others: everything but activations."""
        return self.parameters + self.gradients + self.optimizer

    @property
    def total(self) -> float:
        return self.others + self.activations

    @property
    def activation_fraction(self) -> float:
        """The paper's headline "about 80% of the GPU memory ... consists
        of activations" statistic for recent LLM training configs."""
        if self.total == 0:
            return 0.0
        return self.activations / self.total

    def as_dict(self) -> Dict[str, float]:
        return {
            "parameters": self.parameters,
            "gradients": self.gradients,
            "optimizer": self.optimizer,
            "activations": self.activations,
        }


def zero_memory_breakdown(
    config: ModelConfig,
    batch: int,
    parallelism: Optional[ParallelismConfig] = None,
    num_microbatches: int = 1,
    param_bytes_per_param: float = 2.0,
    grad_bytes_per_param: float = 2.0,
    optimizer_bytes_per_param: float = 12.0,
    offload_fraction: float = 0.0,
) -> MemoryBreakdown:
    """Per-GPU memory breakdown under the given ZeRO stage.

    Args:
        config: model shape.
        batch: micro-batch size.
        parallelism: TP/PP/DP + ZeRO stage; defaults to a single GPU.
        num_microbatches: resident micro-batches (1 without PP; up to the
            stage depth under 1F1B).
        param_bytes_per_param / grad_bytes_per_param /
        optimizer_bytes_per_param: precision recipe (defaults: FP16 + Adam
            mixed precision; the paper's eval uses FP16 SGD = (2, 2, 0)).
        offload_fraction: fraction of activations SSDTrain keeps off-GPU.
    """
    if not 0.0 <= offload_fraction <= 1.0:
        raise ValueError(f"offload_fraction must be in [0, 1]: {offload_fraction}")
    par = parallelism if parallelism is not None else ParallelismConfig()
    total_params = model_param_count(config)

    # Model-parallel sharding applies to everything resident.
    mp_shard = par.tp * par.pp
    params_bytes = total_params / mp_shard * param_bytes_per_param
    grads_bytes = total_params / mp_shard * grad_bytes_per_param
    optimizer_bytes = total_params / mp_shard * optimizer_bytes_per_param

    # ZeRO shards across the DP group by stage.
    if par.dp > 1:
        if par.zero_stage >= ZeroStage.OPTIMIZER:
            optimizer_bytes /= par.dp
        if par.zero_stage >= ZeroStage.GRADS:
            grads_bytes /= par.dp
        if par.zero_stage >= ZeroStage.WEIGHTS:
            params_bytes /= par.dp

    perf = model_step_perf(config, batch, parallelism=par, num_microbatches=1)
    activations = perf.activation_bytes_per_microbatch * num_microbatches
    activations *= 1.0 - offload_fraction

    return MemoryBreakdown(
        parameters=params_bytes,
        gradients=grads_bytes,
        optimizer=optimizer_bytes,
        activations=activations,
    )


def max_microbatch_size(
    config: ModelConfig,
    memory_budget_bytes: float,
    parallelism: Optional[ParallelismConfig] = None,
    num_microbatches: int = 1,
    offload_fraction: float = 0.0,
    max_batch: int = 4096,
    **precision,
) -> int:
    """Largest micro-batch size whose breakdown fits the budget.

    The knob SSDTrain turns (Fig. 7 / Fig. 8a): raising
    ``offload_fraction`` raises the feasible micro-batch size.
    Returns 0 when even batch 1 does not fit.
    """
    if memory_budget_bytes <= 0:
        raise ValueError("memory budget must be positive")
    best = 0
    batch = 1
    while batch <= max_batch:
        breakdown = zero_memory_breakdown(
            config,
            batch,
            parallelism=parallelism,
            num_microbatches=num_microbatches,
            offload_fraction=offload_fraction,
            **precision,
        )
        if breakdown.total > memory_budget_bytes:
            break
        best = batch
        batch *= 2
    return best
