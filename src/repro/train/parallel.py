"""Parallelism configurations and communication cost models (Sec. II-A).

Covers the three levels of parallelism the paper describes — tensor (TP),
pipeline (PP) and data (DP) — plus ZeRO sharding stages.  The analytic
communication terms feed the performance model's ZeRO-communication
pipeline term and the Fig. 8(b) upscaling study.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ZeroStage(enum.IntEnum):
    """What ZeRO shards across data-parallel ranks (Sec. II-D)."""

    NONE = 0       # vanilla DP: full replicas
    OPTIMIZER = 1  # optimizer states sharded
    GRADS = 2      # + gradients sharded
    WEIGHTS = 3    # + parameters sharded (ZeRO-3 / ZeRO-Infinity base)


@dataclass(frozen=True)
class ParallelismConfig:
    """A (TP, PP, DP) decomposition with an optional ZeRO stage.

    Attributes:
        tp: tensor-parallel degree (shards each weight).
        pp: pipeline-parallel degree (shards the layer stack).
        dp: data-parallel degree (replicates; micro-batches split).
        zero_stage: ZeRO sharding level applied to the DP group.
        interconnect_gbps: per-GPU interconnect bandwidth for collectives
            (NVLink within a node, IB across nodes; a blended figure).
    """

    tp: int = 1
    pp: int = 1
    dp: int = 1
    zero_stage: ZeroStage = ZeroStage.NONE
    interconnect_gbps: float = 150.0
    #: Megatron sequence parallelism: shard the residual-path activations
    #: (LayerNorm inputs/outputs) across the TP group as well.  Off in the
    #: paper's 2-GPU measurements; on in the Fig. 8(b) upscaling projection.
    sequence_parallel: bool = False

    def __post_init__(self) -> None:
        for name, value in (("tp", self.tp), ("pp", self.pp), ("dp", self.dp)):
            if value < 1:
                raise ValueError(f"{name} must be >= 1: {value}")

    @property
    def num_gpus(self) -> int:
        return self.tp * self.pp * self.dp

    @property
    def interconnect(self) -> float:
        return self.interconnect_gbps * 1e9

    # ------------------------------------------------------- communication
    def tp_allreduce_bytes_per_layer(
        self, batch: int, seq: int, hidden: int, dtype_bytes: int = 2, direction: str = "forward"
    ) -> float:
        """TP all-reduce traffic per transformer layer per micro-batch.

        Megatron TP needs two all-reduces in forward (attention out, MLP
        out) and two in backward; ring all-reduce moves ~2x the payload.
        ``direction`` selects the forward or backward pair.
        """
        if self.tp == 1:
            return 0.0
        payload = batch * seq * hidden * dtype_bytes
        ring_factor = 2.0 * (self.tp - 1) / self.tp
        return 2 * payload * ring_factor

    def zero_comm_bytes_per_layer(self, layer_param_bytes: float) -> float:
        """ZeRO-3 traffic per layer per micro-batch: parameter all-gather
        in forward and backward, gradient reduce-scatter in backward."""
        if self.zero_stage < ZeroStage.WEIGHTS or self.dp == 1:
            return 0.0
        shard_factor = (self.dp - 1) / self.dp
        # all-gather (fwd) + all-gather (bwd) + reduce-scatter (bwd)
        return 3 * layer_param_bytes * shard_factor

    def zero_comm_time_per_layer(self, layer_param_bytes: float) -> float:
        bytes_moved = self.zero_comm_bytes_per_layer(layer_param_bytes)
        if bytes_moved == 0.0:
            return 0.0
        return bytes_moved / self.interconnect

    def tp_comm_time_per_layer(self, batch: int, seq: int, hidden: int, dtype_bytes: int = 2) -> float:
        bytes_moved = self.tp_allreduce_bytes_per_layer(batch, seq, hidden, dtype_bytes)
        if bytes_moved == 0.0:
            return 0.0
        return bytes_moved / self.interconnect

    # ------------------------------------------------------------ sharding
    def params_per_gpu(self, total_params: float) -> float:
        """Parameters resident per GPU under TP/PP (and ZeRO-3) sharding."""
        resident = total_params / (self.tp * self.pp)
        if self.zero_stage >= ZeroStage.WEIGHTS:
            resident /= self.dp
        return resident

    def layers_per_gpu(self, total_layers: int) -> int:
        """Layers per pipeline stage (ceil division)."""
        return -(-total_layers // self.pp)

    def optimizer_state_factor(self) -> float:
        """Fraction of the full optimizer state resident per DP rank."""
        if self.zero_stage >= ZeroStage.OPTIMIZER:
            return 1.0 / self.dp
        return 1.0
