"""Training-loop substrate: micro-batch scheduling, the trainer, pipeline
parallelism schedules, and TP/DP/ZeRO cost models (mini Megatron-DeepSpeed).
"""

from repro.train.schedule import MicrobatchSchedule
from repro.train.trainer import PlacementStrategy, StepResult, Trainer
from repro.train.pipeline import (
    PipelineSchedule,
    ScheduleKind,
    simulate_pipeline,
)
from repro.train.parallel import ParallelismConfig, ZeroStage

__all__ = [
    "MicrobatchSchedule",
    "Trainer",
    "TrainerConfig",
    "StepResult",
    "PlacementStrategy",
    "PipelineSchedule",
    "ScheduleKind",
    "simulate_pipeline",
    "ParallelismConfig",
    "ZeroStage",
]
