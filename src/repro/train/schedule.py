"""Micro-batch schedule with hintable command methods.

This mirrors the command-loop shape of DeepSpeed's pipeline engine: a step
is a sequence of ``forward_microbatch(i)`` / ``backward_microbatch(i)``
commands followed by ``optimizer_step()``.  SSDTrain integrates by
monkey-patching these methods (:func:`repro.core.hints.patch_schedule`),
which is exactly how the paper adds hints "before and after the execution
of each command".
"""

from __future__ import annotations

from typing import Any, Callable, List


class MicrobatchSchedule:
    """Gradient-accumulation schedule over ``num_microbatches``.

    Without pipeline parallelism "a new micro-batch will not start before
    both forward propagation and backward propagation of the previous
    micro-batch are done" (Sec. IV-A): the command order is F0 B0 F1 B1 ...
    followed by the optimizer step.
    """

    def __init__(
        self,
        forward_fn: Callable[[int], Any],
        backward_fn: Callable[[int, Any], None],
        optimizer_fn: Callable[[], None],
        num_microbatches: int = 1,
    ) -> None:
        if num_microbatches < 1:
            raise ValueError(f"need at least one micro-batch: {num_microbatches}")
        self._forward_fn = forward_fn
        self._backward_fn = backward_fn
        self._optimizer_fn = optimizer_fn
        self.num_microbatches = num_microbatches
        self.command_log: List[str] = []

    # Command methods — the surface the hints monkey-patch wraps.
    def forward_microbatch(self, index: int) -> Any:
        self.command_log.append(f"F{index}")
        return self._forward_fn(index)

    def backward_microbatch(self, index: int, forward_result: Any) -> None:
        self.command_log.append(f"B{index}")
        self._backward_fn(index, forward_result)

    def optimizer_step(self) -> None:
        self.command_log.append("U")
        self._optimizer_fn()

    def run_step(self) -> List[Any]:
        """Execute one training step; returns per-micro-batch results."""
        results = []
        for index in range(self.num_microbatches):
            # Without PP, backward follows this forward immediately — the
            # keep-hint case of Fig. 2 marker 4 applies to every micro-batch.
            result = self.forward_microbatch(index)
            results.append(result)
            self.backward_microbatch(index, result)
        self.optimizer_step()
        return results
