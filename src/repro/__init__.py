"""SSDTrain reproduction: activation offloading to SSDs for LLM training.

Reproduces "SSDTrain: An Activation Offloading Framework to SSDs for
Faster Large Language Model Training" (DAC 2025, arXiv:2408.10013) as a
self-contained Python library.  See README.md for the architecture tour,
DESIGN.md for the system inventory, and EXPERIMENTS.md for the
paper-vs-reproduction numbers.

Top-level convenience re-exports cover the common entry points::

    from repro import TensorCache, SSDOffloader, Trainer, PlacementStrategy
    from repro import GPT, BERT, T5, ModelConfig, GPU
"""

from repro.core import (
    CPUOffloader,
    OffloadPolicy,
    PolicyConfig,
    SSDOffloader,
    TensorCache,
    TensorIDRegistry,
)
from repro.device import GPU, MemoryTag
from repro.models import BERT, GPT, ModelConfig, T5
from repro.optim import Adam, SGD
from repro.train import PlacementStrategy, Trainer

__version__ = "1.0.0"

__all__ = [
    "TensorCache",
    "SSDOffloader",
    "CPUOffloader",
    "OffloadPolicy",
    "PolicyConfig",
    "TensorIDRegistry",
    "GPU",
    "MemoryTag",
    "GPT",
    "BERT",
    "T5",
    "ModelConfig",
    "SGD",
    "Adam",
    "Trainer",
    "PlacementStrategy",
    "__version__",
]
