"""SSDTrain reproduction: activation offloading to SSDs for LLM training.

Reproduces "SSDTrain: An Activation Offloading Framework to SSDs for
Faster Large Language Model Training" (DAC 2025, arXiv:2408.10013) as a
self-contained Python library.  See README.md for the quickstart and
architecture overview, and docs/architecture.md for the internals tour
(activation state machine, data-forwarding rule, tier/chunk design).

Top-level convenience re-exports cover the common entry points::

    from repro import TensorCache, SSDOffloader, Trainer, PlacementStrategy
    from repro import GPT, BERT, T5, ModelConfig, GPU
"""

from repro.core import (
    AutotuneController,
    ControllerConfig,
    CPUOffloader,
    Engine,
    EngineConfig,
    EngineConfigError,
    EngineStats,
    build_engine,
    OffloadPolicy,
    PolicyConfig,
    SSDOffloader,
    TensorCache,
    TensorIDRegistry,
    Tier,
    TieredOffloader,
    make_offloader,
)
from repro.device import GPU, MemoryTag
from repro.models import BERT, GPT, ModelConfig, T5
from repro.optim import Adam, SGD
from repro.train import PlacementStrategy, Trainer

__version__ = "1.0.0"

__all__ = [
    "TensorCache",
    "SSDOffloader",
    "CPUOffloader",
    "TieredOffloader",
    "Tier",
    "make_offloader",
    "Engine",
    "EngineConfig",
    "EngineConfigError",
    "EngineStats",
    "build_engine",
    "OffloadPolicy",
    "PolicyConfig",
    "TensorIDRegistry",
    "AutotuneController",
    "ControllerConfig",
    "GPU",
    "MemoryTag",
    "GPT",
    "BERT",
    "T5",
    "ModelConfig",
    "SGD",
    "Adam",
    "Trainer",
    "PlacementStrategy",
    "__version__",
]
